// Reproduces paper Table 1 (§4.2): average latency to open and close a
// connection, for a raw TCP socket (the "Java Socket" analog), NapletSocket
// without security, and NapletSocket with security.
//
// Paper (2004, Java / Sun Blade 1000 / fast Ethernet):
//   Java Socket          open   3.7 ms   close  0.6 ms
//   NapletSocket w/o sec open  18.2 ms   close 12.5 ms
//   NapletSocket w/ sec  open 134.4 ms   close 12.6 ms
//
// Expected shape here: raw << w/o security << with security, with the
// security gap dominated by Diffie–Hellman key establishment.
#include "bench/bench_util.hpp"

namespace naplet::bench {
namespace {

struct OpenClose {
  double open_ms;
  double close_ms;
};

OpenClose measure_raw_socket(int iterations) {
  auto network = std::make_shared<net::TcpNetwork>();
  auto listener = network->listen(0);
  if (!listener.ok()) std::abort();
  const net::Endpoint dest = (*listener)->local_endpoint();

  std::vector<double> open_ms, close_ms;
  for (int i = 0; i < iterations; ++i) {
    util::Stopwatch sw(util::RealClock::instance());
    auto client = network->connect(dest, 2s);
    auto server = (*listener)->accept(2s);
    if (!client.ok() || !server.ok()) std::abort();
    open_ms.push_back(sw.elapsed_ms());

    sw.reset();
    (*client)->close();
    (*server)->close();
    close_ms.push_back(sw.elapsed_ms());
  }
  return {mean(open_ms), mean(close_ms)};
}

OpenClose measure_naplet(bool security, int iterations) {
  BenchRealm realm(2, security);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  if (!realm.ctrl(1).listen(bob).ok()) std::abort();

  std::vector<double> open_ms, close_ms;
  for (int i = 0; i < iterations; ++i) {
    util::Stopwatch sw(util::RealClock::instance());
    auto client = realm.ctrl(0).connect(alice, bob);
    if (!client.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   client.status().to_string().c_str());
      std::abort();
    }
    auto server = realm.ctrl(1).accept(bob, 5s);
    if (!server.ok()) std::abort();
    open_ms.push_back(sw.elapsed_ms());

    sw.reset();
    if (!realm.ctrl(0).close(*client).ok()) std::abort();
    close_ms.push_back(sw.elapsed_ms());
  }
  return {mean(open_ms), mean(close_ms)};
}

}  // namespace
}  // namespace naplet::bench

int main() {
  using namespace naplet::bench;
  const int iterations = fast_mode() ? 10 : 100;

  std::printf("Table 1 reproduction: connection open/close latency "
              "(%d iterations each)\n", iterations);
  std::printf("Paper values: raw 3.7/0.6 ms, w/o security 18.2/12.5 ms, "
              "with security 134.4/12.6 ms\n");

  const OpenClose raw = measure_raw_socket(iterations);
  const OpenClose insecure = measure_naplet(false, iterations);
  const OpenClose secure = measure_naplet(true, iterations);

  print_header("Table 1 (measured, this machine)",
               {"connection type", "open (ms)", "close (ms)"});
  print_row({"raw TCP socket", fmt(raw.open_ms, 3), fmt(raw.close_ms, 3)});
  print_row({"NapletSocket w/o", fmt(insecure.open_ms, 3),
             fmt(insecure.close_ms, 3)});
  print_row({"NapletSocket sec", fmt(secure.open_ms, 3),
             fmt(secure.close_ms, 3)});

  std::printf("\nshape checks:\n");
  std::printf("  raw < w/o security          : %s (%.3f < %.3f)\n",
              raw.open_ms < insecure.open_ms ? "PASS" : "FAIL",
              raw.open_ms, insecure.open_ms);
  std::printf("  w/o security < with security: %s (%.3f < %.3f)\n",
              insecure.open_ms < secure.open_ms ? "PASS" : "FAIL",
              insecure.open_ms, secure.open_ms);
  std::printf("  security dominates open cost: %s (security adds %.1f%%)\n",
              (secure.open_ms - insecure.open_ms) > insecure.open_ms * 0.5
                  ? "PASS"
                  : "FAIL",
              100.0 * (secure.open_ms - insecure.open_ms) / insecure.open_ms);
  return 0;
}
