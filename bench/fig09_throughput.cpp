// Reproduces paper Figure 9 (§4.3): TTCP-style throughput between two
// stationary agents as a function of message size, NapletSocket vs the raw
// socket baseline.
//
// Paper finding: NapletSocket degrades throughput slightly (<5%, from
// synchronized stream access); the gap becomes negligible as message size
// grows.
#include <atomic>
#include <thread>

#include "bench/bench_util.hpp"
#include "net/rudp.hpp"
#include "net/sim.hpp"

namespace naplet::bench {
namespace {

constexpr std::size_t kBytesPerPoint = 24 * 1024 * 1024;

double mbps(std::size_t bytes, double ms) {
  return static_cast<double>(bytes) * 8.0 / 1e6 / (ms / 1000.0);
}

/// Raw TCP pump: writer sends `count` messages of `size`; reader consumes.
double raw_socket_mbps(std::size_t msg_size, std::size_t total_bytes) {
  auto network = std::make_shared<net::TcpNetwork>();
  auto listener = network->listen(0);
  if (!listener.ok()) std::abort();
  auto client = network->connect((*listener)->local_endpoint(), 2s);
  auto server = (*listener)->accept(2s);
  if (!client.ok() || !server.ok()) std::abort();

  const std::size_t count = std::max<std::size_t>(1, total_bytes / msg_size);
  const util::Bytes payload(msg_size, 0x42);

  util::Stopwatch sw(util::RealClock::instance());
  std::thread writer([&] {
    for (std::size_t i = 0; i < count; ++i) {
      if (!(*client)
               ->write_all(util::ByteSpan(payload.data(), payload.size()))
               .ok()) {
        std::abort();
      }
    }
  });
  std::size_t received = 0;
  std::uint8_t buf[65536];
  while (received < count * msg_size) {
    auto n = (*server)->read_some(buf, sizeof buf);
    if (!n.ok() || *n == 0) std::abort();
    received += *n;
  }
  writer.join();
  return mbps(received, sw.elapsed_ms());
}

/// NapletSocket pump over the same loopback. `reactor` moves the
/// controllers onto the epoll/timer-wheel loop (DESIGN.md §15).
double naplet_mbps(std::size_t msg_size, std::size_t total_bytes,
                   bool reactor) {
  BenchRealm realm(2, /*security=*/true, crypto::DhGroup::kModp2048, reactor);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  if (!realm.ctrl(1).listen(bob).ok()) std::abort();
  auto client = realm.ctrl(0).connect(alice, bob);
  if (!client.ok()) std::abort();
  auto server = realm.ctrl(1).accept(bob, 5s);
  if (!server.ok()) std::abort();

  const std::size_t count = std::max<std::size_t>(1, total_bytes / msg_size);
  const util::Bytes payload(msg_size, 0x42);

  util::Stopwatch sw(util::RealClock::instance());
  std::thread writer([&] {
    for (std::size_t i = 0; i < count; ++i) {
      if (!(*client)
               ->send(util::ByteSpan(payload.data(), payload.size()), 60s)
               .ok()) {
        std::abort();
      }
    }
  });
  std::size_t received = 0;
  while (received < count * msg_size) {
    auto got = (*server)->recv(60s);
    if (!got.ok()) std::abort();
    received += got->body.size();
  }
  writer.join();
  const double result = mbps(received, sw.elapsed_ms());
  (void)realm.ctrl(0).close(*client);
  return result;
}

/// Small-message mode (≤256 B): per-message rate on the Sim backend, where
/// the transport is an in-process pipe and the measurement isolates the
/// protocol stack's CPU cost per message. This is the regime the zero-copy
/// vectored data path targets — framing overhead dominates payload size.
double sim_small_msgs_per_sec(std::size_t msg_size, std::size_t count) {
  net::SimNet net;
  WiredSessionPair pair = sim_session_pair(net);
  const util::Bytes payload(msg_size, 0x42);
  util::Stopwatch sw(util::RealClock::instance());
  std::thread writer([&] {
    for (std::size_t i = 0; i < count; ++i) {
      if (!pair.a->send(util::ByteSpan(payload.data(), payload.size()), 60s)
               .ok()) {
        std::abort();
      }
    }
  });
  for (std::size_t i = 0; i < count; ++i) {
    if (!pair.b->recv(60s).ok()) std::abort();
  }
  writer.join();
  return static_cast<double>(count) / (sw.elapsed_ms() / 1000.0);
}

/// Lossy-WAN mode: control-channel (rudp) message rate across a simulated
/// 5 ms / ±1 ms jitter link with datagram loss, stop-and-wait transport
/// shape vs the pipelined sliding-window one. Several concurrent senders
/// share one channel, modeling a controller with overlapping control
/// exchanges; with a window of one they serialize, with the sliding window
/// they pipeline and single drops are repaired by SACK/FEC instead of a
/// full timer wait.
struct WanPoint {
  double msgs_per_sec = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fec_repairs = 0;
};

WanPoint rudp_wan_point(double loss, bool pipelined, int senders,
                        int msgs_per_sender) {
  net::SimNet net(/*seed=*/7);
  net.set_default_link(net::LinkConfig{
      .latency = 5ms, .jitter = 1ms, .datagram_loss = loss});
  auto node_a = net.add_node("a");
  auto node_b = net.add_node("b");

  net::RudpConfig config;
  config.retransmit_interval = 30ms;  // > RTT so the fixed timer is sane
  config.max_attempts = 40;
  if (pipelined) {
    config.repair = net::LossRepair::kXorFec;
  } else {
    config.window_packets = 1;
    config.adaptive_rto = false;
    config.fast_retx_dupacks = 0;
    config.repair = net::LossRepair::kNone;
  }
  auto dgram_a = node_a->bind_datagram(7);
  auto dgram_b = node_b->bind_datagram(7);
  if (!dgram_a.ok() || !dgram_b.ok()) std::abort();
  net::ReliableChannel ca(std::move(*dgram_a), config);
  net::ReliableChannel cb(std::move(*dgram_b), config);

  const int total = senders * msgs_per_sender;
  const util::Bytes payload(256, 0x42);
  util::Stopwatch sw(util::RealClock::instance());
  std::vector<std::thread> writers;
  writers.reserve(static_cast<std::size_t>(senders));
  for (int t = 0; t < senders; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < msgs_per_sender; ++i) {
        if (!ca.send(net::Endpoint{"b", 7},
                     util::ByteSpan(payload.data(), payload.size()), 60s)
                 .ok()) {
          std::abort();
        }
      }
    });
  }
  int received = 0;
  while (received < total) {
    if (!cb.recv(60s).has_value()) std::abort();
    ++received;
  }
  for (auto& w : writers) w.join();
  WanPoint point;
  point.msgs_per_sec = static_cast<double>(total) / (sw.elapsed_ms() / 1000.0);
  point.retransmits = ca.retransmissions();
  point.fec_repairs = cb.fec_repairs();
  ca.close();
  cb.close();
  return point;
}

/// Seed data path measured on this machine (RelWithDebInfo, idle system,
/// 2026-08-07) before the zero-copy vectored rewrite: per-frame heap
/// encode + two transport writes, 1 ms sleep-poll receive. Kept as the
/// before/after reference in BENCH_fig09.json.
struct SmallMsgBaseline {
  std::size_t size;
  double seed_msgs_per_sec;
};
constexpr SmallMsgBaseline kSeedSmallMsg[] = {
    {16, 973132.0}, {64, 1131286.0}, {256, 900877.0}};

}  // namespace
}  // namespace naplet::bench

int main(int argc, char** argv) {
  using namespace naplet::bench;

  const bool reactor = has_flag(argc, argv, "--reactor");
  std::printf("Figure 9 reproduction: throughput vs message size, "
              "NapletSocket vs raw socket (TTCP-style pump, %s mode)\n",
              reactor ? "reactor" : "threaded");
  std::printf("Paper finding: NapletSocket within ~5%% of the raw socket, "
              "converging as messages grow\n");

  const std::vector<std::size_t> sizes =
      fast_mode()
          ? std::vector<std::size_t>{64, 4096, 65536}
          : std::vector<std::size_t>{16,   64,    256,   1024, 4096,
                                     16384, 65536, 262144};
  const std::size_t budget = fast_mode() ? 2 * 1024 * 1024 : kBytesPerPoint;

  print_header("Figure 9 (measured, Mb/s, best of 3 runs per point)",
               {"msg size (B)", "raw socket", "NapletSocket", "ratio"});
  const int repeats = fast_mode() ? 1 : 3;
  double last_ratio = 0;
  std::vector<std::string> fig_points;
  for (std::size_t size : sizes) {
    double raw = 0, naplet = 0;
    for (int r = 0; r < repeats; ++r) {
      raw = std::max(raw, raw_socket_mbps(size, budget));
      naplet = std::max(naplet, naplet_mbps(size, budget, reactor));
    }
    last_ratio = naplet / raw;
    print_row({std::to_string(size), fmt(raw, 1), fmt(naplet, 1),
               fmt(last_ratio, 3)});
    fig_points.push_back(JsonObject()
                             .field("msg_size", static_cast<std::uint64_t>(size))
                             .field("raw_mbps", raw)
                             .field("naplet_mbps", naplet)
                             .field("ratio", last_ratio)
                             .render());
  }
  std::printf("\nshape check: ratio approaches 1.0 at large messages: %s "
              "(final ratio %.3f)\n",
              last_ratio > 0.7 ? "PASS" : "FAIL", last_ratio);

  // Small-message mode: msgs/s on the Sim backend vs the recorded seed
  // data path — the number the zero-copy rewrite is accountable to.
  const std::size_t small_count = fast_mode() ? 20'000 : 100'000;
  const int small_repeats = fast_mode() ? 1 : 3;
  print_header("small messages, Sim backend (msgs/s, best of " +
                   std::to_string(small_repeats) + ", " +
                   std::to_string(small_count) + " msgs per run)",
               {"msg size (B)", "seed", "current", "speedup"});
  std::vector<std::string> small_points;
  bool small_ok = true;
  for (const auto& base : kSeedSmallMsg) {
    double now = 0;
    for (int r = 0; r < small_repeats; ++r) {
      now = std::max(now, sim_small_msgs_per_sec(base.size, small_count));
    }
    const double speedup = now / base.seed_msgs_per_sec;
    small_ok = small_ok && speedup >= 1.5;
    print_row({std::to_string(base.size), fmt(base.seed_msgs_per_sec, 0),
               fmt(now, 0), fmt(speedup, 2) + "x"});
    small_points.push_back(
        JsonObject()
            .field("msg_size", static_cast<std::uint64_t>(base.size))
            .field("seed_msgs_per_sec", base.seed_msgs_per_sec)
            .field("msgs_per_sec", now)
            .field("speedup", speedup)
            .render());
  }
  std::printf("\nsmall-message target (>=1.5x over seed at <=256 B): %s%s\n",
              small_ok ? "PASS" : "FAIL",
              fast_mode() ? " (fast mode: indicative only — run full sweeps "
                            "on an idle machine for the recorded comparison)"
                          : "");

  // Lossy-WAN mode: the rudp control channel itself under loss, the regime
  // the sliding-window rebuild targets (migration control traffic on real
  // networks, per the Gavalas measurement study).
  const std::vector<double> wan_losses =
      fast_mode() ? std::vector<double>{0.0, 0.10}
                  : std::vector<double>{0.0, 0.05, 0.10, 0.20};
  const int wan_senders = fast_mode() ? 4 : 8;
  const int wan_msgs = fast_mode() ? 25 : 50;
  print_header("lossy WAN, rudp control channel (5 ms +-1 ms link, " +
                   std::to_string(wan_senders) + " senders x " +
                   std::to_string(wan_msgs) + " msgs, 256 B)",
               {"loss", "stop-and-wait", "pipelined", "speedup", "retx s/p",
                "fec fix"});
  std::vector<std::string> wan_points;
  double wan_speedup_at_10 = 0, wan_ratio_at_0 = 0;
  for (double loss : wan_losses) {
    const WanPoint base =
        rudp_wan_point(loss, /*pipelined=*/false, wan_senders, wan_msgs);
    const WanPoint pipe =
        rudp_wan_point(loss, /*pipelined=*/true, wan_senders, wan_msgs);
    const double speedup = pipe.msgs_per_sec / base.msgs_per_sec;
    if (std::abs(loss - 0.10) < 1e-9) wan_speedup_at_10 = speedup;
    if (loss == 0.0) wan_ratio_at_0 = speedup;
    print_row({fmt(100.0 * loss, 0) + "%", fmt(base.msgs_per_sec, 0) + "/s",
               fmt(pipe.msgs_per_sec, 0) + "/s", fmt(speedup, 2) + "x",
               std::to_string(base.retransmits) + "/" +
                   std::to_string(pipe.retransmits),
               std::to_string(pipe.fec_repairs)});
    wan_points.push_back(
        JsonObject()
            .field("loss_pct", 100.0 * loss)
            .field("stop_and_wait_msgs_per_sec", base.msgs_per_sec)
            .field("pipelined_msgs_per_sec", pipe.msgs_per_sec)
            .field("speedup", speedup)
            .field("stop_and_wait_retransmits", base.retransmits)
            .field("pipelined_retransmits", pipe.retransmits)
            .field("pipelined_fec_repairs", pipe.fec_repairs)
            .render());
  }
  std::printf("\nlossy-WAN checks: pipelined >=2x at 10%% loss: %s (%.2fx); "
              "no regression at 0%% loss: %s (%.2fx)\n",
              wan_speedup_at_10 >= 2.0 ? "PASS" : "FAIL", wan_speedup_at_10,
              wan_ratio_at_0 >= 0.9 ? "PASS" : "FAIL", wan_ratio_at_0);

  if (json_flag(argc, argv)) {
    write_json_file(
        "BENCH_fig09.json",
        JsonObject()
            .field("bench", std::string("fig09_throughput"))
            .field("mode", std::string(reactor ? "reactor" : "threaded"))
            .raw("figure9", json_array(fig_points))
            .raw("small_message_sim", json_array(small_points))
            .raw("rudp_wan", json_array(wan_points))
            .render());
  }
  return 0;
}
