// Reproduces paper Figure 9 (§4.3): TTCP-style throughput between two
// stationary agents as a function of message size, NapletSocket vs the raw
// socket baseline.
//
// Paper finding: NapletSocket degrades throughput slightly (<5%, from
// synchronized stream access); the gap becomes negligible as message size
// grows.
#include <thread>

#include "bench/bench_util.hpp"

namespace naplet::bench {
namespace {

constexpr std::size_t kBytesPerPoint = 24 * 1024 * 1024;

double mbps(std::size_t bytes, double ms) {
  return static_cast<double>(bytes) * 8.0 / 1e6 / (ms / 1000.0);
}

/// Raw TCP pump: writer sends `count` messages of `size`; reader consumes.
double raw_socket_mbps(std::size_t msg_size, std::size_t total_bytes) {
  auto network = std::make_shared<net::TcpNetwork>();
  auto listener = network->listen(0);
  if (!listener.ok()) std::abort();
  auto client = network->connect((*listener)->local_endpoint(), 2s);
  auto server = (*listener)->accept(2s);
  if (!client.ok() || !server.ok()) std::abort();

  const std::size_t count = std::max<std::size_t>(1, total_bytes / msg_size);
  const util::Bytes payload(msg_size, 0x42);

  util::Stopwatch sw(util::RealClock::instance());
  std::thread writer([&] {
    for (std::size_t i = 0; i < count; ++i) {
      if (!(*client)
               ->write_all(util::ByteSpan(payload.data(), payload.size()))
               .ok()) {
        std::abort();
      }
    }
  });
  std::size_t received = 0;
  std::uint8_t buf[65536];
  while (received < count * msg_size) {
    auto n = (*server)->read_some(buf, sizeof buf);
    if (!n.ok() || *n == 0) std::abort();
    received += *n;
  }
  writer.join();
  return mbps(received, sw.elapsed_ms());
}

/// NapletSocket pump over the same loopback.
double naplet_mbps(std::size_t msg_size, std::size_t total_bytes) {
  BenchRealm realm(2, /*security=*/true);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  if (!realm.ctrl(1).listen(bob).ok()) std::abort();
  auto client = realm.ctrl(0).connect(alice, bob);
  if (!client.ok()) std::abort();
  auto server = realm.ctrl(1).accept(bob, 5s);
  if (!server.ok()) std::abort();

  const std::size_t count = std::max<std::size_t>(1, total_bytes / msg_size);
  const util::Bytes payload(msg_size, 0x42);

  util::Stopwatch sw(util::RealClock::instance());
  std::thread writer([&] {
    for (std::size_t i = 0; i < count; ++i) {
      if (!(*client)
               ->send(util::ByteSpan(payload.data(), payload.size()), 60s)
               .ok()) {
        std::abort();
      }
    }
  });
  std::size_t received = 0;
  while (received < count * msg_size) {
    auto got = (*server)->recv(60s);
    if (!got.ok()) std::abort();
    received += got->body.size();
  }
  writer.join();
  const double result = mbps(received, sw.elapsed_ms());
  (void)realm.ctrl(0).close(*client);
  return result;
}

/// Small-message mode (≤256 B): per-message rate on the Sim backend, where
/// the transport is an in-process pipe and the measurement isolates the
/// protocol stack's CPU cost per message. This is the regime the zero-copy
/// vectored data path targets — framing overhead dominates payload size.
double sim_small_msgs_per_sec(std::size_t msg_size, std::size_t count) {
  net::SimNet net;
  WiredSessionPair pair = sim_session_pair(net);
  const util::Bytes payload(msg_size, 0x42);
  util::Stopwatch sw(util::RealClock::instance());
  std::thread writer([&] {
    for (std::size_t i = 0; i < count; ++i) {
      if (!pair.a->send(util::ByteSpan(payload.data(), payload.size()), 60s)
               .ok()) {
        std::abort();
      }
    }
  });
  for (std::size_t i = 0; i < count; ++i) {
    if (!pair.b->recv(60s).ok()) std::abort();
  }
  writer.join();
  return static_cast<double>(count) / (sw.elapsed_ms() / 1000.0);
}

/// Seed data path measured on this machine (RelWithDebInfo, idle system,
/// 2026-08-07) before the zero-copy vectored rewrite: per-frame heap
/// encode + two transport writes, 1 ms sleep-poll receive. Kept as the
/// before/after reference in BENCH_fig09.json.
struct SmallMsgBaseline {
  std::size_t size;
  double seed_msgs_per_sec;
};
constexpr SmallMsgBaseline kSeedSmallMsg[] = {
    {16, 973132.0}, {64, 1131286.0}, {256, 900877.0}};

}  // namespace
}  // namespace naplet::bench

int main(int argc, char** argv) {
  using namespace naplet::bench;

  std::printf("Figure 9 reproduction: throughput vs message size, "
              "NapletSocket vs raw socket (TTCP-style pump)\n");
  std::printf("Paper finding: NapletSocket within ~5%% of the raw socket, "
              "converging as messages grow\n");

  const std::vector<std::size_t> sizes =
      fast_mode()
          ? std::vector<std::size_t>{64, 4096, 65536}
          : std::vector<std::size_t>{16,   64,    256,   1024, 4096,
                                     16384, 65536, 262144};
  const std::size_t budget = fast_mode() ? 2 * 1024 * 1024 : kBytesPerPoint;

  print_header("Figure 9 (measured, Mb/s, best of 3 runs per point)",
               {"msg size (B)", "raw socket", "NapletSocket", "ratio"});
  const int repeats = fast_mode() ? 1 : 3;
  double last_ratio = 0;
  std::vector<std::string> fig_points;
  for (std::size_t size : sizes) {
    double raw = 0, naplet = 0;
    for (int r = 0; r < repeats; ++r) {
      raw = std::max(raw, raw_socket_mbps(size, budget));
      naplet = std::max(naplet, naplet_mbps(size, budget));
    }
    last_ratio = naplet / raw;
    print_row({std::to_string(size), fmt(raw, 1), fmt(naplet, 1),
               fmt(last_ratio, 3)});
    fig_points.push_back(JsonObject()
                             .field("msg_size", static_cast<std::uint64_t>(size))
                             .field("raw_mbps", raw)
                             .field("naplet_mbps", naplet)
                             .field("ratio", last_ratio)
                             .render());
  }
  std::printf("\nshape check: ratio approaches 1.0 at large messages: %s "
              "(final ratio %.3f)\n",
              last_ratio > 0.7 ? "PASS" : "FAIL", last_ratio);

  // Small-message mode: msgs/s on the Sim backend vs the recorded seed
  // data path — the number the zero-copy rewrite is accountable to.
  const std::size_t small_count = fast_mode() ? 20'000 : 100'000;
  const int small_repeats = fast_mode() ? 1 : 3;
  print_header("small messages, Sim backend (msgs/s, best of " +
                   std::to_string(small_repeats) + ", " +
                   std::to_string(small_count) + " msgs per run)",
               {"msg size (B)", "seed", "current", "speedup"});
  std::vector<std::string> small_points;
  bool small_ok = true;
  for (const auto& base : kSeedSmallMsg) {
    double now = 0;
    for (int r = 0; r < small_repeats; ++r) {
      now = std::max(now, sim_small_msgs_per_sec(base.size, small_count));
    }
    const double speedup = now / base.seed_msgs_per_sec;
    small_ok = small_ok && speedup >= 1.5;
    print_row({std::to_string(base.size), fmt(base.seed_msgs_per_sec, 0),
               fmt(now, 0), fmt(speedup, 2) + "x"});
    small_points.push_back(
        JsonObject()
            .field("msg_size", static_cast<std::uint64_t>(base.size))
            .field("seed_msgs_per_sec", base.seed_msgs_per_sec)
            .field("msgs_per_sec", now)
            .field("speedup", speedup)
            .render());
  }
  std::printf("\nsmall-message target (>=1.5x over seed at <=256 B): %s%s\n",
              small_ok ? "PASS" : "FAIL",
              fast_mode() ? " (fast mode: indicative only — run full sweeps "
                            "on an idle machine for the recorded comparison)"
                          : "");

  if (json_flag(argc, argv)) {
    write_json_file(
        "BENCH_fig09.json",
        JsonObject()
            .field("bench", std::string("fig09_throughput"))
            .raw("figure9", json_array(fig_points))
            .raw("small_message_sim", json_array(small_points))
            .render());
  }
  return 0;
}
