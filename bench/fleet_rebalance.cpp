// Fleet rebalance at scale: a 10k-agent host drain driven through the
// swarm subsystem (drain coordinator -> batch scheduler -> caching
// location tier) over the DES engine, comparing the paper's one-at-a-time
// migration shape against itinerary-aware batching.
//
// The paper migrates a single agent per §3 run; this bench models the
// operational case its mechanism must scale to: a host leaving the fleet
// with thousands of resident agents, every one of them re-resolving the
// same few destination servers and shared peer service agents against the
// directory (a thundering herd).
//
// Two configurations run over identical virtual hardware:
//   solo    — max_batch=1, per-agent handoff exchanges, every location
//             lookup hits the directory (the naive scale-up of the paper's
//             mechanism);
//   swarm   — max_batch=64 with coalesced batch handoffs
//             (core/wire.hpp BatchHandoffMsg) and the CachingLocationService
//             absorbing the herd.
//
// Shape checks (the PR's acceptance bar): batching cuts redirector
// exchanges >= 5x, caching cuts directory lookups >= 10x, and the swarm
// makespan beats solo. --json writes BENCH_fleet_rebalance.json with the
// makespan and per-phase percentiles.
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "obs/metrics.hpp"
#include "sim/des.hpp"
#include "swarm/drain.hpp"
#include "swarm/location_cache.hpp"
#include "swarm/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace naplet;

constexpr int kDestinations = 8;
constexpr int kSharedServices = 50;  // the herd's common peer agents
constexpr int kPeersPerAgent = 3;

/// The in-process LocationService with a call meter on the read paths —
/// standing in for the DirectoryServer whose load the caching tier cuts.
class CountingLocationService final : public agent::LocationService {
 public:
  [[nodiscard]] std::optional<agent::NodeInfo> try_lookup(
      const agent::AgentId& id) const override {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    return agent::LocationService::try_lookup(id);
  }
  [[nodiscard]] util::StatusOr<agent::NodeInfo> lookup(
      const agent::AgentId& id, util::Duration timeout) const override {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    return agent::LocationService::lookup(id, timeout);
  }
  [[nodiscard]] util::StatusOr<agent::NodeInfo> lookup_server(
      const std::string& server_name) const override {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    return agent::LocationService::lookup_server(server_name);
  }
  [[nodiscard]] std::uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::uint64_t> lookups_{0};
};

std::string dest_name(int i) { return "dest" + std::to_string(i); }

/// DES cost model, loosely calibrated to the paper's testbed shape:
/// per-agent serialize work, a wire transfer with per-batch setup, and a
/// reactivation whose cost is dominated by redirector exchanges and
/// directory lookups — exactly the two terms batching and caching remove.
struct DesExecutor final : swarm::StageExecutor {
  sim::Simulator& sim;
  util::Rng& rng;
  agent::LocationService& directory;   // cache or raw, per configuration
  const CountingLocationService& raw;  // the meter underneath
  bool coalesce = true;

  DesExecutor(sim::Simulator& s, util::Rng& r, agent::LocationService& d,
              const CountingLocationService& meter)
      : sim(s), rng(r), directory(d), raw(meter) {}

  double jitter_ms(double scale) {
    return scale * static_cast<double>(rng.next_below(1000)) / 1000.0;
  }

  void serialize(const swarm::MigrationBatch& batch, Done done) override {
    const double n = static_cast<double>(batch.agents.size());
    sim.schedule_in(0.3 + 0.05 * n + jitter_ms(0.2),
                    [done] { done(util::OkStatus()); });
  }

  void transfer(const swarm::MigrationBatch& batch, Done done) override {
    const double n = static_cast<double>(batch.agents.size());
    sim.schedule_in(1.0 + 0.02 * n + jitter_ms(0.5),
                    [done] { done(util::OkStatus()); });
  }

  void reactivate(const swarm::MigrationBatch& batch, Done done) override {
    // Every landing agent re-resolves its destination server and a few
    // shared peers. Lookups that reach the backing directory cost a round
    // trip (0.2 ms); cache hits are in-process (0.005 ms).
    const std::uint64_t before = raw.lookups();
    std::uint64_t calls = 0;
    for (const agent::AgentId& id : batch.agents) {
      (void)id;
      (void)directory.lookup_server(batch.destination);
      ++calls;
      for (int p = 0; p < kPeersPerAgent; ++p) {
        const agent::AgentId peer(
            "svc" + std::to_string(rng.next_below(kSharedServices)));
        (void)directory.try_lookup(peer);
        ++calls;
      }
    }
    const std::uint64_t through = raw.lookups() - before;
    const double lookup_ms = 0.2 * static_cast<double>(through) +
                             0.005 * static_cast<double>(calls - through);
    // Redirector handoffs: one exchange per batch when coalesced, one per
    // agent otherwise — each exchange is a TCP round trip (0.8 ms).
    const double exchanges =
        coalesce ? 1.0 : static_cast<double>(batch.agents.size());
    const double n = static_cast<double>(batch.agents.size());
    sim.schedule_in(0.8 * exchanges + 0.1 * n + lookup_ms + jitter_ms(0.3),
                    [done] { done(util::OkStatus()); });
  }
};

struct RunResult {
  swarm::DrainReport drain;
  swarm::SchedulerReport sched;
  std::uint64_t directory_lookups = 0;
  double total_makespan_ms = 0;
  obs::Snapshot metrics;
};

RunResult run_config(int agents, bool batched, bool cached,
                     std::uint64_t seed) {
  sim::Simulator sim;
  util::Rng rng(seed);
  obs::Registry registry;

  CountingLocationService raw;
  for (int i = 0; i < kDestinations; ++i) {
    agent::NodeInfo info;
    info.server_name = dest_name(i);
    raw.register_server(info);
  }
  agent::NodeInfo src_info;
  src_info.server_name = "source";
  for (int i = 0; i < kSharedServices; ++i) {
    raw.register_agent(agent::AgentId("svc" + std::to_string(i)), src_info);
  }

  swarm::LocationCacheConfig cache_config;
  cache_config.now_us = [&sim] {
    return static_cast<std::int64_t>(sim.now() * 1000.0);
  };
  swarm::CachingLocationService cache(raw, cache_config, &registry);
  agent::LocationService& directory =
      cached ? static_cast<agent::LocationService&>(cache) : raw;

  std::vector<agent::AgentId> fleet;
  fleet.reserve(static_cast<std::size_t>(agents));
  for (int i = 0; i < agents; ++i) {
    fleet.emplace_back("agent" + std::to_string(i));
  }

  // Phase 1 — drain the source host in latency-tuned waves. Suspend
  // latency: ~1.5-2.5 ms, with a 5% slow tail at ~8 ms.
  swarm::DrainConfig drain_config;
  drain_config.target_wave_ms = 50.0;
  drain_config.min_wave = 8;
  drain_config.max_wave = 256;
  drain_config.now_ms = [&sim] { return sim.now(); };
  drain_config.defer = [&sim](double delay_ms, std::function<void()> fn) {
    sim.schedule_in(delay_ms, std::move(fn));
  };
  swarm::DrainCoordinator drain(
      drain_config,
      [&sim, &rng](const agent::AgentId&,
                   std::function<void(util::Status)> done) {
        const bool slow = rng.next_below(100) < 5;
        const double latency =
            (slow ? 8.0 : 1.5) +
            static_cast<double>(rng.next_below(1000)) / 1000.0;
        sim.schedule_in(latency, [done] { done(util::OkStatus()); });
      },
      &registry);
  drain.drain(fleet);
  sim.run();
  const swarm::DrainReport drain_report = drain.report();

  // Phase 2 — batch and rebalance across the destinations, itineraries
  // assigning agents round-robin (so each destination receives an equal
  // shard of the herd).
  DesExecutor executor(sim, rng, directory, raw);
  executor.coalesce = batched;
  swarm::SchedulerConfig sched_config;
  sched_config.max_batch = batched ? 64 : 1;
  sched_config.coalesce_handoffs = batched;
  sched_config.serialize_slots = 2;
  sched_config.transfer_slots = 8;
  sched_config.per_destination_admission = 2;
  sched_config.now_ms = [&sim] { return sim.now(); };
  swarm::MigrationScheduler scheduler(sched_config, executor, &registry);

  std::vector<swarm::AgentPlan> plans;
  plans.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    plans.push_back(swarm::AgentPlan{
        fleet[i], dest_name(static_cast<int>(i) % kDestinations)});
  }
  const std::uint64_t lookups_before = raw.lookups();
  scheduler.run(plans);
  sim.run();

  RunResult result;
  result.drain = drain_report;
  result.sched = scheduler.report();
  result.directory_lookups = raw.lookups() - lookups_before;
  result.total_makespan_ms =
      drain_report.makespan_ms + result.sched.makespan_ms;
  result.metrics = registry.snapshot();
  return result;
}

double phase_p(const obs::Snapshot& snap, const char* name, double p) {
  const obs::HistogramSnapshot* h = snap.histogram(name);
  return h == nullptr ? 0.0 : h->percentile(p) / 1000.0;  // us -> ms
}

std::string phase_json(const obs::Snapshot& snap, const char* name) {
  naplet::bench::JsonObject obj;
  obj.field("p50_ms", phase_p(snap, name, 50.0));
  obj.field("p95_ms", phase_p(snap, name, 95.0));
  obj.field("p99_ms", phase_p(snap, name, 99.0));
  return obj.render();
}

std::string result_json(const RunResult& r) {
  naplet::bench::JsonObject drain;
  drain.field("makespan_ms", r.drain.makespan_ms);
  drain.field("suspend_phase_ms", r.drain.suspend_phase_ms);
  drain.field("straggler_phase_ms", r.drain.straggler_phase_ms);
  drain.field("waves", static_cast<std::uint64_t>(r.drain.waves));
  drain.field("retries", static_cast<std::uint64_t>(r.drain.retries));
  drain.raw("suspend", phase_json(r.metrics, "swarm_drain_suspend_us"));

  naplet::bench::JsonObject sched;
  sched.field("makespan_ms", r.sched.makespan_ms);
  sched.field("batches", static_cast<std::uint64_t>(r.sched.batches));
  sched.field("migrated", static_cast<std::uint64_t>(r.sched.migrated));
  sched.field("handoff_exchanges", r.sched.handoff_exchanges);
  sched.raw("serialize", phase_json(r.metrics, "swarm_serialize_us"));
  sched.raw("transfer", phase_json(r.metrics, "swarm_transfer_us"));
  sched.raw("reactivate", phase_json(r.metrics, "swarm_reactivate_us"));

  naplet::bench::JsonObject obj;
  obj.field("total_makespan_ms", r.total_makespan_ms);
  obj.field("directory_lookups", r.directory_lookups);
  obj.raw("drain", drain.render());
  obj.raw("rebalance", sched.render());
  return obj.render();
}

}  // namespace

int main(int argc, char** argv) {
  using naplet::bench::JsonObject;

  const bool fast = naplet::bench::fast_mode();
  const int agents = fast ? 2000 : 10000;

  std::printf("Fleet rebalance: %d agents drain off one host onto %d "
              "destinations (DES)\n",
              agents, kDestinations);
  std::printf("solo  = paper's per-agent migration at scale "
              "(no batching, no caching)\n");
  std::printf("swarm = batch scheduler + coalesced handoffs + caching "
              "location tier\n\n");

  const RunResult solo = run_config(agents, /*batched=*/false,
                                    /*cached=*/false, /*seed=*/42);
  const RunResult swarm = run_config(agents, /*batched=*/true,
                                     /*cached=*/true, /*seed=*/42);

  const double exchange_ratio =
      swarm.sched.handoff_exchanges == 0
          ? 0.0
          : static_cast<double>(solo.sched.handoff_exchanges) /
                static_cast<double>(swarm.sched.handoff_exchanges);
  const double lookup_ratio =
      swarm.directory_lookups == 0
          ? 0.0
          : static_cast<double>(solo.directory_lookups) /
                static_cast<double>(swarm.directory_lookups);

  std::printf("%-28s %14s %14s\n", "", "solo", "swarm");
  std::printf("%-28s %14.1f %14.1f\n", "total makespan (ms)",
              solo.total_makespan_ms, swarm.total_makespan_ms);
  std::printf("%-28s %14.1f %14.1f\n", "  drain phase (ms)",
              solo.drain.makespan_ms, swarm.drain.makespan_ms);
  std::printf("%-28s %14.1f %14.1f\n", "  rebalance phase (ms)",
              solo.sched.makespan_ms, swarm.sched.makespan_ms);
  std::printf("%-28s %14llu %14llu\n", "redirector exchanges",
              static_cast<unsigned long long>(solo.sched.handoff_exchanges),
              static_cast<unsigned long long>(swarm.sched.handoff_exchanges));
  std::printf("%-28s %14llu %14llu\n", "directory lookups",
              static_cast<unsigned long long>(solo.directory_lookups),
              static_cast<unsigned long long>(swarm.directory_lookups));
  std::printf("%-28s %14llu %14llu\n", "batches",
              static_cast<unsigned long long>(solo.sched.batches),
              static_cast<unsigned long long>(swarm.sched.batches));
  std::printf("%-28s %14.1f %14.1f\n", "reactivate p95 (ms)",
              phase_p(solo.metrics, "swarm_reactivate_us", 95.0),
              phase_p(swarm.metrics, "swarm_reactivate_us", 95.0));
  std::printf("\nexchange reduction: %.1fx   lookup reduction: %.1fx\n\n",
              exchange_ratio, lookup_ratio);

  bool ok = true;
  const auto check = [&ok](bool cond, const char* what) {
    std::printf("%s: %s\n", cond ? "PASS" : "FAIL", what);
    if (!cond) ok = false;
  };
  check(solo.sched.migrated == static_cast<std::size_t>(agents) &&
            swarm.sched.migrated == static_cast<std::size_t>(agents),
        "every agent migrated in both configurations");
  check(solo.drain.stragglers == 0 && swarm.drain.stragglers == 0,
        "drains completed without stragglers");
  check(exchange_ratio >= 5.0,
        "batched handoffs cut redirector exchanges >= 5x");
  check(lookup_ratio >= 10.0,
        "caching cut directory lookups >= 10x");
  check(swarm.total_makespan_ms < solo.total_makespan_ms,
        "swarm makespan beats solo");

  if (naplet::bench::json_flag(argc, argv)) {
    JsonObject root;
    root.field("agents", static_cast<std::uint64_t>(agents));
    root.field("destinations", static_cast<std::uint64_t>(kDestinations));
    root.field("exchange_reduction", exchange_ratio);
    root.field("lookup_reduction", lookup_ratio);
    root.field("pass", std::string(ok ? "true" : "false"));
    root.raw("solo", result_json(solo));
    root.raw("swarm", result_json(swarm));
    naplet::bench::write_json_file("BENCH_fleet_rebalance.json",
                                   root.render());
  }
  return ok ? 0 : 1;
}
