// Ablation bench for the fault-tolerance extension (paper §7 future work,
// implemented here): message delivery under repeated link failures with
// recovery on vs off, plus the steady-state overhead of the heartbeat and
// retransmission-history machinery when nothing fails.
//
// Runs over the in-process simulated network so link failures can be
// injected deterministically.
#include <filesystem>
#include <thread>

#include "bench/bench_util.hpp"
#include "net/rudp.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"

namespace naplet::bench {
namespace {

struct RunResult {
  int delivered = 0;
  int attempted = 0;
  double elapsed_ms = 0;
  std::uint64_t repairs = 0;
};

RunResult run(bool recovery, int failures, int messages_per_phase,
              util::Duration drain_timeout = {}) {
  if (drain_timeout.count() == 0) drain_timeout = recovery ? 2s : 300ms;
  net::SimNet net;
  nsock::Realm realm;
  for (const char* name : {"a", "b"}) {
    nsock::NodeConfig config;
    config.controller.security = false;
    if (recovery) {
      config.controller.failure_recovery.enabled = true;
      config.controller.failure_recovery.probe_interval = 50ms;
    }
    realm.add_node(name, net.add_node(name), config);
  }
  if (!realm.start().ok()) std::abort();

  agent::AgentId alice("alice"), bob("bob");
  realm.locations().register_agent(alice,
                                   realm.node("a").server().node_info());
  realm.locations().register_agent(bob, realm.node("b").server().node_info());
  if (!realm.node("b").controller().listen(bob).ok()) std::abort();
  auto client = realm.node("a").controller().connect(alice, bob);
  if (!client.ok()) std::abort();
  auto server = realm.node("b").controller().accept(bob, 5s);
  if (!server.ok()) std::abort();

  RunResult result;
  util::Stopwatch sw(util::RealClock::instance());

  for (int phase = 0; phase <= failures; ++phase) {
    for (int i = 0; i < messages_per_phase; ++i) {
      ++result.attempted;
      // Bounded retries: with recovery the repair loop heals the link; off,
      // sends keep failing until we give up on this message.
      // Without recovery, failed sends never heal; give up quickly.
      const std::int64_t deadline =
          util::RealClock::instance().now_us() +
          (recovery ? 3'000'000 : 600'000);
      while (util::RealClock::instance().now_us() < deadline) {
        if ((*client)->send(span("payload"), 500ms).ok()) break;
      }
    }
    if (phase < failures) net.sever_streams("a", "b");
  }

  // Drain whatever made it across.
  while ((*server)->recv(drain_timeout).ok()) ++result.delivered;

  result.elapsed_ms = sw.elapsed_ms();
  result.repairs = realm.node("a").controller().links_repaired() +
                   realm.node("b").controller().links_repaired();
  realm.stop();
  return result;
}

struct RestartResult {
  bool ok = false;
  double restart_recovery_ms = 0;
  std::uint64_t resume_retries = 0;
  // Per-phase latency histograms for the crash-restart migration: suspend
  // and drain run on the origin (node0), handoff and resume on the mover's
  // new host (node2). Merged into one snapshot per phase name.
  obs::Snapshot phases;
};

nsock::NodeConfig restart_node_config(const std::string& durable_dir) {
  nsock::NodeConfig config;
  config.controller.security = false;
  config.server.rudp_config.retransmit_interval =
      std::chrono::milliseconds(15);
  config.server.rudp_config.max_attempts = 40;
  config.controller.ctrl_response_timeout = 1s;
  config.controller.failure_recovery.enabled = true;
  config.controller.failure_recovery.probe_interval = 500ms;
  config.controller.failure_recovery.probe_timeout = 200ms;
  config.controller.failure_recovery.miss_threshold = 1000;
  config.controller.resume_max_attempts = 25;
  config.controller.resume_retry_backoff = 50ms;
  config.controller.resume_retry_cap = 400ms;
  config.controller.resume_timeout = 8s;
  config.controller.redirector_leases.enabled = true;
  config.controller.redirector_leases.ttl = 3s;
  if (!durable_dir.empty()) {
    config.controller.durability.enabled = true;
    config.controller.durability.dir = durable_dir;
  }
  return config;
}

// Crash-restart recovery: the server-side controller is killed after the
// migrating client has been exported/imported (the session is journaled at
// its commit points), then stood up again from the journal. Measures the
// wall time from restart to the migration resuming exactly-once.
RestartResult run_restart() {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "naplet-bench-restart").string();
  fs::remove_all(dir);

  net::SimNet net(/*seed=*/1);
  net.set_default_link(net::LinkConfig{.latency = 1ms});
  nsock::Realm realm;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "node" + std::to_string(i);
    realm.add_node(name, net.add_node(name),
                   restart_node_config(i == 1 ? dir : ""));
  }
  if (!realm.start().ok()) std::abort();

  RestartResult result;
  agent::AgentId cli("cli"), srv("srv");
  realm.locations().register_agent(cli,
                                   realm.node("node0").server().node_info());
  realm.locations().register_agent(srv,
                                   realm.node("node1").server().node_info());
  if (!realm.node("node1").controller().listen(srv).ok()) std::abort();
  auto client = realm.node("node0").controller().connect(cli, srv);
  auto server = realm.node("node1").controller().accept(srv, 5s);
  if (!client.ok() || !server.ok()) std::abort();
  (void)(*client)->send(span("pre-crash"), 1s);
  (void)(*server)->recv(1s);

  // Stage the client's migration to node2, then crash the server host.
  realm.locations().begin_migration(cli);
  if (!realm.node("node0").controller().prepare_migration(cli).ok()) {
    realm.stop();
    fs::remove_all(dir);
    return result;
  }
  const util::Bytes blob = realm.node("node0").controller().export_sessions(cli);
  if (!realm.node("node2")
           .controller()
           .import_sessions(cli, util::ByteSpan(blob.data(), blob.size()))
           .ok()) {
    std::abort();
  }
  realm.locations().register_agent(cli,
                                   realm.node("node2").server().node_info());
  realm.remove_node("node1");

  util::Stopwatch sw(util::RealClock::instance());
  auto& reborn = realm.add_node("node1", net.add_node("node1"),
                                restart_node_config(dir));
  if (!reborn.start().ok() || !reborn.controller().recover().ok()) {
    realm.stop();
    fs::remove_all(dir);
    return result;
  }
  realm.locations().register_agent(srv, reborn.server().node_info());
  result.ok = realm.node("node2").controller().complete_migration(cli).ok();
  result.restart_recovery_ms = sw.elapsed_ms();
  result.resume_retries = realm.node("node2").controller().resume_retries();

  // Suspend/drain were recorded on node0, handoff/resume on node2; every
  // controller registers the same instruments, so merging the same-named
  // histograms yields one per-phase view of the whole migration.
  result.phases = realm.node("node0").controller().metrics().snapshot();
  const obs::Snapshot mover =
      realm.node("node2").controller().metrics().snapshot();
  for (auto& hist : result.phases.histograms) {
    if (const auto* other = mover.histogram(hist.name)) hist.merge(*other);
  }

  realm.stop();
  fs::remove_all(dir);
  return result;
}

// --- lossy-link suspend/resume sweep ---------------------------------------
// Quantifies what the pipelined sliding-window rudp (SACK, RTT-adaptive
// timers, XOR-FEC) buys for the paper's core operation — suspending and
// resuming a live session — when the control channel crosses a lossy 1 ms
// link. "baseline" pins the transport to the seed's stop-and-wait shape:
// one packet in flight, fixed retransmit timer, no SACK-driven fast
// retransmit, no loss repair.

struct SweepModeResult {
  double suspend_p50 = 0, suspend_p95 = 0, suspend_p99 = 0;
  double resume_p50 = 0, resume_p95 = 0, resume_p99 = 0;
  std::uint64_t retransmits = 0;  // both directions
  std::uint64_t fec_repairs = 0;  // both directions
};

nsock::NodeConfig sweep_node_config(bool pipelined) {
  nsock::NodeConfig config;
  config.controller.security = false;
  auto& rudp = config.server.rudp_config;
  rudp.retransmit_interval = std::chrono::milliseconds(15);
  rudp.max_attempts = 40;
  if (pipelined) {
    rudp.repair = net::LossRepair::kXorFec;
  } else {
    rudp.window_packets = 1;
    rudp.adaptive_rto = false;
    rudp.fast_retx_dupacks = 0;  // 0 disables fast retransmit
    rudp.repair = net::LossRepair::kNone;
  }
  return config;
}

SweepModeResult run_loss_point(double loss, bool pipelined, int rounds) {
  net::SimNet net(/*seed=*/7);
  net.set_default_link(net::LinkConfig{.latency = 1ms, .datagram_loss = loss});
  nsock::Realm realm;
  for (const char* name : {"a", "b"}) {
    realm.add_node(name, net.add_node(name), sweep_node_config(pipelined));
  }
  if (!realm.start().ok()) std::abort();

  agent::AgentId cli("cli"), srv("srv");
  realm.locations().register_agent(cli,
                                   realm.node("a").server().node_info());
  realm.locations().register_agent(srv,
                                   realm.node("b").server().node_info());
  if (!realm.node("b").controller().listen(srv).ok()) std::abort();
  auto client = realm.node("a").controller().connect(cli, srv);
  if (!client.ok()) std::abort();
  auto server = realm.node("b").controller().accept(srv, 5s);
  if (!server.ok()) std::abort();

  auto& ctrl = realm.node("a").controller();
  for (int i = 0; i < rounds; ++i) {
    if (!ctrl.suspend(*client).ok()) std::abort();
    if (!ctrl.resume(*client).ok()) std::abort();
  }

  SweepModeResult result;
  const obs::Snapshot origin = ctrl.metrics().snapshot();
  if (const auto* h = origin.histogram("nsock_suspend_latency_us")) {
    result.suspend_p50 = h->percentile(50);
    result.suspend_p95 = h->percentile(95);
    result.suspend_p99 = h->percentile(99);
  }
  if (const auto* h = origin.histogram("nsock_resume_latency_us")) {
    result.resume_p50 = h->percentile(50);
    result.resume_p95 = h->percentile(95);
    result.resume_p99 = h->percentile(99);
  }
  // Loss hits both directions; retransmits accrue on each node's sender and
  // FEC repairs on each node's receiver, so sum the two controllers.
  const obs::Snapshot remote =
      realm.node("b").controller().metrics().snapshot();
  for (const obs::Snapshot* snap : {&origin, &remote}) {
    if (const auto* h = snap->histogram("rudp_retransmits_per_send")) {
      result.retransmits += h->sum;
    }
    if (const auto* c = snap->counter("rudp_fec_repairs")) {
      result.fec_repairs += c->value;
    }
  }
  realm.stop();
  return result;
}

}  // namespace
}  // namespace naplet::bench

int main(int argc, char** argv) {
  using namespace naplet::bench;

  std::printf("Fault-tolerance extension ablation: delivery under injected "
              "link failures, recovery on vs off\n");
  std::printf("(The paper defers link/host failures to future work; this "
              "quantifies what the extension buys.)\n");

  const int failures = fast_mode() ? 2 : 4;
  const int per_phase = fast_mode() ? 5 : 10;
  const int total = (failures + 1) * per_phase;

  const RunResult off = run(false, failures, per_phase);
  const RunResult on = run(true, failures, per_phase);

  print_header("Delivery across " + std::to_string(failures) +
                   " link failures (" + std::to_string(total) +
                   " messages attempted)",
               {"mode", "delivered", "repairs", "time (ms)"});
  print_row({"recovery OFF", std::to_string(off.delivered) + "/" +
                                 std::to_string(total),
             std::to_string(off.repairs), fmt(off.elapsed_ms, 0)});
  print_row({"recovery ON", std::to_string(on.delivered) + "/" +
                                std::to_string(total),
             std::to_string(on.repairs), fmt(on.elapsed_ms, 0)});

  // Steady-state cost: ping-pong latency with the extension on vs off, no
  // failures injected (history copies + heartbeat traffic).
  auto steady = [&](bool recovery) {
    const int n = fast_mode() ? 200 : 1000;
    const RunResult r = run(recovery, 0, n, 300ms);
    // Exclude the fixed 300 ms drain tail from the per-message figure.
    return (r.elapsed_ms - 300.0) / static_cast<double>(n);
  };
  const double off_ms = steady(false);
  const double on_ms = steady(true);
  std::printf("\nsteady-state cost per message: off %.4f ms, on %.4f ms "
              "(overhead %.1f%%)\n",
              off_ms, on_ms, 100.0 * (on_ms - off_ms) / off_ms);

  // Crash-restart recovery: journal replay + resume across a controller
  // restart (the PR-4 durability layer).
  const RestartResult restart = run_restart();
  std::printf("\ncrash-restart recovery: %s, %.1f ms restart->resumed, "
              "%llu resume retries\n",
              restart.ok ? "resumed" : "FAILED", restart.restart_recovery_ms,
              static_cast<unsigned long long>(restart.resume_retries));

  // Suspend/resume latency vs datagram loss, stop-and-wait transport vs the
  // pipelined sliding-window rudp (adaptive RTO + SACK fast retransmit +
  // XOR-FEC).
  const std::vector<double> losses =
      fast_mode() ? std::vector<double>{0.0, 0.10}
                  : std::vector<double>{0.0, 0.05, 0.10, 0.20};
  const int sweep_rounds = fast_mode() ? 12 : 60;
  print_header("suspend/resume over lossy link (" +
                   std::to_string(sweep_rounds) + " rounds per point, us)",
               {"loss", "mode", "susp p50", "susp p95", "resume p50",
                "resume p95", "retx", "fec fix"});
  struct SweepRow {
    double loss;
    SweepModeResult baseline, pipelined;
  };
  std::vector<SweepRow> sweep;
  for (double loss : losses) {
    SweepRow row;
    row.loss = loss;
    row.baseline = run_loss_point(loss, /*pipelined=*/false, sweep_rounds);
    row.pipelined = run_loss_point(loss, /*pipelined=*/true, sweep_rounds);
    for (const auto& [label, r] :
         {std::pair<const char*, const SweepModeResult*>{"stop-and-wait",
                                                         &row.baseline},
          {"pipelined", &row.pipelined}}) {
      print_row({fmt(100.0 * loss, 0) + "%", label, fmt(r->suspend_p50, 0),
                 fmt(r->suspend_p95, 0), fmt(r->resume_p50, 0),
                 fmt(r->resume_p95, 0), std::to_string(r->retransmits),
                 std::to_string(r->fec_repairs)});
    }
    sweep.push_back(row);
  }
  // The acceptance bar for the transport rebuild: at 10% loss the pipelined
  // stack halves the suspend->resume p95 relative to stop-and-wait.
  bool sweep_ok = false;
  double base_p95 = 0, pipe_p95 = 0;
  for (const auto& row : sweep) {
    if (std::abs(row.loss - 0.10) > 1e-9) continue;
    base_p95 = row.baseline.suspend_p95 + row.baseline.resume_p95;
    pipe_p95 = row.pipelined.suspend_p95 + row.pipelined.resume_p95;
    sweep_ok = pipe_p95 > 0 && base_p95 >= 2.0 * pipe_p95;
  }

  std::printf("\nshape checks:\n");
  std::printf("  recovery ON delivers everything : %s (%d/%d)\n",
              on.delivered == total ? "PASS" : "FAIL", on.delivered, total);
  std::printf("  recovery OFF loses messages     : %s (%d/%d)\n",
              off.delivered < total ? "PASS" : "FAIL", off.delivered, total);
  std::printf("  repairs occurred                : %s (%llu)\n",
              on.repairs >= 1 ? "PASS" : "FAIL",
              static_cast<unsigned long long>(on.repairs));
  std::printf("  restart recovery resumes        : %s\n",
              restart.ok ? "PASS" : "FAIL");
  std::printf("  pipelined >=2x at 10%% loss      : %s "
              "(suspend+resume p95: %.0f us vs %.0f us)\n",
              sweep_ok ? "PASS" : "FAIL", base_p95, pipe_p95);

  if (json_flag(argc, argv)) {
    JsonObject obj;
    obj.field("bench", std::string("ext_failure_recovery"))
        .field("failures", static_cast<std::uint64_t>(failures))
        .field("attempted", static_cast<std::uint64_t>(total))
        .field("delivered_recovery_off",
               static_cast<std::uint64_t>(off.delivered))
        .field("delivered_recovery_on",
               static_cast<std::uint64_t>(on.delivered))
        .field("repairs_off", off.repairs)
        .field("repairs_on", on.repairs)
        .field("elapsed_ms_off", off.elapsed_ms)
        .field("elapsed_ms_on", on.elapsed_ms)
        .field("steady_state_ms_off", off_ms)
        .field("steady_state_ms_on", on_ms)
        .field("restart_recovery_ms", restart.restart_recovery_ms)
        .field("resume_retries", restart.resume_retries);
    // Per-phase percentiles of the crash-restart migration, from the merged
    // origin+mover controller histograms.
    const std::pair<const char*, const char*> kPhases[] = {
        {"suspend", "nsock_suspend_latency_us"},
        {"drain", "nsock_drain_time_us"},
        {"handoff", "nsock_handoff_time_us"},
        {"resume", "nsock_resume_latency_us"},
    };
    for (const auto& [label, name] : kPhases) {
      const auto* h = restart.phases.histogram(name);
      if (h == nullptr) continue;
      obj.raw(label, JsonObject()
                         .field("count", h->count)
                         .field("mean_us", h->mean())
                         .field("p50_us", h->percentile(50))
                         .field("p95_us", h->percentile(95))
                         .field("p99_us", h->percentile(99))
                         .render());
    }
    // Per-loss-rate suspend/resume percentiles for both transport modes
    // (new keys; everything above is unchanged for existing consumers).
    const auto mode_json = [](const SweepModeResult& r) {
      return JsonObject()
          .field("suspend_p50_us", r.suspend_p50)
          .field("suspend_p95_us", r.suspend_p95)
          .field("suspend_p99_us", r.suspend_p99)
          .field("resume_p50_us", r.resume_p50)
          .field("resume_p95_us", r.resume_p95)
          .field("resume_p99_us", r.resume_p99)
          .field("retransmits", r.retransmits)
          .field("fec_repairs", r.fec_repairs)
          .render();
    };
    std::vector<std::string> sweep_points;
    for (const auto& row : sweep) {
      sweep_points.push_back(
          JsonObject()
              .field("loss_pct", 100.0 * row.loss)
              .field("rounds", static_cast<std::uint64_t>(sweep_rounds))
              .raw("stop_and_wait", mode_json(row.baseline))
              .raw("pipelined", mode_json(row.pipelined))
              .render());
    }
    obj.raw("loss_sweep", json_array(sweep_points));
    write_json_file("BENCH_ext_failure_recovery.json", obj.render());
  }
  return 0;
}
