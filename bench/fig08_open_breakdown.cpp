// Reproduces paper Figure 8 (§4.2): breakdown of the connection-open
// latency into management, handshaking, security check, key exchange and
// socket-open phases, for raw sockets and NapletSocket with/without
// security.
//
// Paper finding: with security enabled, more than 80% of the open time is
// spent on key establishment, authentication and authorization.
#include "bench/bench_util.hpp"

namespace naplet::bench {
namespace {

struct Breakdown {
  double management = 0, security = 0, key_exchange = 0, handshake = 0,
         open_socket = 0;

  double total() const {
    return management + security + key_exchange + handshake + open_socket;
  }
};

Breakdown measure(bool security, int iterations) {
  BenchRealm realm(2, security);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  if (!realm.ctrl(1).listen(bob).ok()) std::abort();

  Breakdown sum;
  for (int i = 0; i < iterations; ++i) {
    nsock::ConnectBreakdown bd;
    auto client = realm.ctrl(0).connect(alice, bob, &bd);
    if (!client.ok()) std::abort();
    auto server = realm.ctrl(1).accept(bob, 5s);
    if (!server.ok()) std::abort();
    sum.management += bd.management_ms;
    sum.security += bd.security_check_ms;
    sum.key_exchange += bd.key_exchange_ms;
    sum.handshake += bd.handshake_ms;
    sum.open_socket += bd.open_socket_ms;
    (void)realm.ctrl(0).close(*client);
  }
  const double n = iterations;
  return {sum.management / n, sum.security / n, sum.key_exchange / n,
          sum.handshake / n, sum.open_socket / n};
}

double measure_raw_open(int iterations) {
  auto network = std::make_shared<net::TcpNetwork>();
  auto listener = network->listen(0);
  if (!listener.ok()) std::abort();
  std::vector<double> ms;
  for (int i = 0; i < iterations; ++i) {
    util::Stopwatch sw(util::RealClock::instance());
    auto client = network->connect((*listener)->local_endpoint(), 2s);
    auto server = (*listener)->accept(2s);
    if (!client.ok() || !server.ok()) std::abort();
    ms.push_back(sw.elapsed_ms());
  }
  return mean(ms);
}

}  // namespace
}  // namespace naplet::bench

int main() {
  using namespace naplet::bench;
  const int iterations = fast_mode() ? 10 : 100;

  std::printf("Figure 8 reproduction: breakdown of connection-open latency "
              "(%d iterations)\n", iterations);
  std::printf("Paper finding: security (key exchange + auth) is >80%% of the "
              "secure open cost\n");

  const double raw = measure_raw_open(iterations);
  const Breakdown insecure = measure(false, iterations);
  const Breakdown secure = measure(true, iterations);

  // Note: the server side's DH + authentication run inside the handshake
  // round trip as observed from the client, so "security share" counts
  // security_check + key_exchange + the handshake excess over the
  // insecure handshake.
  print_header("Figure 8 (measured, ms per phase)",
               {"phase", "raw socket", "NS w/o sec", "NS with sec"});
  print_row({"open socket", fmt(raw, 3), fmt(insecure.open_socket, 3),
             fmt(secure.open_socket, 3)});
  print_row({"key exchange", "-", fmt(insecure.key_exchange, 3),
             fmt(secure.key_exchange, 3)});
  print_row({"security check", "-", fmt(insecure.security, 3),
             fmt(secure.security, 3)});
  print_row({"handshaking", "-", fmt(insecure.handshake, 3),
             fmt(secure.handshake, 3)});
  print_row({"management", "-", fmt(insecure.management, 3),
             fmt(secure.management, 3)});
  print_row({"TOTAL", fmt(raw, 3), fmt(insecure.total(), 3),
             fmt(secure.total(), 3)});

  const double handshake_security_excess =
      std::max(0.0, secure.handshake - insecure.handshake);
  const double security_share =
      (secure.security + secure.key_exchange + handshake_security_excess) /
      secure.total();
  std::printf("\nsecurity-attributable share of secure open: %.1f%%  (paper: >80%%) -> %s\n",
              security_share * 100.0,
              security_share > 0.5 ? "PASS (dominant)" : "FAIL");
  return 0;
}
