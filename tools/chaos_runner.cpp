// chaos_runner: seed-replayable chaos testing for the NapletSocket
// migration protocol.
//
//   chaos_runner --seed 42 --runs 100        random sweep (seeds 42..141)
//   chaos_runner --seed 7331                 replay one case bit-for-bit
//   chaos_runner --seed 7 --plant-dup        append the deliberate
//                                            exactly-once regression; the
//                                            ledger oracle must catch it
//   chaos_runner --seed 7 --plant-dup --minimize
//                                            then delta-debug the schedule
//                                            to a minimal failing subset
//   chaos_runner --plan "rudp.send@#2:drop" --scenario 1 --seed 9
//                                            scripted plan, explicit
//                                            scenario (plan replaces the
//                                            generated one)
//   chaos_runner --scenario 3 --seed 5       crash-restart scenario (3 =
//                                            crash-suspend, 4 = crash-
//                                            resume, 5 = crash-double)
//                                            with the recovery stack on
//   chaos_runner --scenario 4 --no-recovery  the control: same crash, all
//                                            recovery off — must fail
//                                            cleanly, not hang
//   chaos_runner --scenario 6 --seed 5       swarm scenario (6 = host
//                                            drain under a healing
//                                            partition, 7 = cascading
//                                            rebalance off a refused
//                                            batch admission)
//   chaos_runner --scenario 8 --seed 5       group-suspend scenario (8 =
//                                            kill between group prepare
//                                            and commit, recover all-or-
//                                            nothing; 9 = one peer refuses
//                                            mid-prepare, full-group
//                                            rollback under send load)
//   chaos_runner --list-sites                print every injection site
//
// Every failure line carries the seed that reproduces it. Exit code is the
// number of failing cases (capped at 125 to stay clear of shell specials).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/chaos.hpp"
#include "fault/fault.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--runs N] [--light] [--plan RULES]\n"
               "          [--scenario 0..9] [--no-recovery] [--plant-dup]\n"
               "          [--minimize] [--list-sites] [--verbose]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  int runs = 1;
  bool light = false;
  bool plant_dup = false;
  bool minimize = false;
  bool verbose = false;
  bool recovery = true;
  int scenario = -1;
  std::string plan_text;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--runs") {
      runs = std::atoi(next());
    } else if (arg == "--light") {
      light = true;
    } else if (arg == "--plan") {
      plan_text = next();
    } else if (arg == "--scenario") {
      scenario = std::atoi(next());
    } else if (arg == "--no-recovery") {
      recovery = false;
    } else if (arg == "--plant-dup") {
      plant_dup = true;
    } else if (arg == "--minimize") {
      minimize = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-sites") {
      for (const auto& site : naplet::fault::known_sites()) {
        std::printf("%s\n", site.c_str());
      }
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (const char* env = std::getenv("NAPLET_FAULTS_LIGHT");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    light = true;
  }

  int failures = 0;
  for (int run = 0; run < runs; ++run) {
    const std::uint64_t case_seed = seed + static_cast<std::uint64_t>(run);
    if (scenario >= naplet::fault::kScenarioCount) {
      std::fprintf(stderr, "bad --scenario: %d\n", scenario);
      return 2;
    }
    const bool crash =
        scenario >= 0 && naplet::fault::is_crash_scenario(
                             static_cast<naplet::fault::Scenario>(scenario));
    const bool swarm =
        scenario >= 0 && naplet::fault::is_swarm_scenario(
                             static_cast<naplet::fault::Scenario>(scenario));
    const bool group =
        scenario >= 0 && naplet::fault::is_group_scenario(
                             static_cast<naplet::fault::Scenario>(scenario));
    naplet::fault::ChaosCase chaos_case =
        crash ? naplet::fault::make_crash_case(
                    case_seed, static_cast<naplet::fault::Scenario>(scenario),
                    light, recovery)
        : swarm ? naplet::fault::make_swarm_case(
                      case_seed,
                      static_cast<naplet::fault::Scenario>(scenario), light)
        : group ? naplet::fault::make_group_case(
                      case_seed,
                      static_cast<naplet::fault::Scenario>(scenario), light)
                : naplet::fault::generate_case(case_seed, light);
    if (!plan_text.empty()) {
      auto parsed = naplet::fault::Plan::parse(plan_text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --plan: %s\n",
                     parsed.status().to_string().c_str());
        return 2;
      }
      chaos_case.plan = std::move(*parsed);
      chaos_case.plan.seed = case_seed;
    }
    if (scenario >= 0 && !crash && !swarm && !group) {
      chaos_case.scenario =
          static_cast<naplet::fault::Scenario>(scenario);
    }
    if (plant_dup) {
      chaos_case.plan.rules.push_back(
          naplet::fault::planted_duplicate_replay_rule());
    }

    const naplet::fault::ChaosResult result =
        naplet::fault::run_case(chaos_case);
    std::printf("%s\n", result.line(chaos_case).c_str());
    if (verbose) {
      std::printf("  net_dropped=%llu ctrl_retx=%llu\n",
                  static_cast<unsigned long long>(result.net_datagrams_dropped),
                  static_cast<unsigned long long>(result.ctrl_retransmissions));
      std::printf("  %s\n", result.stats.c_str());
    }
    if (!result.pass) {
      ++failures;
      if (!result.recorder_dump.empty()) {
        std::printf("  flight_recorder:\n%s", result.recorder_dump.c_str());
      }
      if (minimize) {
        int reruns = 0;
        const naplet::fault::Plan minimal =
            naplet::fault::minimize_plan(chaos_case, &reruns);
        std::printf("  minimal_plan=\"%s\" rules=%zu reruns=%d\n",
                    minimal.to_string().c_str(), minimal.rules.size(),
                    reruns);
      }
    }
    std::fflush(stdout);
  }

  if (runs > 1) {
    std::printf("summary: %d/%d passed\n", runs - failures, runs);
  }
  return failures > 125 ? 125 : failures;
}
