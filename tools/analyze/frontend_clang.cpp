// Optional clang AST cross-check (built only with
// -DNAPLET_ANALYZE_WITH_CLANG=ON and clang dev libraries present).
//
// The syntactic engine in scanner.cpp is the gate that always runs; this
// frontend re-derives the guard-acquisition facts from the real AST and
// prints them in the same `class::member@file:line` shape so CI can diff
// the two models. A disagreement means the syntactic scanner mis-read an
// idiom and must be fixed — the AST is authoritative, the scanner is
// portable.
#include <memory>
#include <string>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

namespace {

llvm::cl::OptionCategory kCategory("naplet-analyze-clang options");

class GuardVisitor : public clang::RecursiveASTVisitor<GuardVisitor> {
 public:
  explicit GuardVisitor(clang::ASTContext& ctx) : ctx_(ctx) {}

  bool VisitVarDecl(clang::VarDecl* decl) {
    const clang::QualType type = decl->getType();
    const std::string type_name = type.getAsString();
    if (type_name.find("MutexLock") == std::string::npos) return true;
    const clang::SourceManager& sm = ctx_.getSourceManager();
    const clang::SourceLocation loc = decl->getLocation();
    if (!loc.isValid() || sm.isInSystemHeader(loc)) return true;
    llvm::outs() << "guard " << decl->getNameAsString() << " "
                 << type_name << " @ "
                 << sm.getFilename(loc).str() << ":"
                 << sm.getSpellingLineNumber(loc) << "\n";
    return true;
  }

  bool VisitFieldDecl(clang::FieldDecl* decl) {
    const std::string type_name = decl->getType().getAsString();
    if (type_name.find("util::Mutex") == std::string::npos &&
        type_name.find("class naplet::util::Mutex") == std::string::npos) {
      return true;
    }
    const clang::SourceManager& sm = ctx_.getSourceManager();
    const clang::SourceLocation loc = decl->getLocation();
    if (!loc.isValid() || sm.isInSystemHeader(loc)) return true;
    const clang::RecordDecl* parent = decl->getParent();
    llvm::outs() << "mutex " << (parent != nullptr
                                     ? parent->getNameAsString()
                                     : std::string("?"))
                 << "::" << decl->getNameAsString() << " @ "
                 << sm.getFilename(loc).str() << ":"
                 << sm.getSpellingLineNumber(loc) << "\n";
    return true;
  }

 private:
  clang::ASTContext& ctx_;
};

class GuardConsumer : public clang::ASTConsumer {
 public:
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    GuardVisitor visitor(ctx);
    visitor.TraverseDecl(ctx.getTranslationUnitDecl());
  }
};

class GuardAction : public clang::ASTFrontendAction {
 public:
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance& /*ci*/, llvm::StringRef /*file*/) override {
    return std::make_unique<GuardConsumer>();
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto options =
      clang::tooling::CommonOptionsParser::create(argc, argv, kCategory);
  if (!options) {
    llvm::errs() << llvm::toString(options.takeError());
    return 2;
  }
  clang::tooling::ClangTool tool(options->getCompilations(),
                                 options->getSourcePathList());
  return tool.run(
      clang::tooling::newFrontendActionFactory<GuardAction>().get());
}
