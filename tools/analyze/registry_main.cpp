// registry_check: the invariant-registry subset of naplet-analyze as a
// standalone, dependency-free gate (fault sites, metrics, rank table,
// enum counts, FSM completeness). Always built; always run by CI.
//
//   registry_check --root . [--baseline FILE] [--json FILE] [--compact]
#include <iostream>
#include <string>

#include "model.hpp"

int main(int argc, char** argv) {
  naplet::analyze::DriverOptions opts;
  opts.registry_only = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts.root = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts.baseline = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return 2;
      opts.json_out = v;
    } else if (arg == "--compact") {
      opts.compact = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: registry_check [--root DIR] [--baseline FILE] "
                   "[--json FILE] [--compact] [--quiet]\n";
      return 0;
    } else {
      std::cerr << "registry_check: unknown option '" << arg << "'\n";
      return 2;
    }
  }
  return naplet::analyze::run_driver(opts);
}
