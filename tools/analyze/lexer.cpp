// Minimal C++ lexer for naplet-analyze. Good enough for the repo's
// clang-formatted sources: it understands line/block comments, string,
// char and raw-string literals, digraph-free punctuation, and drops
// preprocessor directive lines (so macro *definitions* never leak tokens
// into the model; macro *uses* like NAPLET_GUARDED_BY(mu_) appear as
// ordinary identifier + parens, which is exactly what the scanner wants).
#include <cctype>

#include "model.hpp"

namespace naplet::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexedFile lex(std::string path, std::string rel_path,
              const std::string& text) {
  LexedFile out;
  out.path = std::move(path);
  out.rel_path = std::move(rel_path);

  // Raw lines (suppression comments are matched against these).
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      out.raw_lines.push_back(line);
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) out.raw_lines.push_back(line);

  const std::size_t n = text.size();
  std::size_t i = 0;
  int ln = 1;
  bool at_line_start = true;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? text[i + k] : '\0';
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++ln;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honouring continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++ln;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && peek(1) == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i < n && !(text[i] == '*' && peek(1) == '/')) {
        if (text[i] == '\n') ++ln;
        ++i;
      }
      i += 2;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim.push_back(text[j++]);
      const std::string close = ")" + delim + "\"";
      std::size_t body = j + 1;
      std::size_t end = text.find(close, body);
      if (end == std::string::npos) end = n;
      Token t{TokKind::kString, text.substr(body, end - body), ln};
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (text[k] == '\n') ++ln;
      }
      out.tokens.push_back(std::move(t));
      i = end + close.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string value;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          value.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (text[i] == '\n') ++ln;  // unterminated; keep going
        value.push_back(text[i++]);
      }
      ++i;  // closing quote
      out.tokens.push_back(
          Token{quote == '"' ? TokKind::kString : TokKind::kChar,
                std::move(value), ln});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.tokens.push_back(Token{TokKind::kIdent, text.substr(i, j - i), ln});
      i = j;
      continue;
    }
    // Number (loose: consume alnum, dots, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back(Token{TokKind::kNumber, text.substr(i, j - i), ln});
      i = j;
      continue;
    }
    // Punctuation; fuse `::` and `->` which the scanner treats as units.
    if (c == ':' && peek(1) == ':') {
      out.tokens.push_back(Token{TokKind::kPunct, "::", ln});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.tokens.push_back(Token{TokKind::kPunct, "->", ln});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{TokKind::kPunct, std::string(1, c), ln});
    ++i;
  }
  return out;
}

}  // namespace naplet::analyze
