// Pass 1: whole-program lock-order analysis.
//
// Builds the inter-procedural "held-while-calling" graph: every guard
// scope contributes (held mutex -> acquisition reachable through any
// call made inside the scope). Rank inversions (acquiring a rank <= a
// held rank, the static mirror of lock_rank.cpp's runtime rule) are
// reported with the full call chain; cycles among mutexes that escape
// the rank hierarchy (unranked/unknown) are reported separately.
#include <algorithm>
#include <set>
#include <sstream>

#include "resolve.hpp"

namespace naplet::analyze {

namespace {

struct Acq {
  MutexRef mu;
  long rank = -1;  // -1 unknown, 0 kUnranked
  std::vector<std::string> path;  // functions from the callee down
  std::string file;
  int line = 0;
};

class LockAnalysis {
 public:
  explicit LockAnalysis(const SourceModel& model) : r_(model) {}

  void run(std::vector<Finding>& out) {
    for (const FuncDecl* fn : r_.functions()) {
      // bench/ code is single-threaded driver code; only pass 3 audits it.
      if (fn->file.rfind("bench/", 0) == 0) continue;
      check_function(*fn, out);
    }
    report_cycles(out);
    std::copy(findings_.begin(), findings_.end(), std::back_inserter(out));
  }

 private:
  using Closure = std::map<std::string, Acq>;  // mutex key -> acquisition

  const Closure& closure_of(const FuncDecl* fn) {
    auto it = memo_.find(fn);
    if (it != memo_.end()) return it->second;
    // Insert an (initially empty) entry first: cycles in the call graph
    // see the partial closure instead of recursing forever.
    Closure& result = memo_[fn];
    for (const LockSite& site : fn->locks) {
      MutexRef mu = r_.resolve_mutex(*fn, site.mutex_expr);
      if (!mu.resolved) continue;
      Acq acq;
      acq.mu = mu;
      acq.rank = r_.rank_value(mu.rank_token);
      acq.path = {fn->qname()};
      acq.file = fn->file;
      acq.line = site.line;
      result.emplace(mu.key(), std::move(acq));
    }
    for (const CallSite& cs : fn->calls) {
      const FuncDecl* callee = r_.resolve_call(*fn, cs);
      if (callee == nullptr || callee == fn) continue;
      const Closure child = closure_of(callee);  // copy: memo_ may rehash
      for (const auto& [key, acq] : child) {
        if (result.find(key) != result.end()) continue;
        Acq via = acq;
        via.path.insert(via.path.begin(), fn->qname());
        result.emplace(key, std::move(via));
      }
    }
    return memo_[fn];
  }

  void check_function(const FuncDecl& fn, std::vector<Finding>& out) {
    (void)out;
    // Intra-procedural: a guard taken while other guards are held.
    for (const LockSite& site : fn.locks) {
      if (site.held.empty()) continue;
      MutexRef mu = r_.resolve_mutex(fn, site.mutex_expr);
      if (!mu.resolved) continue;
      const long rank = r_.rank_value(mu.rank_token);
      for (const HeldLock& held : site.held) {
        MutexRef held_mu = r_.resolve_mutex(fn, held.mutex_expr);
        if (!held_mu.resolved) continue;
        const long held_rank = r_.rank_value(held_mu.rank_token);
        note_edge(held_mu, mu);
        if (rank <= 0 || held_rank <= 0) continue;  // unknown/unranked
        if (rank <= held_rank) {
          add_inversion(fn, {fn.qname()}, held_mu, held_rank, held.line, mu,
                        rank, fn.file, site.line);
        }
      }
    }
    // Inter-procedural: calls made while holding guards.
    for (const CallSite& cs : fn.calls) {
      if (cs.held.empty()) continue;
      const FuncDecl* callee = r_.resolve_call(fn, cs);
      if (callee == nullptr || callee == &fn) continue;
      const Closure& reach = closure_of(callee);
      for (const HeldLock& held : cs.held) {
        MutexRef held_mu = r_.resolve_mutex(fn, held.mutex_expr);
        if (!held_mu.resolved) continue;
        const long held_rank = r_.rank_value(held_mu.rank_token);
        for (const auto& [key, acq] : reach) {
          note_edge(held_mu, acq.mu);
          if (acq.rank <= 0 || held_rank <= 0) continue;
          if (acq.rank <= held_rank) {
            std::vector<std::string> chain = {fn.qname()};
            chain.insert(chain.end(), acq.path.begin(), acq.path.end());
            add_inversion(fn, chain, held_mu, held_rank, held.line, acq.mu,
                          acq.rank, acq.file, acq.line);
          }
        }
      }
    }
  }

  void add_inversion(const FuncDecl& fn, std::vector<std::string> chain,
                     const MutexRef& held, long held_rank, int held_line,
                     const MutexRef& acquired, long acq_rank,
                     const std::string& acq_file, int acq_line) {
    std::ostringstream msg;
    if (held.key() == acquired.key()) {
      msg << "recursive acquisition of '" << held.display() << "' (rank "
          << held.rank_token << "=" << held_rank << ")";
    } else {
      msg << "acquires '" << acquired.display() << "' (rank "
          << acquired.rank_token << "=" << acq_rank << ", " << acq_file << ":"
          << acq_line << ") while holding '" << held.display() << "' (rank "
          << held.rank_token << "=" << held_rank << ", acquired at line "
          << held_line << ")";
    }
    msg << " via " << join_chain(chain);
    Finding f;
    f.kind = "lock-rank-inversion";
    f.file = fn.file;
    f.line = held_line;
    f.symbol = fn.qname() + "/" + held.display() + ">" + acquired.display();
    f.message = msg.str();
    f.chain = std::move(chain);
    findings_.insert(std::move(f));
  }

  static std::string join_chain(const std::vector<std::string>& chain) {
    std::string out;
    for (const std::string& fn : chain) {
      if (!out.empty()) out += " -> ";
      out += fn;
    }
    return out;
  }

  void note_edge(const MutexRef& from, const MutexRef& to) {
    if (from.key() == to.key()) return;
    edges_[from.key()].insert(to.key());
    ranked_[from.key()] = r_.rank_value(from.rank_token) > 0;
    ranked_[to.key()] = r_.rank_value(to.rank_token) > 0;
    display_[from.key()] = from.display();
    display_[to.key()] = to.display();
  }

  /// Cycles in the acquired-while-held graph that the rank hierarchy
  /// cannot rule out (at least one unranked/unknown participant; fully
  /// ranked cycles always contain an inversion, reported above).
  void report_cycles(std::vector<Finding>& out) {
    std::set<std::string> done;
    for (const auto& [start, _] : edges_) {
      if (done.count(start) != 0U) continue;
      std::vector<std::string> path;
      std::set<std::string> on_path;
      dfs_cycle(start, start, path, on_path, done, out);
    }
  }

  void dfs_cycle(const std::string& node, const std::string& start,
                 std::vector<std::string>& path, std::set<std::string>& on_path,
                 std::set<std::string>& done, std::vector<Finding>& out) {
    path.push_back(node);
    on_path.insert(node);
    auto it = edges_.find(node);
    if (it != edges_.end()) {
      for (const std::string& next : it->second) {
        if (next == start && path.size() > 1) {
          bool has_unranked = false;
          for (const std::string& key : path) {
            if (!ranked_[key]) has_unranked = true;
          }
          if (has_unranked && start == *std::min_element(path.begin(),
                                                         path.end())) {
            Finding f;
            f.kind = "lock-cycle";
            f.symbol = join_cycle(path);
            f.message = "possible deadlock: lock cycle " + f.symbol +
                        " involves an unranked mutex the rank validator "
                        "cannot order";
            out.push_back(std::move(f));
          }
          continue;
        }
        if (on_path.count(next) == 0U && done.count(next) == 0U) {
          dfs_cycle(next, start, path, on_path, done, out);
        }
      }
    }
    path.pop_back();
    on_path.erase(node);
    if (path.empty()) done.insert(node);
  }

  std::string join_cycle(const std::vector<std::string>& keys) {
    std::string sym;
    for (const std::string& key : keys) {
      if (!sym.empty()) sym += " -> ";
      sym += display_[key];
    }
    return sym;
  }

  Resolver r_;
  std::map<const FuncDecl*, Closure> memo_;
  std::map<std::string, std::set<std::string>> edges_;
  std::map<std::string, bool> ranked_;
  std::map<std::string, std::string> display_;

  struct FindingLess {
    bool operator()(const Finding& a, const Finding& b) const {
      return a.fingerprint() < b.fingerprint();
    }
  };
  std::set<Finding, FindingLess> findings_;  // dedup by fingerprint
};

}  // namespace

void lock_order_pass(const SourceModel& model, std::vector<Finding>& out) {
  LockAnalysis analysis(model);
  analysis.run(out);
}

}  // namespace naplet::analyze
