// Syntactic scanner: walks one lexed file and populates the SourceModel
// with classes, mutex declarations, guard scopes, call sites (with the
// set of locks held at the call), annotations, enums and registries.
//
// This is not a C++ parser. It recognises the repo's clang-formatted
// idiom: namespace/class/enum blocks, member declarations, function
// definitions (in-class and out-of-class), constructor init lists, and
// statement-level guard/call patterns. Unknown constructs are skipped by
// brace/paren matching, never fatal.
#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "model.hpp"

namespace naplet::analyze {

namespace {

const std::set<std::string>& call_keyword_stoplist() {
  static const std::set<std::string> kStop = {
      "if",           "for",
      "while",        "switch",
      "return",       "sizeof",
      "alignof",      "catch",
      "static_cast",  "dynamic_cast",
      "const_cast",   "reinterpret_cast",
      "static_assert", "decltype",
      "noexcept",     "assert",
      "defined",      "throw",
      "new",          "delete",
  };
  return kStop;
}

bool is_count_constant_name(const std::string& name) {
  return name.size() > 6 && name[0] == 'k' &&
         name.compare(name.size() - 5, 5, "Count") == 0;
}

struct Cursor {
  const std::vector<Token>& toks;
  std::size_t i = 0;

  [[nodiscard]] bool done() const { return i >= toks.size(); }
  [[nodiscard]] const Token& cur() const { return toks[i]; }
  [[nodiscard]] const Token* peek(std::size_t k = 0) const {
    return i + k < toks.size() ? &toks[i + k] : nullptr;
  }
  [[nodiscard]] bool is_punct(const char* p, std::size_t k = 0) const {
    const Token* t = peek(k);
    return t != nullptr && t->kind == TokKind::kPunct && t->text == p;
  }
  [[nodiscard]] bool is_ident(const char* s, std::size_t k = 0) const {
    const Token* t = peek(k);
    return t != nullptr && t->kind == TokKind::kIdent && t->text == s;
  }
  void advance() { ++i; }

  /// Skip a balanced region. `i` must sit on the opening token.
  void skip_balanced(const char* open, const char* close) {
    int depth = 0;
    while (!done()) {
      if (is_punct(open)) {
        ++depth;
      } else if (is_punct(close)) {
        if (--depth == 0) {
          advance();
          return;
        }
      }
      advance();
    }
  }

  /// Skip `template <...>` (angle brackets, tolerant of nesting).
  void skip_template_intro() {
    advance();  // 'template'
    if (!is_punct("<")) return;
    int depth = 0;
    while (!done()) {
      if (is_punct("<")) ++depth;
      if (is_punct(">")) {
        if (--depth == 0) {
          advance();
          return;
        }
      }
      advance();
    }
  }
};

class FileScanner {
 public:
  FileScanner(const LexedFile& file, SourceModel& model)
      : file_(file), model_(model), c_{file.tokens} {}

  void run() { scan_block(/*cls=*/""); }

 private:
  const LexedFile& file_;
  SourceModel& model_;
  Cursor c_;

  // -------------------------------------------------------------- blocks

  /// Scan declarations until the matching `}` of the enclosing block (or
  /// EOF at top level). `cls` is the enclosing class ("" = namespace).
  void scan_block(const std::string& cls) {
    while (!c_.done()) {
      if (c_.is_punct("}")) {
        c_.advance();
        return;
      }
      if (c_.is_punct(";") || c_.is_punct(":")) {  // stray / access label tail
        c_.advance();
        continue;
      }
      if (c_.is_ident("template")) {
        c_.skip_template_intro();
        continue;
      }
      if (c_.is_ident("namespace") && cls.empty()) {
        scan_namespace();
        continue;
      }
      if (c_.is_ident("using") || c_.is_ident("typedef") ||
          c_.is_ident("friend")) {
        skip_to_semicolon();
        continue;
      }
      if (c_.is_ident("public") || c_.is_ident("private") ||
          c_.is_ident("protected")) {
        c_.advance();
        if (c_.is_punct(":")) c_.advance();
        continue;
      }
      if (c_.is_ident("enum")) {
        scan_enum();
        continue;
      }
      if (c_.is_ident("class") || c_.is_ident("struct")) {
        if (scan_class(cls)) continue;
        // Not a definition (elaborated type in a declaration): fall
        // through to declaration scanning from the current position.
      }
      scan_declaration(cls);
    }
  }

  void scan_namespace() {
    c_.advance();  // 'namespace'
    while (!c_.done() && !c_.is_punct("{") && !c_.is_punct(";")) c_.advance();
    if (c_.is_punct(";")) {
      c_.advance();
      return;
    }
    if (c_.is_punct("{")) {
      c_.advance();
      scan_block("");
    }
  }

  /// Returns true if a class *definition* was consumed.
  bool scan_class(const std::string& outer) {
    const std::size_t start = c_.i;
    c_.advance();  // class/struct
    // The class name is the last identifier before `{` / `:` / `;`:
    // attribute and annotation macros (argumentless NAPLET_SCOPED_CAPABILITY
    // as much as NAPLET_CAPABILITY("mutex")) precede it.
    std::string name;
    int line = 0;
    while (!c_.done() && !c_.is_punct("{") && !c_.is_punct(":") &&
           !c_.is_punct(";") && !c_.is_punct("(")) {
      if (c_.is_punct("[")) {  // attributes
        c_.skip_balanced("[", "]");
        continue;
      }
      if (c_.cur().kind == TokKind::kIdent && c_.is_punct("(", 1)) {
        c_.advance();
        c_.skip_balanced("(", ")");
        continue;
      }
      if (c_.cur().kind == TokKind::kIdent && c_.cur().text != "final") {
        name = c_.cur().text;
        line = c_.cur().line;
      }
      c_.advance();
    }
    if (name.empty()) {
      c_.i = start;
      return false;
    }
    // Base clause.
    while (!c_.done() && !c_.is_punct("{") && !c_.is_punct(";") &&
           !c_.is_punct("(")) {
      c_.advance();
    }
    if (!c_.is_punct("{")) {
      c_.i = start;
      return false;  // forward declaration or `struct X x;` style
    }
    c_.advance();  // '{'
    const std::string qname = outer.empty() ? name : outer + "::" + name;
    ClassDecl& decl = model_.classes[qname];
    if (decl.name.empty()) {
      decl.name = qname;
      decl.file = file_.rel_path;
      decl.line = line;
    }
    scan_block(qname);
    // Trailing `;` (and any variable of the anonymous-ish form) skipped.
    if (c_.is_punct(";")) c_.advance();
    return true;
  }

  void scan_enum() {
    c_.advance();  // 'enum'
    if (c_.is_ident("class") || c_.is_ident("struct")) c_.advance();
    if (c_.done() || c_.cur().kind != TokKind::kIdent) {
      skip_to_semicolon();
      return;
    }
    EnumDecl decl;
    decl.name = c_.cur().text;
    decl.file = file_.rel_path;
    decl.line = c_.cur().line;
    c_.advance();
    while (!c_.done() && !c_.is_punct("{") && !c_.is_punct(";")) c_.advance();
    if (!c_.is_punct("{")) {
      if (c_.is_punct(";")) c_.advance();
      return;  // opaque enum declaration
    }
    c_.advance();  // '{'
    long next_value = 0;
    while (!c_.done() && !c_.is_punct("}")) {
      if (c_.cur().kind == TokKind::kIdent) {
        const std::string enumerator = c_.cur().text;
        c_.advance();
        long value = next_value;
        if (c_.is_punct("=")) {
          c_.advance();
          bool negative = false;
          if (c_.is_punct("-")) {
            negative = true;
            c_.advance();
          }
          if (!c_.done() && c_.cur().kind == TokKind::kNumber) {
            value = std::strtol(c_.cur().text.c_str(), nullptr, 0);
            if (negative) value = -value;
          }
          while (!c_.done() && !c_.is_punct(",") && !c_.is_punct("}")) {
            c_.advance();
          }
        }
        decl.enumerators.push_back(enumerator);
        decl.values[enumerator] = value;
        next_value = value + 1;
        if (c_.is_punct(",")) c_.advance();
        continue;
      }
      c_.advance();
    }
    if (c_.is_punct("}")) c_.advance();
    if (c_.is_punct(";")) c_.advance();
    model_.enums[decl.name] = std::move(decl);
  }

  void skip_to_semicolon() {
    while (!c_.done() && !c_.is_punct(";")) {
      if (c_.is_punct("{")) {
        c_.skip_balanced("{", "}");
        continue;
      }
      c_.advance();
    }
    if (c_.is_punct(";")) c_.advance();
  }

  // ------------------------------------------------------- declarations

  /// Scan one member/global/function declaration starting at the cursor.
  void scan_declaration(const std::string& cls) {
    std::vector<Token> head;
    std::string guarded_by;
    bool not_guarded = false;
    const int decl_line = c_.done() ? 0 : c_.cur().line;
    int angle = 0;

    while (!c_.done()) {
      if (c_.is_punct("}")) return;  // enclosing block ends; let caller see it
      if (angle == 0 &&
          (c_.is_punct(";") || c_.is_punct("{") || c_.is_punct("=") ||
           c_.is_punct("("))) {
        break;
      }
      if (c_.is_punct("<")) ++angle;
      if (c_.is_punct(">") && angle > 0) --angle;
      if (c_.is_punct("[")) {  // attributes like [[nodiscard]]
        c_.skip_balanced("[", "]");
        continue;
      }
      // Annotation macros used with arguments in a declaration head
      // (NAPLET_GUARDED_BY(mu_), NAPLET_ACQUIRE(mu), ...): capture
      // GUARDED_BY, drop the rest.
      if (c_.cur().kind == TokKind::kIdent && c_.is_punct("(", 1) &&
          c_.cur().text.rfind("NAPLET_", 0) == 0) {
        const bool is_guard = c_.cur().text == "NAPLET_GUARDED_BY" ||
                              c_.cur().text == "NAPLET_PT_GUARDED_BY";
        if (c_.cur().text == "NAPLET_NOT_GUARDED") not_guarded = true;
        c_.advance();
        if (is_guard) {
          guarded_by = capture_paren_arg();
        } else {
          c_.skip_balanced("(", ")");
        }
        continue;
      }
      head.push_back(c_.cur());
      c_.advance();
    }
    if (c_.done()) return;

    if (c_.is_punct("(")) {
      scan_function(cls, head, decl_line);
      return;
    }
    // Variable (member or global).
    MemberDecl member = parse_var_head(head, decl_line);
    member.guarded_by = guarded_by;
    member.not_guarded = not_guarded;
    std::vector<Token> init;
    if (c_.is_punct("{")) {
      init = capture_balanced_tokens("{", "}");
      // Annotations can also follow a brace initializer.
      if (c_.cur().kind == TokKind::kIdent &&
          (c_.cur().text == "NAPLET_GUARDED_BY" ||
           c_.cur().text == "NAPLET_PT_GUARDED_BY") &&
          c_.is_punct("(", 1)) {
        c_.advance();
        member.guarded_by = capture_paren_arg();
      } else if (c_.cur().kind == TokKind::kIdent &&
                 c_.cur().text == "NAPLET_NOT_GUARDED" && c_.is_punct("(", 1)) {
        member.not_guarded = true;
        c_.advance();
        c_.skip_balanced("(", ")");
      }
      if (c_.is_punct(";")) c_.advance();
    } else if (c_.is_punct("=")) {
      c_.advance();
      while (!c_.done() && !c_.is_punct(";")) {
        if (c_.is_punct("{")) {
          for (const Token& t : capture_balanced_tokens("{", "}")) {
            init.push_back(t);
          }
          continue;
        }
        init.push_back(c_.cur());
        c_.advance();
      }
      if (c_.is_punct(";")) c_.advance();
    } else {  // ';'
      c_.advance();
    }
    if (member.name.empty()) return;
    finish_var(cls, member, init);
  }

  /// Capture the single argument of `( ... )`; cursor on `(`.
  std::string capture_paren_arg() {
    std::string arg;
    int depth = 0;
    while (!c_.done()) {
      if (c_.is_punct("(")) {
        ++depth;
        c_.advance();
        continue;
      }
      if (c_.is_punct(")")) {
        if (--depth == 0) {
          c_.advance();
          return arg;
        }
        c_.advance();
        continue;
      }
      if (!arg.empty() && c_.cur().kind == TokKind::kIdent) arg += " ";
      arg += c_.cur().text;
      c_.advance();
    }
    return arg;
  }

  std::vector<Token> capture_balanced_tokens(const char* open,
                                             const char* close) {
    std::vector<Token> out;
    int depth = 0;
    while (!c_.done()) {
      if (c_.is_punct(open)) {
        ++depth;
        if (depth > 1) out.push_back(c_.cur());
        c_.advance();
        continue;
      }
      if (c_.is_punct(close)) {
        if (--depth == 0) {
          c_.advance();
          return out;
        }
        out.push_back(c_.cur());
        c_.advance();
        continue;
      }
      out.push_back(c_.cur());
      c_.advance();
    }
    return out;
  }

  static MemberDecl parse_var_head(const std::vector<Token>& head, int line) {
    MemberDecl m;
    m.line = line;
    // Name = last identifier in the head.
    int name_idx = -1;
    for (int k = static_cast<int>(head.size()) - 1; k >= 0; --k) {
      if (head[static_cast<std::size_t>(k)].kind == TokKind::kIdent) {
        name_idx = k;
        break;
      }
    }
    if (name_idx < 0) return m;
    m.name = head[static_cast<std::size_t>(name_idx)].text;
    // `Mutex& operator=(const Mutex&) = delete;` breaks at the first `=`
    // and would otherwise read as a member named `operator`.
    if (m.name == "operator") {
      m.name.clear();
      return m;
    }
    std::string last_type_ident;
    for (int k = 0; k < name_idx; ++k) {
      const Token& t = head[static_cast<std::size_t>(k)];
      if (!m.type_text.empty()) m.type_text += " ";
      m.type_text += t.text;
      if (t.kind == TokKind::kIdent) {
        if (t.text == "static") m.is_static = true;
        if (t.text == "const" || t.text == "constexpr") m.is_const = true;
        last_type_ident = t.text;
      }
      if (t.kind == TokKind::kPunct && t.text == "&") m.is_reference = true;
      if (t.kind == TokKind::kPunct && t.text == "*") m.is_pointer = true;
    }
    m.is_mutex = last_type_ident == "Mutex";
    return m;
  }

  void finish_var(const std::string& cls, MemberDecl member,
                  const std::vector<Token>& init) {
    // `struct Impl;` / `class ContextImpl;` forward declarations reach
    // here with the keyword as the whole "type": not members.
    if (member.type_text.empty() || member.type_text == "struct" ||
        member.type_text == "class" || member.type_text == "union" ||
        member.type_text == "enum") {
      return;
    }
    member.file = file_.rel_path;
    member.mutex_has_ctor_args = member.is_mutex && !init.empty();
    // Rank token: `LockRank::kX` or a bare `kX` leading the initializer.
    for (std::size_t k = 0; k + 2 < init.size() + 2 && k < init.size(); ++k) {
      if (init[k].kind == TokKind::kIdent && init[k].text == "LockRank" &&
          k + 2 < init.size() && init[k + 1].text == "::") {
        member.rank_token = init[k + 2].text;
        break;
      }
    }
    if (member.rank_token.empty() && !init.empty() &&
        init[0].kind == TokKind::kIdent && init[0].text.size() > 1 &&
        init[0].text[0] == 'k') {
      member.rank_token = init[0].text;
    }
    if (cls.empty()) {
      GlobalVar g;
      g.name = member.name;
      g.type_text = member.type_text;
      g.file = file_.rel_path;
      g.line = member.line;
      g.is_mutex = member.is_mutex;
      g.mutex_has_ctor_args = member.mutex_has_ctor_args;
      g.rank_token = member.rank_token;
      for (const Token& t : init) {
        if (t.kind == TokKind::kString) g.str_inits.push_back(t.text);
      }
      // `inline constexpr int kConnEventCount = 23;`
      if (member.is_const && is_count_constant_name(member.name) &&
          !init.empty() && init[0].kind == TokKind::kNumber) {
        model_.count_constants[member.name] =
            std::strtol(init[0].text.c_str(), nullptr, 0);
      }
      model_.globals[g.name] = std::move(g);
    } else {
      model_.classes[cls].members.push_back(std::move(member));
    }
  }

  // ---------------------------------------------------------- functions

  void scan_function(const std::string& cls, const std::vector<Token>& head,
                     int line) {
    // The head's trailing `[~]?A::B::name` chain gives the (qualified)
    // function name; anything qualifying it overrides `cls`.
    FuncDecl fn;
    fn.file = file_.rel_path;
    fn.line = line;
    fn.cls = cls;

    bool is_operator = false;
    for (const Token& t : head) {
      if (t.kind == TokKind::kIdent && t.text == "operator") {
        is_operator = true;
      }
    }
    int k = static_cast<int>(head.size()) - 1;
    // Skip a destructor tilde handled below; find trailing ident.
    while (k >= 0 && head[static_cast<std::size_t>(k)].kind != TokKind::kIdent) {
      --k;
    }
    if (k < 0 || is_operator) {
      skip_function_tail(nullptr, "");
      return;
    }
    fn.name = head[static_cast<std::size_t>(k)].text;
    // Qualifiers: walk back over `X ::` pairs.
    std::vector<std::string> quals;
    int q = k - 1;
    while (q >= 1 && head[static_cast<std::size_t>(q)].text == "::" &&
           head[static_cast<std::size_t>(q - 1)].kind == TokKind::kIdent) {
      quals.insert(quals.begin(), head[static_cast<std::size_t>(q - 1)].text);
      q -= 2;
    }
    if (q >= 0 && head[static_cast<std::size_t>(q)].text == "~") {
      fn.name = "~" + fn.name;
    }
    if (!quals.empty()) {
      std::string qcls;
      for (const std::string& part : quals) {
        if (!qcls.empty()) qcls += "::";
        qcls += part;
      }
      fn.cls = cls.empty() ? qcls : cls + "::" + qcls;
    }

    skip_function_tail(&fn, fn.cls);
  }

  /// Cursor sits on the parameter-list `(`. Parses params, trailing
  /// qualifiers, optional ctor init list, and the body (if any). When
  /// `fn` is null the function is skipped without recording.
  void skip_function_tail(FuncDecl* fn, const std::string& cls) {
    // --- parameters
    std::vector<Token> params = capture_balanced_tokens("(", ")");
    if (fn != nullptr) parse_params(*fn, params);

    // --- trailing qualifiers (const/noexcept/override/annotations/...)
    while (!c_.done() && !c_.is_punct("{") && !c_.is_punct(";") &&
           !c_.is_punct(":") && !c_.is_punct("}")) {
      if (c_.is_punct("(")) {
        c_.skip_balanced("(", ")");
        continue;
      }
      if (c_.is_punct("->")) {  // trailing return type
        c_.advance();
        continue;
      }
      c_.advance();
    }
    if (c_.is_punct(";")) {
      c_.advance();
      if (fn != nullptr && !cls.empty()) {
        model_.classes[cls].method_names.insert(fn->name);
      }
      return;  // declaration only
    }
    // --- constructor init list
    if (c_.is_punct(":")) {
      c_.advance();
      while (!c_.done() && !c_.is_punct("{")) {
        if (c_.done() || c_.cur().kind != TokKind::kIdent) {
          c_.advance();
          continue;
        }
        const std::string member = c_.cur().text;
        c_.advance();
        if (c_.is_punct("(") || c_.is_punct("{")) {
          const bool paren = c_.is_punct("(");
          std::vector<Token> args = paren
                                        ? capture_balanced_tokens("(", ")")
                                        : capture_balanced_tokens("{", "}");
          if (fn != nullptr) record_ctor_init(*fn, cls, member, args);
        }
        if (c_.is_punct(",")) c_.advance();
      }
    }
    if (!c_.is_punct("{")) return;  // defensive
    if (fn == nullptr) {
      c_.skip_balanced("{", "}");
      return;
    }
    scan_body(*fn);
    if (!cls.empty()) model_.classes[cls].method_names.insert(fn->name);
    model_.functions.push_back(std::move(*fn));
  }

  void parse_params(FuncDecl& fn, const std::vector<Token>& params) {
    // Split on top-level commas; for each: name = last ident (or the
    // ident before `=`), type = last class-ish ident before the name.
    std::vector<std::vector<Token>> parts(1);
    int depth = 0;
    for (const Token& t : params) {
      if (t.kind == TokKind::kPunct &&
          (t.text == "(" || t.text == "<" || t.text == "[" || t.text == "{")) {
        ++depth;
      }
      if (t.kind == TokKind::kPunct &&
          (t.text == ")" || t.text == ">" || t.text == "]" || t.text == "}")) {
        --depth;
      }
      if (depth == 0 && t.kind == TokKind::kPunct && t.text == ",") {
        parts.emplace_back();
        continue;
      }
      parts.back().push_back(t);
    }
    for (const auto& part : parts) {
      if (part.empty()) continue;
      int eq = -1;
      for (std::size_t k = 0; k < part.size(); ++k) {
        if (part[k].kind == TokKind::kPunct && part[k].text == "=") {
          eq = static_cast<int>(k);
          break;
        }
      }
      const int end = eq >= 0 ? eq : static_cast<int>(part.size());
      int name_idx = -1;
      for (int k = end - 1; k >= 0; --k) {
        if (part[static_cast<std::size_t>(k)].kind == TokKind::kIdent) {
          name_idx = k;
          break;
        }
      }
      if (name_idx <= 0) continue;  // unnamed or type-only param
      const std::string name = part[static_cast<std::size_t>(name_idx)].text;
      std::string type_name;
      for (int k = 0; k < name_idx; ++k) {
        const Token& t = part[static_cast<std::size_t>(k)];
        if (t.kind == TokKind::kIdent && t.text != "const" &&
            t.text != "struct" && t.text != "class" && t.text != "typename" &&
            t.text != "std" && t.text != "unsigned" && t.text != "signed") {
          type_name = t.text;
        }
      }
      if (!type_name.empty()) fn.symbols[name] = type_name;
      if (eq >= 0) {
        std::string def;
        for (std::size_t k = static_cast<std::size_t>(eq) + 1; k < part.size();
             ++k) {
          if (!def.empty()) def += " ";
          def += part[k].text;
        }
        fn.symbols["__default__" + name] = def;
      }
    }
  }

  void record_ctor_init(FuncDecl& fn, const std::string& cls,
                        const std::string& member,
                        const std::vector<Token>& args) {
    if (args.empty()) return;
    ClassDecl& decl = model_.classes[cls.empty() ? fn.cls : cls];
    if (decl.ctor_mutex_init.find(member) == decl.ctor_mutex_init.end()) {
      std::string first_arg;
      int depth = 0;
      for (const Token& t : args) {
        if (t.kind == TokKind::kPunct &&
            (t.text == "(" || t.text == "{" || t.text == "<")) {
          ++depth;
        }
        if (t.kind == TokKind::kPunct &&
            (t.text == ")" || t.text == "}" || t.text == ">")) {
          --depth;
        }
        if (depth == 0 && t.kind == TokKind::kPunct && t.text == ",") break;
        first_arg += t.text;
      }
      decl.ctor_mutex_init[member] = first_arg;
      // Map ctor parameter defaults: if the first arg names a parameter
      // with a recorded default, remember it for rank resolution.
      auto it = fn.symbols.find("__default__" + first_arg);
      if (it != fn.symbols.end()) {
        decl.ctor_param_defaults[first_arg] = it->second;
      }
    }
    // The init list can register metrics: scan it for call patterns.
    scan_expression_calls(args, fn, member);
  }

  /// Extract call sites (with string args) from an isolated expression
  /// token run (constructor init-list entries). Held-locks do not apply.
  void scan_expression_calls(const std::vector<Token>& toks, FuncDecl& fn,
                             const std::string& init_target) {
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      if (toks[k + 1].kind != TokKind::kPunct || toks[k + 1].text != "(") {
        continue;
      }
      if (call_keyword_stoplist().count(toks[k].text) != 0U) continue;
      CallSite cs;
      cs.callee = toks[k].text;
      cs.line = toks[k].line;
      cs.init_target = init_target;
      if (k >= 2 && toks[k - 1].kind == TokKind::kPunct) {
        const std::string& p = toks[k - 1].text;
        if ((p == "." || p == "->" || p == "::") &&
            toks[k - 2].kind == TokKind::kIdent) {
          cs.receiver = toks[k - 2].text;
          cs.qualified = p == "::";
          cs.arrow = p == "->";
        }
      }
      int depth = 0;
      for (std::size_t j = k + 1; j < toks.size(); ++j) {
        if (toks[j].kind == TokKind::kPunct &&
            (toks[j].text == "(" || toks[j].text == "{")) {
          ++depth;
        } else if (toks[j].kind == TokKind::kPunct &&
                   (toks[j].text == ")" || toks[j].text == "}")) {
          if (--depth == 0) break;
        } else if (depth == 1 && toks[j].kind == TokKind::kString) {
          cs.str_args.push_back(toks[j].text);
        }
      }
      fn.calls.push_back(std::move(cs));
    }
  }

  // --------------------------------------------------------- body scan

  struct ActiveGuard {
    std::string mutex_expr;
    std::string var;
    int depth;
    int line;
    bool unique_lock;
    bool released = false;
  };

  void scan_body(FuncDecl& fn) {
    // Cursor sits on the body '{'.
    int depth = 0;
    std::vector<ActiveGuard> guards;
    bool in_case = false;  // between `case`/`default` and its `:`
    bool case_armed = false;  // a case label just closed; watch for return

    auto held_now = [&]() {
      std::vector<HeldLock> held;
      for (const ActiveGuard& g : guards) {
        if (!g.released) held.push_back(HeldLock{g.mutex_expr, g.line});
      }
      return held;
    };

    while (!c_.done()) {
      if (c_.is_punct("{")) {
        ++depth;
        c_.advance();
        continue;
      }
      if (c_.is_punct("}")) {
        --depth;
        c_.advance();
        while (!guards.empty() && guards.back().depth > depth) {
          guards.pop_back();
        }
        if (depth <= 0) return;
        continue;
      }
      const Token& t = c_.cur();
      if (t.kind == TokKind::kIdent) {
        fn.ident_refs.insert(t.text);

        // `case X...: return "lit";` harvesting (site-token functions).
        if (t.text == "case") {
          in_case = true;
          case_armed = false;
          c_.advance();
          continue;
        }
        if (in_case && c_.is_punct(":", 1)) {
          in_case = false;
          case_armed = true;
          c_.advance();
          c_.advance();
          continue;
        }
        if (case_armed && t.text == "return" &&
            c_.peek(1) != nullptr && c_.peek(1)->kind == TokKind::kString) {
          fn.case_return_literals.push_back(c_.peek(1)->text);
          case_armed = false;
          c_.advance();
          continue;
        }
        if (t.text != "return" && t.text != "case") case_armed = false;

        // `using S = ConnState;`
        if (t.text == "using" && c_.peek(1) != nullptr &&
            c_.peek(1)->kind == TokKind::kIdent && c_.is_punct("=", 2) &&
            c_.peek(3) != nullptr && c_.peek(3)->kind == TokKind::kIdent) {
          fn.type_aliases[c_.peek(1)->text] = c_.peek(3)->text;
          c_.advance();
          continue;
        }

        // Enum references `X::kFoo` (not followed by a call paren).
        if (c_.is_punct("::", 1) && c_.peek(2) != nullptr &&
            c_.peek(2)->kind == TokKind::kIdent &&
            c_.peek(2)->text.size() > 1 && c_.peek(2)->text[0] == 'k' &&
            std::isupper(static_cast<unsigned char>(c_.peek(2)->text[1])) &&
            !c_.is_punct("(", 3)) {
          fn.enum_refs[t.text].insert(c_.peek(2)->text);
          // fall through: still useful as tokens (e.g. rank args)
        }

        // Guard declaration: [util ::] MutexLock|UniqueMutexLock var(expr)
        if (t.text == "MutexLock" || t.text == "UniqueMutexLock") {
          if (scan_guard_decl(fn, guards, depth, held_now())) continue;
        }

        // Call site: ident '('
        if (c_.is_punct("(", 1) &&
            call_keyword_stoplist().count(t.text) == 0U) {
          scan_call(fn, guards, held_now());
          continue;
        }

        // Local declaration `Type name ...` (Type may be qualified).
        if (c_.peek(1) != nullptr && c_.peek(1)->kind == TokKind::kIdent &&
            t.text != "return" && t.text != "const" && t.text != "auto" &&
            t.text != "else" && t.text != "co_return" && t.text != "delete" &&
            (c_.is_punct("=", 2) || c_.is_punct(";", 2) ||
             c_.is_punct("{", 2))) {
          fn.symbols.emplace(c_.peek(1)->text, t.text);
          c_.advance();
          continue;
        }
        // Qualified local: `ns::Type name`/`Type& name` handled loosely via
        // the pattern `ident (::|&|*) ... ident (=|;|{)` — keep simple:
        // `X :: Y name` with terminator.
        if (c_.is_punct("::", 1) && c_.peek(2) != nullptr &&
            c_.peek(2)->kind == TokKind::kIdent && c_.peek(3) != nullptr &&
            c_.peek(3)->kind == TokKind::kIdent &&
            (c_.is_punct("=", 4) || c_.is_punct(";", 4) ||
             c_.is_punct("{", 4))) {
          fn.symbols.emplace(c_.peek(3)->text, c_.peek(2)->text);
          c_.advance();
          continue;
        }
      }
      c_.advance();
    }
  }

  /// Cursor on `MutexLock`/`UniqueMutexLock`. Returns true if a guard
  /// declaration was consumed.
  bool scan_guard_decl(FuncDecl& fn, std::vector<ActiveGuard>& guards,
                       int depth, std::vector<HeldLock> held) {
    const bool unique = c_.cur().text == "UniqueMutexLock";
    const int line = c_.cur().line;
    if (c_.peek(1) == nullptr || c_.peek(1)->kind != TokKind::kIdent) {
      c_.advance();
      return false;
    }
    const std::string var = c_.peek(1)->text;
    if (!c_.is_punct("(", 2) && !c_.is_punct("{", 2)) {
      c_.advance();
      return false;
    }
    c_.advance();  // type
    c_.advance();  // var
    const bool paren = c_.is_punct("(");
    std::vector<Token> args = paren ? capture_balanced_tokens("(", ")")
                                    : capture_balanced_tokens("{", "}");
    std::string expr;
    int adepth = 0;
    for (const Token& a : args) {
      if (a.kind == TokKind::kPunct && (a.text == "(" || a.text == "{")) {
        ++adepth;
      }
      if (a.kind == TokKind::kPunct && (a.text == ")" || a.text == "}")) {
        --adepth;
      }
      if (adepth == 0 && a.kind == TokKind::kPunct && a.text == ",") break;
      expr += a.text;
      fn.ident_refs.insert(a.text);
    }
    LockSite site;
    site.mutex_expr = expr;
    site.guard_var = var;
    site.unique_lock = unique;
    site.line = line;
    site.held = std::move(held);
    fn.locks.push_back(site);
    guards.push_back(ActiveGuard{expr, var, depth, line, unique});
    if (c_.is_punct(";")) c_.advance();
    return true;
  }

  /// Cursor on the callee identifier of `callee(`. Records the call and
  /// advances past the callee (args are scanned by the main loop).
  void scan_call(FuncDecl& fn, std::vector<ActiveGuard>& guards,
                 std::vector<HeldLock> held) {
    CallSite cs;
    cs.callee = c_.cur().text;
    cs.line = c_.cur().line;
    cs.held = std::move(held);

    // Receiver: look back from the callee.
    const std::size_t k = c_.i;
    const auto& toks = file_.tokens;
    if (k >= 2 && toks[k - 1].kind == TokKind::kPunct) {
      const std::string& p = toks[k - 1].text;
      if (p == "." || p == "->" || p == "::") {
        cs.arrow = p == "->";
        cs.qualified = p == "::";
        if (toks[k - 2].kind == TokKind::kIdent) {
          cs.receiver = toks[k - 2].text;
        } else if (toks[k - 2].kind == TokKind::kPunct &&
                   toks[k - 2].text == ")" && k >= 6 &&
                   toks[k - 3].kind == TokKind::kPunct &&
                   toks[k - 3].text == "(" &&
                   toks[k - 4].kind == TokKind::kIdent &&
                   toks[k - 5].kind == TokKind::kPunct &&
                   toks[k - 5].text == "::" &&
                   toks[k - 6].kind == TokKind::kIdent &&
                   (toks[k - 4].text == "instance" ||
                    toks[k - 4].text == "global")) {
          cs.receiver = toks[k - 6].text + "::" + toks[k - 4].text + "()";
        }
      }
    }

    // Guard interactions: `guard.unlock()` / `guard.lock()`.
    if (!cs.receiver.empty() && !cs.qualified) {
      for (ActiveGuard& g : guards) {
        if (g.var == cs.receiver && g.unique_lock) {
          if (cs.callee == "unlock") g.released = true;
          if (cs.callee == "lock") g.released = false;
        }
      }
    }

    // String-literal args at this call's top level (lookahead, no consume).
    int depth = 0;
    int args_before = 0;
    bool seen_str = false;
    for (std::size_t j = c_.i + 1; j < toks.size(); ++j) {
      if (toks[j].kind == TokKind::kPunct &&
          (toks[j].text == "(" || toks[j].text == "{")) {
        ++depth;
      } else if (toks[j].kind == TokKind::kPunct &&
                 (toks[j].text == ")" || toks[j].text == "}")) {
        if (--depth == 0) break;
      } else if (depth == 1) {
        if (toks[j].kind == TokKind::kString) {
          cs.str_args.push_back(toks[j].text);
          seen_str = true;
        } else if (!seen_str && toks[j].kind == TokKind::kPunct &&
                   toks[j].text == ",") {
          ++args_before;
        }
      }
    }
    cs.arg_count_before_first_str = args_before;
    fn.calls.push_back(std::move(cs));
    c_.advance();  // past callee; '(' handled by main loop as depth bump
  }
};

}  // namespace

void scan_file(const LexedFile& file, SourceModel& model) {
  FileScanner scanner(file, model);
  scanner.run();
}

}  // namespace naplet::analyze
