// Driver: file discovery (compile_commands.json + header walk), model
// construction, pass orchestration, output, exit code.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "model.hpp"

namespace naplet::analyze {

namespace fs = std::filesystem;

namespace {

bool has_source_ext(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Root-relative '/'-separated path ("" when `p` is outside `root`).
std::string relativize(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec) return "";
  std::string s = rel.generic_string();
  if (s.empty() || s == "." || s.rfind("..", 0) == 0) return "";
  return s;
}

/// Extract the "file" entries of a compile_commands.json. A real JSON
/// parser is overkill for the fixed cmake output shape: scan for
/// `"file"` keys and take the following string value.
std::vector<std::string> compdb_files(const std::string& text) {
  std::vector<std::string> files;
  std::size_t pos = 0;
  while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
    pos += 6;
    const std::size_t colon = text.find(':', pos);
    if (colon == std::string::npos) break;
    const std::size_t open = text.find('"', colon);
    if (open == std::string::npos) break;
    std::string value;
    std::size_t i = open + 1;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      value.push_back(text[i]);
      ++i;
    }
    files.push_back(value);
    pos = i;
  }
  return files;
}

/// True for paths the analyzer models: src/ and bench/ translation
/// units. tests/ deliberately plants violations in death tests and
/// tools/ is the analyzer itself, so both stay out of the model.
bool analyzed_path(const std::string& rel) {
  return rel.rfind("src/", 0) == 0 || rel.rfind("bench/", 0) == 0;
}

}  // namespace

int run_driver(const DriverOptions& opts) {
  const fs::path root = opts.root.empty() ? fs::current_path()
                                          : fs::path(opts.root);
  std::error_code ec;
  if (!fs::is_directory(root, ec) || ec) {
    std::cerr << "naplet-analyze: root '" << root.string()
              << "' is not a directory\n";
    return 2;
  }

  // ------------------------------------------------------ file discovery
  std::set<std::string> rel_paths;
  if (!opts.compdb.empty()) {
    if (!fs::exists(opts.compdb, ec) || ec) {
      std::cerr << "naplet-analyze: compile database '" << opts.compdb
                << "' not found\n";
      return 2;
    }
    for (const std::string& f : compdb_files(slurp(opts.compdb))) {
      const std::string rel = relativize(fs::path(f), root);
      if (!rel.empty() && analyzed_path(rel)) rel_paths.insert(rel);
    }
  }
  // Headers are not compile-db entries (and with no compile db, bodies
  // are not either): walk src/ and bench/ for anything not yet listed.
  bool walked_any = false;
  for (const char* dir : {"src", "bench"}) {
    const fs::path sub = root / dir;
    if (!fs::is_directory(sub, ec) || ec) continue;
    walked_any = true;
    for (auto it = fs::recursive_directory_iterator(sub, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file(ec) || ec) continue;
      if (!has_source_ext(it->path())) continue;
      const std::string rel = relativize(it->path(), root);
      if (!rel.empty()) rel_paths.insert(rel);
    }
  }
  if (!walked_any && rel_paths.empty()) {
    std::cerr << "naplet-analyze: no src/ or bench/ under '" << root.string()
              << "' and no compile database entries\n";
    return 2;
  }

  // ------------------------------------------------------ model building
  SourceModel model;
  for (const std::string& rel : rel_paths) {
    const fs::path p = root / rel;
    if (!fs::exists(p, ec) || ec) continue;
    LexedFile lf = lex(p.string(), rel, slurp(p));
    scan_file(lf, model);
    model.files.push_back(std::move(lf));
  }

  std::string design_md;
  const fs::path design_path = root / "DESIGN.md";
  if (fs::exists(design_path, ec) && !ec) design_md = slurp(design_path);

  // ---------------------------------------------------------------- passes
  std::vector<Finding> raw;
  if (!opts.registry_only) {
    lock_order_pass(model, raw);
    annotation_pass(model, raw);
  }
  registry_pass(model, design_md, raw);

  const AnalysisResult result =
      postprocess(std::move(raw), model.files, load_baseline(opts.baseline));

  // ---------------------------------------------------------------- output
  if (!opts.json_out.empty()) {
    std::ofstream out(opts.json_out);
    if (!out) {
      std::cerr << "naplet-analyze: cannot write '" << opts.json_out << "'\n";
      return 2;
    }
    emit_json(result, out);
  }
  if (opts.compact) {
    emit_compact(result, std::cout);
  } else if (!opts.quiet) {
    emit_report(result, std::cout);
  }
  return result.findings.empty() ? 0 : 1;
}

}  // namespace naplet::analyze
