// naplet-analyze: whole-program static analysis over the repo's own
// concurrency and invariant-registry idioms (see DESIGN.md §12).
//
// The tool is deliberately dependency-free: it lexes C++ sources itself
// (comments/strings/raw-strings aware) and recognises the repo's fixed
// idioms — `util::Mutex m{LockRank::kX, "name"}` declarations,
// `MutexLock`/`UniqueMutexLock` guard scopes, `NAPLET_GUARDED_BY`
// annotations, `fault::hit("site")` weaves, `registry_.counter("name")`
// instruments — rather than parsing arbitrary C++. A full clang AST
// frontend (tools/analyze/frontend_clang.cpp) cross-checks the same
// model when clang dev libraries are present; the syntactic engine is
// what always runs, so the gate never silently disappears on GCC-only
// hosts.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace naplet::analyze {

// ---------------------------------------------------------------------------
// Lexer

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string text;  // for kString: the decoded literal value (no quotes)
  int line = 0;
};

struct LexedFile {
  std::string path;      // as given (absolute or root-relative)
  std::string rel_path;  // root-relative, '/'-separated
  std::vector<Token> tokens;
  std::vector<std::string> raw_lines;  // for suppression-comment scanning
};

/// Tokenize `text`. Comments and preprocessor directive lines are
/// dropped; string/char literals become single tokens carrying their
/// decoded value; `::` and `->` are single punct tokens.
LexedFile lex(std::string path, std::string rel_path, const std::string& text);

// ---------------------------------------------------------------------------
// Source model (what the scanner extracts per translation unit)

struct MemberDecl {
  std::string type_text;   // joined type tokens, e.g. "mutable util::Mutex"
  std::string name;
  std::string guarded_by;  // NAPLET_GUARDED_BY argument ("" if none)
  bool is_mutex = false;       // util::Mutex (not a guard class)
  bool mutex_has_ctor_args = false;  // declared with {rank, ...} init
  std::string rank_token;      // "kController" etc. ("" if not literal)
  bool is_static = false;
  bool is_const = false;
  bool is_reference = false;
  bool is_pointer = false;
  bool not_guarded = false;  // carries NAPLET_NOT_GUARDED(reason)
  int line = 0;
  std::string file;
};

struct ClassDecl {
  std::string name;  // qualified for nested classes: "Outer::Inner"
  std::string file;
  int line = 0;
  std::vector<MemberDecl> members;
  std::set<std::string> method_names;
  // Mutex members initialised with arguments from some constructor's init
  // list (e.g. WaitableCell's `mu_(rank, "WaitableCell")`): member name ->
  // first init-list argument token text.
  std::map<std::string, std::string> ctor_mutex_init;
  // Default value tokens of constructor parameters, by parameter name
  // (resolves `mu_(rank, ...)` where `rank = LockRank::kStateCell`).
  std::map<std::string, std::string> ctor_param_defaults;
};

/// A mutex "identity" the lock-order graph can hang edges on.
struct MutexRef {
  std::string cls;    // owning class ("" for globals/locals)
  std::string name;   // member/variable name
  std::string rank_token;  // "kController", "kUnranked", or "" = unknown
  bool resolved = false;

  [[nodiscard]] std::string display() const {
    return cls.empty() ? name : cls + "::" + name;
  }
  [[nodiscard]] std::string key() const { return cls + "::" + name; }
};

struct HeldLock {
  std::string mutex_expr;  // raw expression text, resolved later
  int line = 0;            // acquisition line
};

struct LockSite {
  std::string mutex_expr;
  std::string guard_var;
  bool unique_lock = false;  // UniqueMutexLock (may unlock/relock)
  int line = 0;
  std::vector<HeldLock> held;  // locks already held at this acquisition
};

struct CallSite {
  std::string callee;
  std::string receiver;  // "" bare | "x" obj | "Class"/"ns" qualifier text
  bool arrow = false;    // receiver accessed via ->
  bool qualified = false;  // receiver was a :: qualifier
  std::vector<std::string> str_args;  // string literal args, in order
  int arg_count_before_first_str = 0;
  int line = 0;
  std::vector<HeldLock> held;
  // For calls inside a constructor init list: the member being
  // initialised (cached-instrument idiom `ctr_(registry_.counter(...))`).
  std::string init_target;
};

struct LocalVar {
  std::string name;
  std::string type_name;  // last class-ish identifier of the type
};

struct FuncDecl {
  std::string cls;   // enclosing/qualifying class ("" = free function)
  std::string name;
  std::string file;
  int line = 0;
  std::vector<LockSite> locks;
  std::vector<CallSite> calls;
  std::map<std::string, std::string> symbols;  // local/param name -> type
  // `using S = ConnState;` style aliases inside the body.
  std::map<std::string, std::string> type_aliases;
  // Enumerator references: enum-ish qualifier -> enumerators referenced.
  std::map<std::string, std::set<std::string>> enum_refs;
  // `case X: return "lit";` literals (fault-site token functions).
  std::vector<std::string> case_return_literals;
  // Every identifier appearing in the body (cheap liveness check for
  // cached instruments: is the member ever touched again?).
  std::set<std::string> ident_refs;

  [[nodiscard]] std::string qname() const {
    return cls.empty() ? name : cls + "::" + name;
  }
};

struct EnumDecl {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<std::string> enumerators;
  std::map<std::string, long> values;  // explicit or auto-incremented
};

struct GlobalVar {
  std::string name;
  std::string type_text;
  std::string file;
  int line = 0;
  bool is_mutex = false;
  bool mutex_has_ctor_args = false;
  std::string rank_token;
  std::vector<std::string> str_inits;  // string literals in the initializer
};

struct SourceModel {
  std::vector<LexedFile> files;
  std::map<std::string, ClassDecl> classes;         // by qualified name
  std::vector<FuncDecl> functions;
  std::map<std::string, EnumDecl> enums;            // by name
  std::map<std::string, long> count_constants;      // kXCount -> value
  std::map<std::string, GlobalVar> globals;         // by name
};

/// Scan one lexed file into `model` (merging with earlier files).
void scan_file(const LexedFile& file, SourceModel& model);

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string kind;     // stable kebab-case id, e.g. "lock-rank-inversion"
  std::string file;     // root-relative
  int line = 0;
  std::string symbol;   // function/class/site the finding anchors to
  std::string message;
  std::vector<std::string> chain;  // call chain for lock-order findings

  [[nodiscard]] std::string fingerprint() const {
    return kind + "|" + file + "|" + symbol;
  }
};

struct AnalysisResult {
  std::vector<Finding> findings;
  int suppressed = 0;  // dropped by analyze-ignore comments
  int baselined = 0;   // dropped by the baseline file
};

/// Load baseline fingerprints (one per line, '#' comments) from `path`.
std::set<std::string> load_baseline(const std::string& path);

/// Sort, dedup, and filter raw findings through suppression comments and
/// the baseline.
AnalysisResult postprocess(std::vector<Finding> findings,
                           const std::vector<LexedFile>& files,
                           const std::set<std::string>& baseline);

void emit_report(const AnalysisResult& result, std::ostream& out);
void emit_compact(const AnalysisResult& result, std::ostream& out);
void emit_json(const AnalysisResult& result, std::ostream& out);

// ---------------------------------------------------------------------------
// Passes

struct RankTable {
  std::map<std::string, long> value_of;  // "kController" -> 10
  bool loaded = false;
};

/// Build the rank table from the scanned LockRank enum (if present).
RankTable rank_table(const SourceModel& model);

/// Pass 1: inter-procedural lock-order analysis.
void lock_order_pass(const SourceModel& model, std::vector<Finding>& out);

/// Pass 2: annotation-coverage audit.
void annotation_pass(const SourceModel& model, std::vector<Finding>& out);

/// Pass 3: invariant-registry cross-checks. `design_md` is the contents
/// of DESIGN.md ("" = skip the rank-table check).
void registry_pass(const SourceModel& model, const std::string& design_md,
                   std::vector<Finding>& out);

// ---------------------------------------------------------------------------
// Driver

struct DriverOptions {
  std::string root;           // repo root (contains src/, DESIGN.md, ...)
  std::string compdb;         // compile_commands.json ("" = auto/none)
  std::string baseline;       // baseline file ("" = none)
  std::string json_out;       // write JSON findings here ("" = stdout off)
  bool compact = false;       // print `kind|file|symbol|message` lines
  bool registry_only = false; // pass 3 only (registry_check)
  bool quiet = false;
};

/// Run the configured passes over `opts.root`. Returns the process exit
/// code: 0 clean, 1 findings, 2 usage/environment error.
int run_driver(const DriverOptions& opts);

}  // namespace naplet::analyze
