// Findings post-processing: suppression comments, baseline filtering,
// and the three output formats (human report, compact lines, JSON).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "model.hpp"

namespace naplet::analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

/// True when the finding's line (or the line above it) carries an
/// `analyze-ignore(<kind>)` or `analyze-ignore(all)` comment.
bool is_suppressed(const Finding& f, const std::vector<LexedFile>& files) {
  if (f.line <= 0) return false;
  const LexedFile* lf = nullptr;
  for (const LexedFile& cand : files) {
    if (cand.rel_path == f.file) {
      lf = &cand;
      break;
    }
  }
  if (lf == nullptr) return false;
  const std::string tag_kind = "analyze-ignore(" + f.kind + ")";
  const std::string tag_all = "analyze-ignore(all)";
  for (int line = f.line - 1; line <= f.line; ++line) {
    const std::size_t idx = static_cast<std::size_t>(line) - 1;
    if (line < 1 || idx >= lf->raw_lines.size()) continue;
    const std::string& text = lf->raw_lines[idx];
    if (text.find(tag_kind) != std::string::npos ||
        text.find(tag_all) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::set<std::string> load_baseline(const std::string& path) {
  std::set<std::string> fingerprints;
  if (path.empty()) return fingerprints;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    line = line.substr(start);
    if (line.empty() || line[0] == '#') continue;
    fingerprints.insert(line);
  }
  return fingerprints;
}

AnalysisResult postprocess(std::vector<Finding> findings,
                           const std::vector<LexedFile>& files,
                           const std::set<std::string>& baseline) {
  AnalysisResult result;
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.fingerprint() != b.fingerprint()) {
                return a.fingerprint() < b.fingerprint();
              }
              return a.line < b.line;
            });
  std::set<std::string> seen;
  for (Finding& f : findings) {
    if (!seen.insert(f.fingerprint()).second) continue;
    if (is_suppressed(f, files)) {
      ++result.suppressed;
      continue;
    }
    if (baseline.count(f.fingerprint()) != 0U) {
      ++result.baselined;
      continue;
    }
    result.findings.push_back(std::move(f));
  }
  return result;
}

void emit_compact(const AnalysisResult& result, std::ostream& out) {
  for (const Finding& f : result.findings) {
    out << f.kind << "|" << f.file << ":" << f.line << "|" << f.symbol << "|"
        << f.message << "\n";
  }
}

void emit_json(const AnalysisResult& result, std::ostream& out) {
  out << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : result.findings) {
    out << (first ? "" : ",") << "\n    {"
        << "\"kind\": \"" << json_escape(f.kind) << "\", "
        << "\"file\": \"" << json_escape(f.file) << "\", "
        << "\"line\": " << f.line << ", "
        << "\"symbol\": \"" << json_escape(f.symbol) << "\", "
        << "\"fingerprint\": \"" << json_escape(f.fingerprint()) << "\", "
        << "\"message\": \"" << json_escape(f.message) << "\"";
    if (!f.chain.empty()) {
      out << ", \"chain\": [";
      for (std::size_t i = 0; i < f.chain.size(); ++i) {
        out << (i == 0 ? "" : ", ") << "\"" << json_escape(f.chain[i]) << "\"";
      }
      out << "]";
    }
    out << "}";
    first = false;
  }
  out << "\n  ],\n  \"suppressed\": " << result.suppressed
      << ",\n  \"baselined\": " << result.baselined << "\n}\n";
}

void emit_report(const AnalysisResult& result, std::ostream& out) {
  if (result.findings.empty()) {
    out << "naplet-analyze: clean (" << result.suppressed << " suppressed, "
        << result.baselined << " baselined)\n";
    return;
  }
  std::map<std::string, std::vector<const Finding*>> by_kind;
  for (const Finding& f : result.findings) {
    by_kind[f.kind].push_back(&f);
  }
  out << "naplet-analyze: " << result.findings.size() << " finding(s)\n";
  for (const auto& [kind, group] : by_kind) {
    out << "\n[" << kind << "] (" << group.size() << ")\n";
    for (const Finding* f : group) {
      out << "  " << f->file << ":" << f->line << "  " << f->symbol << "\n"
          << "    " << f->message << "\n";
      if (!f->chain.empty()) {
        out << "    chain:";
        for (const std::string& fn : f->chain) out << " -> " << fn;
        out << "\n";
      }
      out << "    fingerprint: " << f->fingerprint() << "\n";
    }
  }
  if (result.suppressed > 0 || result.baselined > 0) {
    out << "\n(" << result.suppressed << " suppressed by analyze-ignore, "
        << result.baselined << " baselined)\n";
  }
}

}  // namespace naplet::analyze
