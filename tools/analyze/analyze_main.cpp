// naplet-analyze: whole-program lock-order, annotation-coverage, and
// invariant-registry static analysis over the naplet sources.
//
//   naplet-analyze --root . --compdb build-debug/compile_commands.json
//                  --baseline tools/analyze/baseline.txt
//
// Exit codes: 0 clean, 1 findings, 2 usage/environment error.
#include <cstring>
#include <iostream>
#include <string>

#include "model.hpp"

namespace {

void usage(std::ostream& out) {
  out << "usage: naplet-analyze [options]\n"
         "  --root DIR       repo root to analyze (default: cwd)\n"
         "  --compdb FILE    compile_commands.json to seed the file list\n"
         "  --baseline FILE  fingerprints to tolerate (one per line)\n"
         "  --json FILE      also write findings as JSON\n"
         "  --compact        print kind|file:line|symbol|message lines\n"
         "  --registry-only  run only the invariant-registry pass\n"
         "  --quiet          suppress the human report\n";
}

}  // namespace

int main(int argc, char** argv) {
  naplet::analyze::DriverOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) {
        usage(std::cerr);
        return 2;
      }
      opts.root = v;
    } else if (arg == "--compdb") {
      const char* v = next();
      if (v == nullptr) {
        usage(std::cerr);
        return 2;
      }
      opts.compdb = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) {
        usage(std::cerr);
        return 2;
      }
      opts.baseline = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) {
        usage(std::cerr);
        return 2;
      }
      opts.json_out = v;
    } else if (arg == "--compact") {
      opts.compact = true;
    } else if (arg == "--registry-only") {
      opts.registry_only = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "naplet-analyze: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }
  return naplet::analyze::run_driver(opts);
}
