// Pass 3: invariant-registry cross-checks. Dependency-free by design —
// this pass also ships as the standalone `registry_check` binary so the
// CI gate never goes dark on hosts without clang libraries.
//
//  * fault-site checks   — literals woven at fault::hit()/
//                          send_with_fault()/ctrl_site() call sites vs.
//                          the canonical kFaultSites registry: grammar,
//                          duplicates, unknown (woven but unregistered)
//                          and stale (registered but never woven).
//  * metric checks       — instrument names read by bench/ must be
//                          registered by src/; constructor-cached
//                          instruments must actually be recorded.
//  * rank-table check    — the LockRank enum vs. the DESIGN.md table
//                          marked `naplet-analyze:lock-rank-table`.
//  * enum-count check    — `enum class X` vs. its `kXCount` constant
//                          (the PR-2 off-by-one, now caught statically).
//  * fsm-incomplete      — every enumerator of a counted enum used by a
//                          `transition()` function must be handled in it.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

#include "resolve.hpp"

namespace naplet::analyze {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool site_grammar_ok(const std::string& site) {
  bool has_dot = false;
  bool segment_empty = true;
  for (char ch : site) {
    if (ch == '.') {
      if (segment_empty) return false;
      has_dot = true;
      segment_empty = true;
      continue;
    }
    const bool ok = (std::islower(static_cast<unsigned char>(ch)) != 0) ||
                    (std::isdigit(static_cast<unsigned char>(ch)) != 0) ||
                    ch == '_';
    if (!ok) return false;
    segment_empty = false;
  }
  return has_dot && !segment_empty;
}

struct SiteUse {
  std::string file;
  int line = 0;
  std::string func;
};

bool is_metric_callee(const std::string& callee) {
  return callee == "counter" || callee == "gauge" || callee == "histogram";
}

bool receiver_is_registry(const Resolver& r, const FuncDecl& fn,
                          const CallSite& cs) {
  if (cs.receiver == "Registry::global()") return true;
  if (cs.receiver.find("registry") != std::string::npos ||
      cs.receiver.find("Registry") != std::string::npos) {
    return true;
  }
  return r.receiver_type(fn, cs) == "Registry";
}

}  // namespace

void registry_pass(const SourceModel& model, const std::string& design_md,
                   std::vector<Finding>& out) {
  Resolver resolver(model);

  // ---------------------------------------------------------- fault sites
  std::map<std::string, SiteUse> woven;
  std::set<std::string> ctrl_stages;
  std::vector<std::string> ctrl_tokens;
  for (const FuncDecl& fn : model.functions) {
    if (!starts_with(fn.file, "src/")) continue;
    if (fn.name == "ctrl_site_token") {
      ctrl_tokens = fn.case_return_literals;
    }
    for (const CallSite& cs : fn.calls) {
      if (cs.str_args.empty()) continue;
      const bool direct_hit =
          cs.callee == "hit" && cs.arg_count_before_first_str == 0;
      const bool wrapped_send =
          cs.callee == "send_with_fault" && cs.arg_count_before_first_str == 0;
      if (direct_hit || wrapped_send) {
        woven.emplace(cs.str_args.front(),
                      SiteUse{fn.file, cs.line, fn.qname()});
      }
      if (cs.callee == "ctrl_site") {
        ctrl_stages.insert(cs.str_args.front());
      }
    }
  }
  for (const std::string& stage : ctrl_stages) {
    for (const std::string& token : ctrl_tokens) {
      woven.emplace("ctrl." + token + "." + stage, SiteUse{});
    }
  }

  std::vector<std::string> canonical;
  std::string canonical_file;
  int canonical_line = 0;
  auto git = model.globals.find("kFaultSites");
  if (git != model.globals.end()) {
    canonical = git->second.str_inits;
    canonical_file = git->second.file;
    canonical_line = git->second.line;
  }

  for (const auto& [site, use] : woven) {
    if (!site_grammar_ok(site)) {
      Finding f;
      f.kind = "fault-site-grammar";
      f.file = use.file.empty() ? canonical_file : use.file;
      f.line = use.line;
      f.symbol = site;
      f.message = "fault site '" + site +
                  "' violates the site grammar (lowercase dotted segments)";
      out.push_back(std::move(f));
    }
  }
  if (!canonical.empty()) {
    std::set<std::string> seen;
    std::set<std::string> canon_set;
    for (const std::string& site : canonical) {
      canon_set.insert(site);
      if (!seen.insert(site).second) {
        Finding f;
        f.kind = "fault-site-duplicate";
        f.file = canonical_file;
        f.line = canonical_line;
        f.symbol = site;
        f.message = "fault site '" + site +
                    "' is listed twice in the kFaultSites registry";
        out.push_back(std::move(f));
      }
      if (!site_grammar_ok(site)) {
        Finding f;
        f.kind = "fault-site-grammar";
        f.file = canonical_file;
        f.line = canonical_line;
        f.symbol = site;
        f.message = "registered fault site '" + site +
                    "' violates the site grammar";
        out.push_back(std::move(f));
      }
    }
    for (const auto& [site, use] : woven) {
      if (canon_set.count(site) != 0U) continue;
      Finding f;
      f.kind = "fault-site-unknown";
      f.file = use.file.empty() ? canonical_file : use.file;
      f.line = use.line;
      f.symbol = site;
      f.message = "fault site '" + site +
                  "' is woven into the code but missing from kFaultSites "
                  "(chaos plans cannot target it; --list-sites lies)";
      out.push_back(std::move(f));
    }
    for (const std::string& site : canon_set) {
      if (woven.count(site) != 0U) continue;
      Finding f;
      f.kind = "fault-site-stale";
      f.file = canonical_file;
      f.line = canonical_line;
      f.symbol = site;
      f.message = "fault site '" + site +
                  "' is registered in kFaultSites but no fault::hit()/"
                  "send_with_fault() weave references it";
      out.push_back(std::move(f));
    }
  }

  // -------------------------------------------------------------- metrics
  std::set<std::string> registered;
  struct CachedInstrument {
    std::string cls;
    std::string member;
    std::string metric;
    std::string file;
    int line = 0;
  };
  std::vector<CachedInstrument> cached;
  for (const FuncDecl& fn : model.functions) {
    if (!starts_with(fn.file, "src/")) continue;
    for (const CallSite& cs : fn.calls) {
      if (!is_metric_callee(cs.callee) || cs.str_args.empty()) continue;
      if (cs.arg_count_before_first_str != 0) continue;
      if (!receiver_is_registry(resolver, fn, cs)) continue;
      registered.insert(cs.str_args.front());
      if (!cs.init_target.empty()) {
        cached.push_back(CachedInstrument{fn.cls, cs.init_target,
                                          cs.str_args.front(), fn.file,
                                          cs.line});
      }
    }
  }
  for (const CachedInstrument& ci : cached) {
    bool recorded = false;
    for (const FuncDecl& fn : model.functions) {
      if (fn.cls != ci.cls) continue;
      if (fn.ident_refs.count(ci.member) != 0U) {
        recorded = true;
        break;
      }
    }
    if (!recorded) {
      Finding f;
      f.kind = "metric-unrecorded";
      f.file = ci.file;
      f.line = ci.line;
      f.symbol = ci.cls + "::" + ci.member;
      f.message = "instrument '" + ci.metric +
                  "' is registered into member '" + ci.member +
                  "' but no method of " + ci.cls + " ever records into it";
      out.push_back(std::move(f));
    }
  }
  for (const FuncDecl& fn : model.functions) {
    if (!starts_with(fn.file, "bench/")) continue;
    for (const CallSite& cs : fn.calls) {
      if (!is_metric_callee(cs.callee) || cs.str_args.empty()) continue;
      if (cs.arg_count_before_first_str != 0) continue;
      const std::string& name = cs.str_args.front();
      if (registered.count(name) != 0U) continue;
      Finding f;
      f.kind = "metric-unregistered";
      f.file = fn.file;
      f.line = cs.line;
      f.symbol = name;
      f.message = "bench reads metric '" + name +
                  "' but no src/ code registers an instrument with that "
                  "name (renamed or removed?)";
      out.push_back(std::move(f));
    }
  }

  // ----------------------------------------------------------- rank table
  auto eit = model.enums.find("LockRank");
  if (eit != model.enums.end() && !design_md.empty()) {
    const std::string marker = "naplet-analyze:lock-rank-table";
    std::size_t pos = design_md.find(marker);
    if (pos != std::string::npos) {
      std::map<std::string, long> table;
      std::istringstream in(design_md.substr(pos));
      std::string line;
      bool in_table = false;
      while (std::getline(in, line)) {
        if (line.empty() || line[0] != '|') {
          if (in_table) break;
          continue;
        }
        in_table = true;
        // | <value> | `kName` | description |
        std::istringstream cells(line);
        std::string cell;
        std::getline(cells, cell, '|');  // leading empty
        std::string value_cell;
        std::string name_cell;
        std::getline(cells, value_cell, '|');
        std::getline(cells, name_cell, '|');
        long value = 0;
        bool numeric = false;
        for (char ch : value_cell) {
          if (std::isdigit(static_cast<unsigned char>(ch)) != 0) {
            value = value * 10 + (ch - '0');
            numeric = true;
          } else if (!std::isspace(static_cast<unsigned char>(ch))) {
            numeric = false;
            break;
          }
        }
        if (!numeric) continue;  // header / separator rows
        std::string name;
        for (char ch : name_cell) {
          if ((std::isalnum(static_cast<unsigned char>(ch)) != 0) ||
              ch == '_') {
            name.push_back(ch);
          } else if (!name.empty()) {
            break;
          }
        }
        if (!name.empty()) table[name] = value;
      }
      for (const auto& [name, value] : eit->second.values) {
        auto tit = table.find(name);
        if (tit == table.end()) {
          Finding f;
          f.kind = "rank-table-missing";
          f.file = eit->second.file;
          f.line = eit->second.line;
          f.symbol = name;
          f.message = "LockRank::" + name +
                      " is not documented in the DESIGN.md rank table";
          out.push_back(std::move(f));
        } else if (tit->second != value) {
          Finding f;
          f.kind = "rank-table-mismatch";
          f.file = eit->second.file;
          f.line = eit->second.line;
          f.symbol = name;
          f.message = "LockRank::" + name + " = " + std::to_string(value) +
                      " but the DESIGN.md table says " +
                      std::to_string(tit->second);
          out.push_back(std::move(f));
        }
      }
      for (const auto& [name, value] : table) {
        if (eit->second.values.count(name) != 0U) continue;
        Finding f;
        f.kind = "rank-table-stale";
        f.file = "DESIGN.md";
        f.symbol = name;
        f.message = "the DESIGN.md rank table documents " + name + " (" +
                    std::to_string(value) +
                    ") which no longer exists in the LockRank enum";
        out.push_back(std::move(f));
      }
    }
  }

  // ----------------------------------------------------------- enum counts
  for (const auto& [const_name, expected] : model.count_constants) {
    // kConnEventCount -> ConnEvent
    const std::string enum_name =
        const_name.substr(1, const_name.size() - 6);
    auto enum_it = model.enums.find(enum_name);
    if (enum_it == model.enums.end()) continue;
    const long actual = static_cast<long>(enum_it->second.enumerators.size());
    if (actual != expected) {
      Finding f;
      f.kind = "enum-count-mismatch";
      f.file = enum_it->second.file;
      f.line = enum_it->second.line;
      f.symbol = const_name;
      f.message = const_name + " = " + std::to_string(expected) + " but enum " +
                  enum_name + " has " + std::to_string(actual) +
                  " enumerators (grid tests and transition tables will "
                  "silently skip the tail)";
      out.push_back(std::move(f));
    }
  }

  // ---------------------------------------------------- FSM completeness
  for (const FuncDecl& fn : model.functions) {
    if (fn.name != "transition") continue;
    std::map<std::string, std::set<std::string>> refs;
    for (const auto& [qual, enumerators] : fn.enum_refs) {
      std::string target = qual;
      auto ait = fn.type_aliases.find(qual);
      if (ait != fn.type_aliases.end()) target = ait->second;
      refs[target].insert(enumerators.begin(), enumerators.end());
    }
    for (const auto& [enum_name, referenced] : refs) {
      auto enum_it = model.enums.find(enum_name);
      if (enum_it == model.enums.end()) continue;
      if (model.count_constants.count("k" + enum_name + "Count") == 0U) {
        continue;  // only counted (table-complete) enums are audited
      }
      std::vector<std::string> missing;
      for (const std::string& e : enum_it->second.enumerators) {
        if (referenced.count(e) == 0U) missing.push_back(e);
      }
      if (missing.empty()) continue;
      std::string list;
      for (const std::string& e : missing) {
        if (!list.empty()) list += ", ";
        list += e;
      }
      Finding f;
      f.kind = "fsm-incomplete";
      f.file = fn.file;
      f.line = fn.line;
      f.symbol = fn.qname() + "/" + enum_name;
      f.message = "transition() never handles " + enum_name + " value(s) " +
                  list + " — unreachable transitions or a missing case";
      out.push_back(std::move(f));
    }
  }
}

}  // namespace naplet::analyze
