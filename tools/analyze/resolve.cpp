#include "resolve.hpp"

#include <algorithm>
#include <cctype>

namespace naplet::analyze {

namespace {

/// Split "a->b" / "a.b" / "a" into components.
std::vector<std::string> split_access_path(const std::string& expr) {
  std::vector<std::string> parts;
  std::string cur;
  for (std::size_t i = 0; i < expr.size(); ++i) {
    if (expr[i] == '.' || (expr[i] == '-' && i + 1 < expr.size() &&
                           expr[i + 1] == '>')) {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
      if (expr[i] == '-') ++i;
      continue;
    }
    cur.push_back(expr[i]);
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

/// Last `kSomething` token in a text like "LockRank::kStateCell" or
/// "LockRank :: kStateCell" ("" if none).
std::string rank_token_of(const std::string& text) {
  std::string best;
  std::string cur;
  for (char ch : text) {
    if ((std::isalnum(static_cast<unsigned char>(ch)) != 0) || ch == '_') {
      cur.push_back(ch);
    } else {
      if (cur.size() > 1 && cur[0] == 'k') best = cur;
      cur.clear();
    }
  }
  if (cur.size() > 1 && cur[0] == 'k') best = cur;
  return best;
}

}  // namespace

RankTable rank_table(const SourceModel& model) {
  RankTable table;
  auto it = model.enums.find("LockRank");
  if (it == model.enums.end()) return table;
  table.loaded = true;
  table.value_of = it->second.values;
  return table;
}

Resolver::Resolver(const SourceModel& model) : model_(&model) {
  ranks_ = rank_table(model);
  for (const FuncDecl& fn : model.functions) {
    funcs_.push_back(&fn);
    by_qname_.emplace(fn.qname(), &fn);
    by_name_[fn.name].push_back(&fn);
  }
}

long Resolver::rank_value(const std::string& rank_token) const {
  if (rank_token.empty() || !ranks_.loaded) return -1;
  auto it = ranks_.value_of.find(rank_token);
  return it == ranks_.value_of.end() ? -1 : it->second;
}

const MemberDecl* Resolver::find_member(const std::string& cls,
                                        const std::string& name) const {
  auto it = model_->classes.find(cls);
  if (it == model_->classes.end()) return nullptr;
  for (const MemberDecl& m : it->second.members) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string Resolver::member_type(const std::string& cls,
                                  const std::string& member) const {
  const MemberDecl* m = find_member(cls, member);
  if (m == nullptr) return "";
  // Last class-ish identifier of the type: handles `obs::Registry&`,
  // `std::unique_ptr<Session>`, `const Snapshot`.
  std::string best;
  std::string cur;
  for (char ch : m->type_text + " ") {
    if ((std::isalnum(static_cast<unsigned char>(ch)) != 0) || ch == '_') {
      cur.push_back(ch);
    } else {
      if (!cur.empty() && cur != "const" && cur != "mutable" &&
          cur != "std" && cur != "static" && cur != "unique_ptr" &&
          cur != "shared_ptr" && cur != "vector" && cur != "optional" &&
          model_->classes.find(cur) != model_->classes.end()) {
        best = cur;
      }
      cur.clear();
    }
  }
  return best;
}

std::string Resolver::rank_of_member(const std::string& cls,
                                     const MemberDecl& member) const {
  if (!member.rank_token.empty()) return member.rank_token;
  auto cit = model_->classes.find(cls);
  if (cit == model_->classes.end()) return "";
  auto init = cit->second.ctor_mutex_init.find(member.name);
  if (init == cit->second.ctor_mutex_init.end()) return "";
  std::string tok = rank_token_of(init->second);
  if (!tok.empty() && ranks_.loaded &&
      ranks_.value_of.find(tok) != ranks_.value_of.end()) {
    return tok;
  }
  // The init arg is a constructor parameter: use its default, if any.
  auto def = cit->second.ctor_param_defaults.find(init->second);
  if (def != cit->second.ctor_param_defaults.end()) {
    return rank_token_of(def->second);
  }
  return "";
}

MutexRef Resolver::resolve_mutex(const FuncDecl& fn,
                                 const std::string& expr) const {
  MutexRef ref;
  std::vector<std::string> parts = split_access_path(expr);
  if (!parts.empty() && parts.front() == "this") {
    parts.erase(parts.begin());
  }
  if (parts.empty()) return ref;

  if (parts.size() == 1) {
    // A member of the enclosing class, or a global.
    if (!fn.cls.empty()) {
      const MemberDecl* m = find_member(fn.cls, parts[0]);
      if (m != nullptr && m->is_mutex) {
        ref.cls = fn.cls;
        ref.name = m->name;
        ref.rank_token = rank_of_member(fn.cls, *m);
        ref.resolved = true;
        return ref;
      }
    }
    auto git = model_->globals.find(parts[0]);
    if (git != model_->globals.end() && git->second.is_mutex) {
      ref.name = parts[0];
      ref.rank_token = git->second.rank_token;
      ref.resolved = true;
      return ref;
    }
    return ref;
  }
  if (parts.size() == 2) {
    // `obj.mu_`: resolve obj's type among locals/params, then members.
    std::string type;
    auto sit = fn.symbols.find(parts[0]);
    if (sit != fn.symbols.end()) {
      type = sit->second;
    } else if (!fn.cls.empty()) {
      type = member_type(fn.cls, parts[0]);
    }
    if (type.empty()) return ref;
    const MemberDecl* m = find_member(type, parts[1]);
    if (m != nullptr && m->is_mutex) {
      ref.cls = type;
      ref.name = m->name;
      ref.rank_token = rank_of_member(type, *m);
      ref.resolved = true;
    }
  }
  return ref;
}

std::string Resolver::receiver_type(const FuncDecl& fn,
                                    const CallSite& cs) const {
  if (cs.receiver.empty()) return "";
  // `X::instance()` / `X::global()` singletons.
  const std::size_t paren = cs.receiver.find("::");
  if (cs.receiver.size() > 2 &&
      cs.receiver.compare(cs.receiver.size() - 2, 2, "()") == 0 &&
      paren != std::string::npos) {
    return cs.receiver.substr(0, paren);
  }
  if (cs.qualified) {
    // `Class::method(...)` — the qualifier is the type when it names a
    // scanned class.
    if (model_->classes.find(cs.receiver) != model_->classes.end()) {
      return cs.receiver;
    }
    return "";
  }
  auto sit = fn.symbols.find(cs.receiver);
  if (sit != fn.symbols.end() &&
      model_->classes.find(sit->second) != model_->classes.end()) {
    return sit->second;
  }
  if (!fn.cls.empty()) {
    const std::string t = member_type(fn.cls, cs.receiver);
    if (!t.empty()) return t;
  }
  return "";
}

const FuncDecl* Resolver::resolve_call(const FuncDecl& fn,
                                       const CallSite& cs) const {
  if (cs.receiver.empty()) {
    // Bare call: same-class method first, then unique free function,
    // then a globally unique name.
    if (!fn.cls.empty()) {
      auto it = by_qname_.find(fn.cls + "::" + cs.callee);
      if (it != by_qname_.end()) return it->second;
    }
    auto nit = by_name_.find(cs.callee);
    if (nit == by_name_.end()) return nullptr;
    const FuncDecl* free_fn = nullptr;
    int free_count = 0;
    for (const FuncDecl* cand : nit->second) {
      if (cand->cls.empty()) {
        free_fn = cand;
        ++free_count;
      }
    }
    if (free_count == 1) return free_fn;
    if (nit->second.size() == 1) return nit->second.front();
    return nullptr;
  }
  const std::string type = receiver_type(fn, cs);
  if (!type.empty()) {
    auto it = by_qname_.find(type + "::" + cs.callee);
    if (it != by_qname_.end()) return it->second;
    return nullptr;
  }
  if (cs.qualified) {
    // Namespace-qualified free call (`fault::hit`, `lock_rank::...`):
    // accept a unique free function with that name.
    auto nit = by_name_.find(cs.callee);
    if (nit == by_name_.end()) return nullptr;
    const FuncDecl* free_fn = nullptr;
    int free_count = 0;
    for (const FuncDecl* cand : nit->second) {
      if (cand->cls.empty()) {
        free_fn = cand;
        ++free_count;
      }
    }
    return free_count == 1 ? free_fn : nullptr;
  }
  return nullptr;  // object receiver of unknown type: drop the edge
}

}  // namespace naplet::analyze
