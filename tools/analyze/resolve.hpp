// Name-resolution helpers shared by the analysis passes. Resolution is
// deliberately conservative: an edge (call target, mutex identity,
// receiver type) is only produced when the repo's idiom makes it
// unambiguous — unresolved constructs are dropped rather than guessed,
// so pass 1 reports no chain it cannot actually witness in the sources.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model.hpp"

namespace naplet::analyze {

class Resolver {
 public:
  explicit Resolver(const SourceModel& model);

  [[nodiscard]] const SourceModel& model() const { return *model_; }

  /// Resolve a mutex expression (e.g. "mu_", "this->mu_", "node.mu") in
  /// the context of `fn`. resolved=false when the expression cannot be
  /// tied to a declared util::Mutex.
  [[nodiscard]] MutexRef resolve_mutex(const FuncDecl& fn,
                                       const std::string& expr) const;

  /// Rank value for a rank token; -1 when unknown. kUnranked yields 0.
  [[nodiscard]] long rank_value(const std::string& rank_token) const;

  /// The class type of a call receiver ("" when undeterminable).
  [[nodiscard]] std::string receiver_type(const FuncDecl& fn,
                                          const CallSite& cs) const;

  /// The function a call resolves to (nullptr = unresolved/external).
  [[nodiscard]] const FuncDecl* resolve_call(const FuncDecl& fn,
                                             const CallSite& cs) const;

  [[nodiscard]] const std::vector<const FuncDecl*>& functions() const {
    return funcs_;
  }
  [[nodiscard]] const FuncDecl* by_qname(const std::string& qname) const {
    auto it = by_qname_.find(qname);
    return it == by_qname_.end() ? nullptr : it->second;
  }

 private:
  [[nodiscard]] const MemberDecl* find_member(const std::string& cls,
                                              const std::string& name) const;
  [[nodiscard]] std::string member_type(const std::string& cls,
                                        const std::string& member) const;
  [[nodiscard]] std::string rank_of_member(const std::string& cls,
                                           const MemberDecl& member) const;

  const SourceModel* model_;
  RankTable ranks_;
  std::vector<const FuncDecl*> funcs_;
  std::map<std::string, const FuncDecl*> by_qname_;
  std::map<std::string, std::vector<const FuncDecl*>> by_name_;
};

}  // namespace naplet::analyze
