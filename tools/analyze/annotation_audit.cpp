// Pass 2: annotation-coverage audit.
//
//  * mutex-unranked      — a util::Mutex declared with no rank argument
//                          at all (explicit LockRank::kUnranked is the
//                          documented opt-out and is accepted).
//  * guarded-by-unknown  — NAPLET_GUARDED_BY names a mutex that is not a
//                          member of the class (or a known global).
//  * unguarded-member    — a mutable member of a mutex-owning class with
//                          no GUARDED_BY and no internal synchronization
//                          of its own.
#include <algorithm>

#include "resolve.hpp"

namespace naplet::analyze {

namespace {

bool internally_synchronized(const std::string& type_text) {
  static const char* kSelfSynced[] = {
      "Mutex",        "CondVar",      "Event",    "BlockingQueue",
      "WaitableCell", "Counter",      "Gauge",    "Histogram",
      "Registry",     "TraceSink",    "FlightRecorder",
      "atomic",       "thread",       "jthread",  "once_flag",
      "condition_variable",
  };
  return std::any_of(std::begin(kSelfSynced), std::end(kSelfSynced),
                     [&](const char* name) {
                       return type_text.find(name) != std::string::npos;
                     });
}

bool has_rank_anywhere(const ClassDecl& cls, const MemberDecl& m) {
  if (m.mutex_has_ctor_args) return true;
  return cls.ctor_mutex_init.find(m.name) != cls.ctor_mutex_init.end();
}

}  // namespace

void annotation_pass(const SourceModel& model, std::vector<Finding>& out) {
  for (const auto& [name, cls] : model.classes) {
    if (cls.file.rfind("bench/", 0) == 0) continue;
    bool owns_mutex = false;
    for (const MemberDecl& m : cls.members) {
      // A Mutex& / Mutex* member is a borrowed capability (guard classes,
      // samplers), not an owned one: only owned mutexes make the class's
      // state "guarded".
      if (m.is_mutex && !m.is_reference && !m.is_pointer) owns_mutex = true;
    }
    for (const MemberDecl& m : cls.members) {
      if (m.is_mutex && !m.is_reference && !m.is_pointer &&
          !has_rank_anywhere(cls, m)) {
        Finding f;
        f.kind = "mutex-unranked";
        f.file = m.file;
        f.line = m.line;
        f.symbol = name + "::" + m.name;
        f.message =
            "mutex declared without a LockRank; rank it or opt out "
            "explicitly with LockRank::kUnranked";
        out.push_back(std::move(f));
      }
      if (!m.guarded_by.empty()) {
        std::string target;
        for (char ch : m.guarded_by) {
          if (ch != ' ') target.push_back(ch);
        }
        if (target.rfind("this->", 0) == 0) target = target.substr(6);
        bool found = false;
        for (const MemberDecl& other : cls.members) {
          if (other.name == target && other.is_mutex) found = true;
        }
        auto git = model.globals.find(target);
        if (git != model.globals.end() && git->second.is_mutex) found = true;
        if (!found) {
          Finding f;
          f.kind = "guarded-by-unknown";
          f.file = m.file;
          f.line = m.line;
          f.symbol = name + "::" + m.name;
          f.message = "GUARDED_BY(" + target +
                      ") does not name a util::Mutex member of " + name;
          out.push_back(std::move(f));
        }
      }
    }
    if (!owns_mutex) continue;
    for (const MemberDecl& m : cls.members) {
      if (m.is_mutex || m.is_static || m.is_const || m.is_reference) continue;
      if (!m.guarded_by.empty() || m.not_guarded) continue;
      if (internally_synchronized(m.type_text)) continue;
      Finding f;
      f.kind = "unguarded-member";
      f.file = m.file;
      f.line = m.line;
      f.symbol = name + "::" + m.name;
      f.message =
          "mutable member of a mutex-owning class lacks NAPLET_GUARDED_BY "
          "(annotate it, make it atomic/const, or add an analyze-ignore "
          "comment stating the synchronization story)";
      out.push_back(std::move(f));
    }
  }
  // Globals: a namespace-scope util::Mutex must also be ranked (or carry
  // the explicit opt-out).
  for (const auto& [name, g] : model.globals) {
    if (g.file.rfind("bench/", 0) == 0) continue;
    if (!g.is_mutex || g.mutex_has_ctor_args) continue;
    Finding f;
    f.kind = "mutex-unranked";
    f.file = g.file;
    f.line = g.line;
    f.symbol = name;
    f.message =
        "global mutex declared without a LockRank; rank it or opt out "
        "explicitly with LockRank::kUnranked";
    out.push_back(std::move(f));
  }
}

}  // namespace naplet::analyze
