// Flight-recorder tests: ring wrap, disabled recorders, dump decoding,
// the live-recorder directory, and the abort-path guarantee — dumping a
// full ring on abort_session happens outside the session mutex, so blocked
// waiters still wake within the existing <2s bound (no death test needed:
// the abort completes normally).
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/test_realm.hpp"
#include "obs/recorder.hpp"

namespace naplet::obs {
namespace {

using namespace std::chrono_literals;
using naplet::nsock::testing::ConnPair;
using naplet::nsock::testing::make_connection;
using naplet::nsock::testing::SimRealm;

TEST(FlightRecorder, RingWrapKeepsNewestOldestFirst) {
  FlightRecorder rec("wrap", /*capacity=*/8);
  for (std::uint8_t i = 0; i < 20; ++i) {
    rec.record(FlightRecorder::Kind::kNote, i, 0, 0);
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.capacity(), 8u);
  const auto entries = rec.entries();
  ASSERT_EQ(entries.size(), 8u);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, 12u + i);  // oldest surviving ordinal first
    EXPECT_EQ(entries[i].a, 12 + i);
    EXPECT_EQ(entries[i].kind, FlightRecorder::Kind::kNote);
  }
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
  FlightRecorder rec("off", 8);
  rec.set_enabled(false);
  EXPECT_FALSE(rec.enabled());
  rec.record(FlightRecorder::Kind::kNote, 1, 2, 3);
  rec.record_fsm(1, 2, 3);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.entries().empty());
  rec.set_enabled(true);
  rec.record(FlightRecorder::Kind::kNote, 9, 0, 0);
  EXPECT_EQ(rec.recorded(), 1u);
}

TEST(FlightRecorder, DumpDecodesKindsAndLabels) {
  FlightRecorder rec("decode-me", 8);
  rec.record(FlightRecorder::Kind::kNote, 1, 2, 3);
  const std::string dump = rec.dump();
  EXPECT_NE(dump.find("decode-me"), std::string::npos) << dump;
  EXPECT_NE(dump.find("note 1/2/3"), std::string::npos) << dump;

  // dump_all covers every live recorder via the directory.
  FlightRecorder other("also-live", 8);
  other.record(FlightRecorder::Kind::kNote, 4, 5, 6);
  const std::string all = dump_all();
  EXPECT_NE(all.find("decode-me"), std::string::npos);
  EXPECT_NE(all.find("also-live"), std::string::npos);
}

TEST(FlightRecorder, SessionFsmTransitionsAreRecordedAndNamed) {
  SimRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  // The handshake alone drives several FSM arcs and ctrl messages.
  EXPECT_GT(conn.client->recorder().recorded(), 0u);
  const std::string dump = conn.client->recorder().dump();
  // Namers are installed by the core layer, so states decode to names.
  EXPECT_NE(dump.find("ESTABLISHED"), std::string::npos) << dump;
  EXPECT_NE(dump.find("fsm "), std::string::npos) << dump;
}

TEST(FlightRecorder, AbortWithFullRingWakesWaitersQuickly) {
  SimRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  // Saturate the ring well past capacity: the abort-path dump must still
  // be O(capacity) and, critically, run with no session lock held.
  auto& rec = conn.client->recorder();
  for (std::size_t i = 0; i < rec.capacity() * 10; ++i) {
    rec.record(FlightRecorder::Kind::kNote, 7, 7, 7);
  }
  ASSERT_GE(rec.recorded(), rec.capacity() * 10);

  util::Status recv_status = util::OkStatus();
  std::thread reader([&] {
    auto got = conn.client->recv(30s);
    recv_status = got.status();
  });
  std::this_thread::sleep_for(100ms);

  const auto t0 = util::RealClock::instance().now_us();
  realm.ctrl(0).abort(realm.ctrl(0).session_by_id(conn.client->conn_id()));
  reader.join();
  const auto woke_ms = (util::RealClock::instance().now_us() - t0) / 1000;

  EXPECT_EQ(recv_status.code(), util::StatusCode::kAborted)
      << recv_status.to_string();
  EXPECT_LT(woke_ms, 2000);  // woke on the abort, not the 30s deadline
  EXPECT_EQ(conn.client->state(), naplet::nsock::ConnState::kClosed);
}

}  // namespace
}  // namespace naplet::obs
