// Pins the invariant stats.cpp relies on: ControllerStats::to_string()
// renders the registry snapshot generically, so EVERY metric registered by
// the controller appears in the rendered stats by name — a new instrument
// can never be silently missing from the diagnostic output.
#include <gtest/gtest.h>

#include <string>

#include "core/test_realm.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

TEST(MetricsRender, EveryRegisteredMetricAppearsInStats) {
  SimRealm realm(2, /*security=*/true);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);
  // One suspend/resume round so the migration histograms are non-empty.
  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
  ASSERT_TRUE(realm.ctrl(0).resume(conn.client).ok());

  const ControllerStats stats = realm.ctrl(0).stats();
  const std::string rendered = stats.to_string();

  EXPECT_FALSE(stats.metrics.counters.empty());
  EXPECT_FALSE(stats.metrics.gauges.empty());
  EXPECT_FALSE(stats.metrics.histograms.empty());
  for (const auto& c : stats.metrics.counters) {
    EXPECT_NE(rendered.find(c.name), std::string::npos)
        << "counter " << c.name << " missing from:\n" << rendered;
  }
  for (const auto& g : stats.metrics.gauges) {
    EXPECT_NE(rendered.find(g.name), std::string::npos)
        << "gauge " << g.name << " missing from:\n" << rendered;
  }
  for (const auto& h : stats.metrics.histograms) {
    EXPECT_NE(rendered.find(h.name), std::string::npos)
        << "histogram " << h.name << " missing from:\n" << rendered;
  }

  // Spot-check the instruments the migration should have populated.
  const auto* suspend = stats.metrics.histogram("nsock_suspend_latency_us");
  ASSERT_NE(suspend, nullptr);
  EXPECT_GE(suspend->count, 1u);
  const auto* resume = stats.metrics.histogram("nsock_resume_latency_us");
  ASSERT_NE(resume, nullptr);
  EXPECT_GE(resume->count, 1u);
  const auto* connect = stats.metrics.histogram("nsock_connect_total_us");
  ASSERT_NE(connect, nullptr);
  EXPECT_GE(connect->count, 1u);
  const auto* rtt = stats.metrics.histogram("rudp_rtt_us");
  ASSERT_NE(rtt, nullptr);
  EXPECT_GE(rtt->count, 1u);
  EXPECT_GE(stats.metrics.gauge("sessions")->value, 1);
}

}  // namespace
}  // namespace naplet::nsock
