// Migration-trace tests: sink semantics, deterministic DES-clocked traces,
// and trace-id propagation across a real cross-host migration — including
// the overlapped double migration, where each endpoint's migration is its
// own trace stitched from spans emitted on both hosts.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/test_realm.hpp"
#include "obs/trace.hpp"
#include "sim/des.hpp"
#include "sim/model.hpp"

namespace naplet::obs {
namespace {

using namespace std::chrono_literals;
using naplet::nsock::testing::ConnPair;
using naplet::nsock::testing::make_connection;
using naplet::nsock::testing::SimRealm;
using naplet::nsock::testing::span;

/// Every test owns the process-global sink for its duration.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceSink::instance().clear(); }
  void TearDown() override {
    naplet::sim::Simulator::unbind_trace_clock();
    TraceSink::instance().clear();
  }
};

SpanEvent make_event(std::uint64_t id, SpanKind kind,
                     const std::string& host) {
  SpanEvent ev;
  ev.trace_id = id;
  ev.kind = kind;
  ev.conn_id = 7;
  ev.host = host;
  return ev;
}

TEST_F(TraceTest, DropsTraceIdZeroAndGroupsById) {
  auto& sink = TraceSink::instance();
  sink.record(make_event(0, SpanKind::kSuspendSent, "x"));  // no trace open
  EXPECT_TRUE(sink.events().empty());

  sink.record(make_event(1, SpanKind::kSuspendSent, "a"));
  sink.record(make_event(2, SpanKind::kSuspendSent, "b"));
  sink.record(make_event(1, SpanKind::kResumeCommitted, "c"));
  const auto traces = sink.traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].id, 1u);  // ordered by first appearance
  EXPECT_EQ(traces[1].id, 2u);
  EXPECT_EQ(traces[0].spans.size(), 2u);
  EXPECT_TRUE(traces[0].complete());
  EXPECT_FALSE(traces[1].complete());
  const auto completed = sink.completed();
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].id, 1u);
}

TEST_F(TraceTest, DesClockMakesTimestampsDeterministic) {
  // Script the paper's single-migration timeline (§5 cost model) onto the
  // DES engine twice; both runs must produce bit-identical span times.
  const naplet::sim::CostModel model;
  auto run_once = [&] {
    TraceSink::instance().clear();
    naplet::sim::Simulator sim;
    sim.bind_trace_clock();
    const double t_sus = model.params().t_suspend_ms;
    const double t_total = model.single_cost();
    const std::vector<std::pair<double, SpanKind>> timeline = {
        {0.0, SpanKind::kSuspendSent},
        {t_sus * 0.5, SpanKind::kDrainComplete},
        {t_sus, SpanKind::kJournalCommit},
        {t_sus + model.params().t_control_ms, SpanKind::kHandoffAccept},
        {t_total, SpanKind::kReplayDone},
        {t_total, SpanKind::kResumeCommitted},
    };
    for (const auto& [t, kind] : timeline) {
      sim.schedule_at(t, [kind] {
        TraceSink::instance().record(make_event(42, kind, "model"));
      });
    }
    sim.run();
    naplet::sim::Simulator::unbind_trace_clock();
    return TraceSink::instance().events();
  };

  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 6u);
  ASSERT_EQ(second.size(), 6u);
  // Span timestamps are the scheduled virtual times, exactly.
  EXPECT_DOUBLE_EQ(first[0].t_ms, 0.0);
  EXPECT_DOUBLE_EQ(first[1].t_ms, model.params().t_suspend_ms * 0.5);
  EXPECT_DOUBLE_EQ(first[2].t_ms, model.params().t_suspend_ms);
  EXPECT_DOUBLE_EQ(first[5].t_ms, model.single_cost());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].t_ms, second[i].t_ms) << "span " << i;
    EXPECT_EQ(first[i].kind, second[i].kind) << "span " << i;
  }
}

/// The acceptance trace: one real migration over the simulated network
/// exports a complete trace carrying all six span kinds on a single trace
/// id, with spans contributed by all three hosts, and — with the DES clock
/// bound and advanced only between protocol steps — deterministic
/// timestamps per phase.
TEST_F(TraceTest, SingleMigrationExportsCompleteTrace) {
  naplet::sim::Simulator sim;
  sim.bind_trace_clock();

  SimRealm realm(3, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);
  ASSERT_TRUE(conn.server->send(span("in flight"), 1s).ok());

  // Suspend phase at virtual t=10: prepare blocks until the drain and
  // SUS/SUS_ACK exchange finish, so every suspend-side span lands at 10.
  sim.run_until(10.0);
  realm.locations().begin_migration(alice);
  ASSERT_TRUE(realm.ctrl(0).prepare_migration(alice).ok());
  const util::Bytes blob = realm.ctrl(0).export_sessions(alice);
  ASSERT_TRUE(realm.ctrl(2)
                  .import_sessions(alice,
                                   util::ByteSpan(blob.data(), blob.size()))
                  .ok());
  realm.locations().register_agent(alice, realm.server(2).node_info());

  // The passive side's drain runs on node1's dispatch thread, concurrent
  // with the export above; wait for its drain-complete span to land before
  // leaving the suspend phase so its timestamp is pinned to t=10 as well.
  const auto passive_drained = [] {
    for (const SpanEvent& ev : TraceSink::instance().events()) {
      if (ev.kind == SpanKind::kDrainComplete && ev.detail == "passive") {
        return true;
      }
    }
    return false;
  };
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!passive_drained() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(passive_drained());

  // Resume phase at virtual t=230 (suspend + the paper's 220 ms agent
  // migration): handoff, replay, and resume-commit spans all land at 230.
  sim.run_until(230.0);
  ASSERT_TRUE(realm.ctrl(2).complete_migration(alice).ok());

  const auto completed = TraceSink::instance().completed();
  ASSERT_EQ(completed.size(), 1u);
  const Trace& trace = completed[0];
  EXPECT_NE(trace.id, 0u);
  for (SpanKind kind :
       {SpanKind::kSuspendSent, SpanKind::kDrainComplete,
        SpanKind::kJournalCommit, SpanKind::kHandoffAccept,
        SpanKind::kReplayDone, SpanKind::kResumeCommitted}) {
    EXPECT_TRUE(trace.has(kind)) << to_string(kind) << "\n" << trace.to_json();
  }

  std::set<std::string> hosts;
  for (const SpanEvent& ev : trace.spans) {
    EXPECT_EQ(ev.trace_id, trace.id);
    hosts.insert(ev.host);
    // Deterministic DES timestamps: suspend-phase spans at exactly 10,
    // resume-phase spans at exactly 230 — never a wall-clock value.
    const bool suspend_phase = ev.kind == SpanKind::kSuspendSent ||
                               ev.kind == SpanKind::kDrainComplete;
    if (suspend_phase) {
      EXPECT_DOUBLE_EQ(ev.t_ms, 10.0) << to_string(ev.kind);
    } else if (ev.kind != SpanKind::kJournalCommit) {
      EXPECT_DOUBLE_EQ(ev.t_ms, 230.0) << to_string(ev.kind);
    } else {
      EXPECT_TRUE(ev.t_ms == 10.0 || ev.t_ms == 230.0) << ev.t_ms;
    }
  }
  // The origin (node0), the stationary peer (node1: redirector accept,
  // receiver-side replay), and the destination (node2) all contributed.
  EXPECT_EQ(hosts, (std::set<std::string>{"node0", "node1", "node2"}))
      << trace.to_json();
}

/// Overlapped double migration: each endpoint mints its own trace id, the
/// two stories interleave in one sink, and each trace stitches spans from
/// both sides of the connection by id alone.
TEST_F(TraceTest, OverlappedDoubleMigrationYieldsTwoStitchedTraces) {
  SimRealm realm(4, /*security=*/true, /*link_latency=*/25ms);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);
  TraceSink::instance().clear();  // drop the connect-phase noise

  auto move_alice = std::async(std::launch::async, [&] {
    return realm.migrate_pseudo_agent(alice, 0, 2);
  });
  auto move_bob = std::async(std::launch::async, [&] {
    return realm.migrate_pseudo_agent(bob, 1, 3);
  });
  ASSERT_TRUE(move_alice.get().ok());
  ASSERT_TRUE(move_bob.get().ok());

  const std::uint64_t conn_id = conn.client->conn_id();
  auto alice_side = realm.ctrl(2).session_by_id(conn_id);
  auto bob_side = realm.ctrl(3).session_by_id(conn_id);
  ASSERT_TRUE(alice_side && bob_side);
  ASSERT_TRUE(alice_side->wait_state(
      [](naplet::nsock::ConnState s) {
        return s == naplet::nsock::ConnState::kEstablished;
      },
      10s));
  ASSERT_TRUE(bob_side->wait_state(
      [](naplet::nsock::ConnState s) {
        return s == naplet::nsock::ConnState::kEstablished;
      },
      10s));

  // Two distinct migrations -> two distinct traces, one per endpoint's
  // suspend (each minted its own id on its own origin host).
  const auto traces = TraceSink::instance().traces();
  std::vector<const Trace*> migrations;
  for (const Trace& trace : traces) {
    if (trace.has(SpanKind::kSuspendSent)) migrations.push_back(&trace);
  }
  ASSERT_EQ(migrations.size(), 2u) << "traces: " << traces.size();
  EXPECT_NE(migrations[0]->id, migrations[1]->id);

  std::set<std::string> origins;
  int complete = 0;
  for (const Trace* trace : migrations) {
    for (const SpanEvent& ev : trace->spans) {
      EXPECT_EQ(ev.trace_id, trace->id);
      if (ev.kind == SpanKind::kSuspendSent) origins.insert(ev.host);
    }
    // Stitching: each migration's trace carries spans from more than one
    // host — the origin's suspend phase plus the journal commits (and, for
    // the winner, the full resume handshake) on the destination side.
    std::set<std::string> hosts;
    for (const SpanEvent& ev : trace->spans) hosts.insert(ev.host);
    EXPECT_GE(hosts.size(), 2u) << trace->to_json();
    if (trace->complete()) ++complete;
  }
  // The two suspends were initiated on the two original hosts.
  EXPECT_EQ(origins, (std::set<std::string>{"node0", "node1"}));
  // Glare resolution: one RESUME exchange re-establishes both ends, so at
  // least the winner's migration commits a resume on its trace.
  EXPECT_GE(complete, 1);
}

TEST_F(TraceTest, SinkIsBoundedAndCountsDrops) {
  auto& sink = TraceSink::instance();
  const std::size_t overfill = 9000;  // kCapacity is 8192
  for (std::size_t i = 0; i < overfill; ++i) {
    sink.record(make_event(1, SpanKind::kNote, "h"));
  }
  EXPECT_LT(sink.events().size(), overfill);
  EXPECT_GE(sink.dropped(), overfill - sink.events().size());
}

}  // namespace
}  // namespace naplet::obs
