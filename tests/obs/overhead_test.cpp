// Hot-path cost guard for the observability subsystem: recording into an
// unexported registry (Counter::add, Histogram::record) and a DISABLED
// flight recorder must stay within 2x of a raw relaxed atomic op — a few
// nanoseconds. Ratio-based (both sides measured in-process, min of several
// reps) so the guard is stable across machines and sanitizer builds; a >2x
// regression means someone put a lock, an allocation, or a syscall on the
// record path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/clock.hpp"

namespace naplet::obs {
namespace {

constexpr int kIterations = 200'000;
constexpr int kReps = 5;

/// Best-of-reps ns/op for `op` run kIterations times.
template <typename Fn>
double best_ns_per_op(Fn&& op) {
  double best = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::int64_t t0 = util::RealClock::instance().now_us();
    for (int i = 0; i < kIterations; ++i) op(i);
    const std::int64_t t1 = util::RealClock::instance().now_us();
    const double ns =
        static_cast<double>(t1 - t0) * 1000.0 / kIterations;
    if (ns < best) best = ns;
  }
  return best;
}

TEST(ObsOverhead, UnexportedRegistryRecordWithin2xOfRawAtomic) {
  std::atomic<std::uint64_t> raw{0};
  Registry reg;
  Counter& counter = reg.counter("guard");
  Histogram& hist = reg.histogram("guard_h");

  const double base_ns =
      best_ns_per_op([&](int) { raw.fetch_add(1, std::memory_order_relaxed); });
  const double counter_ns = best_ns_per_op([&](int) { counter.add(1); });
  // Histogram::record is three relaxed atomics + a bit_width; budget 2x of
  // three raw ops.
  const double hist_ns = best_ns_per_op(
      [&](int i) { hist.record(static_cast<std::uint64_t>(i)); });

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kReps) * kIterations);
  EXPECT_LE(counter_ns, base_ns * 2.0)
      << "Counter::add " << counter_ns << " ns vs raw " << base_ns << " ns";
  EXPECT_LE(hist_ns, base_ns * 3.0 * 2.0)
      << "Histogram::record " << hist_ns << " ns vs raw " << base_ns << " ns";
}

TEST(ObsOverhead, DisabledRecorderWithin2xOfRawAtomic) {
  std::atomic<std::uint64_t> raw{0};
  FlightRecorder rec("guard", 128);
  rec.set_enabled(false);

  const double base_ns =
      best_ns_per_op([&](int) { raw.fetch_add(1, std::memory_order_relaxed); });
  const double rec_ns = best_ns_per_op(
      [&](int) { rec.record(FlightRecorder::Kind::kNote, 1, 2, 3); });

  EXPECT_EQ(rec.recorded(), 0u);  // the guard measured the disabled path
  EXPECT_LE(rec_ns, base_ns * 2.0)
      << "disabled record " << rec_ns << " ns vs raw " << base_ns << " ns";
}

}  // namespace
}  // namespace naplet::obs
