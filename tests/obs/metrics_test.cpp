// Metrics registry unit tests: log2 histogram bucket boundaries,
// percentile interpolation, the overflow bucket, snapshot merging, and the
// Prometheus/JSON exporters round-tripping every registered metric.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace naplet::obs {
namespace {

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 is exactly the value 0; bucket k holds [2^(k-1), 2^k).
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Histogram::bucket_of(1024), 11);

  for (int k = 1; k < kHistogramBuckets - 1; ++k) {
    const auto lo = static_cast<std::uint64_t>(HistogramSnapshot::bucket_lower(k));
    const auto hi = static_cast<std::uint64_t>(HistogramSnapshot::bucket_upper(k));
    EXPECT_EQ(Histogram::bucket_of(lo), k) << "lower edge of bucket " << k;
    EXPECT_EQ(Histogram::bucket_of(hi - 1), k) << "last value of bucket " << k;
    EXPECT_EQ(Histogram::bucket_of(hi), k + 1) << "upper edge of bucket " << k;
  }
}

TEST(Histogram, OverflowBucketClamps) {
  // Everything at or above 2^(kHistogramBuckets-2) lands in the last bucket.
  const auto edge = std::uint64_t{1} << (kHistogramBuckets - 2);
  EXPECT_EQ(Histogram::bucket_of(edge - 1), kHistogramBuckets - 2);
  EXPECT_EQ(Histogram::bucket_of(edge), kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);

  Registry reg;
  Histogram& h = reg.histogram("overflow");
  h.record(~std::uint64_t{0});
  const Snapshot snapshot = reg.snapshot();
  const auto* snap = snapshot.histogram("overflow");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->buckets[kHistogramBuckets - 1], 1u);
  // The overflow bucket reports its lower edge rather than inventing mass.
  EXPECT_DOUBLE_EQ(snap->percentile(99),
                   HistogramSnapshot::bucket_lower(kHistogramBuckets - 1));
}

TEST(Histogram, CountSumAndMean) {
  Registry reg;
  Histogram& h = reg.histogram("cs");
  for (std::uint64_t v : {0u, 1u, 5u, 10u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  const Snapshot snapshot = reg.snapshot();
  const auto* snap = snapshot.histogram("cs");
  ASSERT_NE(snap, nullptr);
  EXPECT_DOUBLE_EQ(snap->mean(), 4.0);
}

TEST(Histogram, PercentileInterpolation) {
  // 100 samples of the value 6 all land in bucket 3 = [4, 8). The median
  // rank falls halfway through the bucket, so p50 interpolates to the
  // middle of the bucket's value range, and p100 reaches its upper edge.
  HistogramSnapshot snap;
  snap.count = 100;
  snap.buckets[3] = 100;
  EXPECT_DOUBLE_EQ(snap.percentile(50), 6.0);
  EXPECT_DOUBLE_EQ(snap.percentile(100), 8.0);
  // Rank 1 of 100 is 1% of the way into the bucket.
  EXPECT_DOUBLE_EQ(snap.percentile(0), 4.0 + 0.01 * 4.0);

  // Two buckets: 50 samples in [4,8), 50 in [8,16). p25 is inside the
  // first bucket, p75 inside the second.
  HistogramSnapshot two;
  two.count = 100;
  two.buckets[3] = 50;
  two.buckets[4] = 50;
  EXPECT_DOUBLE_EQ(two.percentile(25), 4.0 + (25.0 / 50.0) * 4.0);
  EXPECT_DOUBLE_EQ(two.percentile(75), 8.0 + (25.0 / 50.0) * 8.0);

  // Empty histogram yields 0, not NaN.
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.percentile(50), 0.0);
}

TEST(Histogram, MergeAccumulatesElementWise) {
  Registry reg;
  Histogram& a = reg.histogram("a");
  Histogram& b = reg.histogram("b");
  for (int i = 0; i < 10; ++i) a.record(5);    // bucket 3
  for (int i = 0; i < 30; ++i) b.record(100);  // bucket 7
  Snapshot snap = reg.snapshot();
  HistogramSnapshot merged = *snap.histogram("a");
  merged.merge(*snap.histogram("b"));
  EXPECT_EQ(merged.count, 40u);
  EXPECT_EQ(merged.sum, 10u * 5 + 30u * 100);
  EXPECT_EQ(merged.buckets[3], 10u);
  EXPECT_EQ(merged.buckets[7], 30u);
  // p75 of the merged distribution is inside the [64,128) bucket.
  EXPECT_GE(merged.percentile(75), 64.0);
  EXPECT_LE(merged.percentile(75), 128.0);
}

TEST(Registry, GetOrCreateReturnsStableInstruments) {
  Registry reg;
  Counter& c1 = reg.counter("hits");
  Counter& c2 = reg.counter("hits");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);

  Gauge& g = reg.gauge("depth");
  g.set(-7);
  EXPECT_EQ(reg.gauge("depth").value(), -7);

  Histogram& h = reg.histogram("lat", "bytes");
  h.record(1);
  Snapshot snap = reg.snapshot();
  ASSERT_NE(snap.histogram("lat"), nullptr);
  EXPECT_EQ(snap.histogram("lat")->unit, "bytes");
  EXPECT_EQ(snap.counter("hits")->value, 3u);
  EXPECT_EQ(snap.gauge("depth")->value, -7);
  EXPECT_EQ(snap.counter("nope"), nullptr);
}

/// Both exporters must render every registered metric: a metric that can
/// be recorded but silently missing from an export is the failure mode
/// this subsystem exists to prevent.
TEST(Exporters, EveryRegisteredMetricAppears) {
  Registry reg;
  reg.counter("c_one").add(1);
  reg.counter("c_two");  // registered but never incremented: still exported
  reg.gauge("g_depth").set(42);
  reg.histogram("h_lat").record(100);
  reg.histogram("h_bytes", "bytes");  // empty histogram: still exported

  const Snapshot snap = reg.snapshot();
  const std::string prom = to_prometheus(snap);
  const std::string json = to_json(snap);
  for (const char* name :
       {"c_one", "c_two", "g_depth", "h_lat", "h_bytes"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name << " in:\n" << prom;
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name << " in:\n" << json;
  }

  // Values round-trip, not just names.
  EXPECT_NE(prom.find("c_one 1\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("g_depth 42\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("h_lat_count 1\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("h_lat_sum 100\n"), std::string::npos) << prom;
  EXPECT_NE(json.find("\"c_one\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g_depth\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1,\"sum\":100"), std::string::npos) << json;
}

TEST(Exporters, PrometheusCumulativeBucketsEndAtInf) {
  Registry reg;
  Histogram& h = reg.histogram("b");
  h.record(3);
  h.record(300);
  const std::string prom = to_prometheus(reg.snapshot());
  // The +Inf bucket's cumulative count equals the total count.
  EXPECT_NE(prom.find("b_bucket{le=\"+Inf\"} 2"), std::string::npos) << prom;
}

}  // namespace
}  // namespace naplet::obs
