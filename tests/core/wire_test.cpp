#include "core/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace naplet::nsock {
namespace {

agent::NodeInfo sample_node() {
  agent::NodeInfo node;
  node.server_name = "alpha";
  node.control = {"10.0.0.1", 4001};
  node.redirector = {"10.0.0.1", 4002};
  node.migration = {"10.0.0.1", 4003};
  return node;
}

TEST(CtrlMsg, RoundTripAllFields) {
  CtrlMsg msg;
  msg.type = CtrlType::kConnect;
  msg.conn_id = 0xABCDEF;
  msg.epoch = 11;
  msg.verifier = 42;
  msg.trace_id = 0x1122334455667788ULL;
  msg.sent_seq = 777;
  msg.group_id = 0xDEADBEEF01ULL;
  msg.client_agent = "client-a";
  msg.server_agent = "server-b";
  msg.node = sample_node();
  msg.dh_public = {1, 2, 3};
  msg.token = {4, 5};
  msg.reason = "why";
  msg.mac = {9, 9, 9, 9};

  const util::Bytes encoded = msg.encode();
  auto decoded = CtrlMsg::decode(util::ByteSpan(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->conn_id, msg.conn_id);
  EXPECT_EQ(decoded->epoch, msg.epoch);
  EXPECT_EQ(decoded->verifier, msg.verifier);
  EXPECT_EQ(decoded->trace_id, msg.trace_id);
  EXPECT_EQ(decoded->sent_seq, msg.sent_seq);
  EXPECT_EQ(decoded->group_id, msg.group_id);
  EXPECT_EQ(decoded->client_agent, msg.client_agent);
  EXPECT_EQ(decoded->server_agent, msg.server_agent);
  EXPECT_EQ(decoded->node, msg.node);
  EXPECT_EQ(decoded->dh_public, msg.dh_public);
  EXPECT_EQ(decoded->token, msg.token);
  EXPECT_EQ(decoded->reason, msg.reason);
  EXPECT_EQ(decoded->mac, msg.mac);
}

class CtrlTypeRoundTrip : public ::testing::TestWithParam<CtrlType> {};

TEST_P(CtrlTypeRoundTrip, TypePreserved) {
  CtrlMsg msg;
  msg.type = GetParam();
  msg.conn_id = 1;
  const util::Bytes encoded = msg.encode();
  auto decoded = CtrlMsg::decode(util::ByteSpan(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, GetParam());
  EXPECT_NE(to_string(GetParam()), "?");
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, CtrlTypeRoundTrip,
    ::testing::Values(CtrlType::kConnect, CtrlType::kConnectAck,
                      CtrlType::kConnectReject, CtrlType::kSus,
                      CtrlType::kSusAck, CtrlType::kAckWait, CtrlType::kSusRes,
                      CtrlType::kSusResAck, CtrlType::kCls, CtrlType::kClsAck,
                      CtrlType::kReject));

TEST(CtrlMsg, DecodeRejectsGarbage) {
  const util::Bytes junk = {0xFF, 0x00, 0x13};
  EXPECT_FALSE(CtrlMsg::decode(util::ByteSpan(junk.data(), junk.size())).ok());
  EXPECT_FALSE(CtrlMsg::decode({}).ok());
}

TEST(CtrlMsg, DecodeRejectsTruncation) {
  CtrlMsg msg;
  msg.type = CtrlType::kSus;
  msg.conn_id = 5;
  util::Bytes encoded = msg.encode();
  for (std::size_t cut = 1; cut < encoded.size(); cut += 7) {
    EXPECT_FALSE(
        CtrlMsg::decode(util::ByteSpan(encoded.data(), encoded.size() - cut))
            .ok());
  }
}

TEST(CtrlMsg, DecodeRejectsTrailingBytes) {
  CtrlMsg msg;
  msg.type = CtrlType::kCls;
  util::Bytes encoded = msg.encode();
  encoded.push_back(0);
  EXPECT_FALSE(
      CtrlMsg::decode(util::ByteSpan(encoded.data(), encoded.size())).ok());
}

TEST(CtrlMsg, GroupIdIsMacCovered) {
  // A forged group id must invalidate the tag: the group barrier trusts
  // the id to decide which sessions to pre-freeze.
  CtrlMsg msg;
  msg.type = CtrlType::kSus;
  msg.conn_id = 9;
  msg.group_id = 0;
  const util::Bytes before = msg.mac_payload();
  msg.group_id = 0x7777;
  EXPECT_NE(msg.mac_payload(), before);
}

TEST(CtrlMsg, MacPayloadExcludesMac) {
  CtrlMsg msg;
  msg.type = CtrlType::kSus;
  msg.conn_id = 9;
  const util::Bytes before = msg.mac_payload();
  msg.mac = {1, 2, 3};
  EXPECT_EQ(msg.mac_payload(), before);  // mac not covered by itself
}

TEST(HandoffMsg, RoundTrip) {
  HandoffMsg msg;
  msg.type = HandoffType::kResume;
  msg.conn_id = 123;
  msg.epoch = 6;
  msg.verifier = 456;
  msg.trace_id = 0x99AABBCCDDEEFF00ULL;
  msg.sent_seq = 789;
  msg.recv_seq = 777;
  msg.agent = "mover-agent";
  msg.node = sample_node();
  msg.reason = "r";
  msg.mac = {7};
  const util::Bytes encoded = msg.encode();
  auto decoded =
      HandoffMsg::decode(util::ByteSpan(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->conn_id, msg.conn_id);
  EXPECT_EQ(decoded->epoch, msg.epoch);
  EXPECT_EQ(decoded->verifier, msg.verifier);
  EXPECT_EQ(decoded->trace_id, msg.trace_id);
  EXPECT_EQ(decoded->sent_seq, msg.sent_seq);
  EXPECT_EQ(decoded->recv_seq, msg.recv_seq);
  EXPECT_EQ(decoded->agent, msg.agent);
  EXPECT_EQ(decoded->node, msg.node);
  EXPECT_EQ(decoded->mac, msg.mac);
}

TEST(HandoffMsg, AgentFieldIsMacCovered) {
  HandoffMsg msg;
  msg.type = HandoffType::kResume;
  msg.agent = "honest";
  const util::Bytes before = msg.mac_payload();
  msg.agent = "impostor";
  EXPECT_NE(msg.mac_payload(), before);
}

// Property sweep: random byte strings must never crash the decoders and
// must be rejected or round-trip cleanly.
class DecoderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzz, NoCrashOnGarbage) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337);
  for (int iter = 0; iter < 200; ++iter) {
    util::Bytes junk(rng.next_below(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)CtrlMsg::decode(util::ByteSpan(junk.data(), junk.size()));
    (void)HandoffMsg::decode(util::ByteSpan(junk.data(), junk.size()));
    (void)DataFrame::decode(util::ByteSpan(junk.data(), junk.size()));
  }
}

TEST_P(DecoderFuzz, BitFlipsNeverRoundTripSilently) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  CtrlMsg msg;
  msg.type = CtrlType::kSus;
  msg.conn_id = 42;
  msg.sent_seq = 9;
  msg.client_agent = "sender";
  const util::Bytes clean = msg.encode();
  for (int iter = 0; iter < 100; ++iter) {
    util::Bytes mutated = clean;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    auto decoded = CtrlMsg::decode(util::ByteSpan(mutated.data(),
                                                  mutated.size()));
    if (!decoded.ok()) continue;  // rejected: fine
    // Accepted mutations must differ from the original in some field —
    // i.e. the decode is honest, not silently corrupting other fields.
    const bool differs = decoded->type != msg.type ||
                         decoded->conn_id != msg.conn_id ||
                         decoded->epoch != msg.epoch ||
                         decoded->trace_id != msg.trace_id ||
                         decoded->sent_seq != msg.sent_seq ||
                         decoded->group_id != msg.group_id ||
                         decoded->client_agent != msg.client_agent ||
                         decoded->mac != msg.mac ||
                         decoded->verifier != msg.verifier ||
                         !decoded->reason.empty() ||
                         !decoded->server_agent.empty() ||
                         decoded->node != msg.node ||
                         decoded->dh_public != msg.dh_public ||
                         decoded->token != msg.token;
    EXPECT_TRUE(differs) << "byte " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Range(1, 6));

TEST(HandoffMsg, DecodeRejectsBadType) {
  HandoffMsg msg;
  msg.type = HandoffType::kAttach;
  util::Bytes encoded = msg.encode();
  encoded[0] = 0xEE;
  EXPECT_FALSE(
      HandoffMsg::decode(util::ByteSpan(encoded.data(), encoded.size())).ok());
}

TEST(Mac, EmptyKeyMeansNoSecurity) {
  const util::Bytes payload = {1, 2, 3};
  EXPECT_TRUE(compute_mac({}, util::ByteSpan(payload.data(), payload.size()))
                  .empty());
  // With no key, verification accepts anything (the w/o-security baseline).
  EXPECT_TRUE(verify_mac({}, util::ByteSpan(payload.data(), payload.size()),
                         {}));
  const util::Bytes junk_tag = {9};
  EXPECT_TRUE(verify_mac({}, util::ByteSpan(payload.data(), payload.size()),
                         util::ByteSpan(junk_tag.data(), junk_tag.size())));
}

TEST(Mac, KeyedVerification) {
  const util::Bytes key(32, 0x11);
  const util::Bytes payload = {1, 2, 3};
  const util::Bytes tag = compute_mac(
      util::ByteSpan(key.data(), key.size()),
      util::ByteSpan(payload.data(), payload.size()));
  EXPECT_EQ(tag.size(), 32u);
  EXPECT_TRUE(verify_mac(util::ByteSpan(key.data(), key.size()),
                         util::ByteSpan(payload.data(), payload.size()),
                         util::ByteSpan(tag.data(), tag.size())));
  // Tamper with the payload.
  util::Bytes tampered = payload;
  tampered[0] ^= 1;
  EXPECT_FALSE(verify_mac(util::ByteSpan(key.data(), key.size()),
                          util::ByteSpan(tampered.data(), tampered.size()),
                          util::ByteSpan(tag.data(), tag.size())));
  // Missing tag must fail under a keyed session.
  EXPECT_FALSE(verify_mac(util::ByteSpan(key.data(), key.size()),
                          util::ByteSpan(payload.data(), payload.size()), {}));
}

TEST(DataFrame, RoundTrip) {
  DataFrame frame{42, {1, 2, 3}};
  const util::Bytes encoded = frame.encode();
  auto decoded =
      DataFrame::decode(util::ByteSpan(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->body, frame.body);
}

TEST(DataFrame, EmptyBody) {
  DataFrame frame{7, {}};
  const util::Bytes encoded = frame.encode();
  auto decoded =
      DataFrame::decode(util::ByteSpan(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->body.empty());
}

TEST(DataFrame, TruncatedRejected) {
  const util::Bytes junk = {1, 2, 3};
  EXPECT_FALSE(DataFrame::decode(util::ByteSpan(junk.data(), junk.size())).ok());
}

}  // namespace
}  // namespace naplet::nsock
