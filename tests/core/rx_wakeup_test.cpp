// Regression tests for the receive-side lost-wakeup window: a reader
// blocked in Session::recv with no usable data socket must be woken
// immediately by attach_stream / close_stream, not sleep out its full
// 100 ms poll slice. The fix is the rx-epoch protocol: every rx event
// bumps rx_epoch_ under buf_mu_ before notifying rx_cv_, and waiters
// snapshot the epoch before probing the state that made them wait.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/session.hpp"
#include "net/sim.hpp"

namespace naplet::nsock {
namespace {

using namespace std::chrono_literals;

util::ByteSpan span(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

/// Like session_test's SessionPair, but the reader side's stream is left
/// detached so recv() parks in the event-driven wait.
struct DetachedPair {
  net::SimNet net;
  SessionPtr reader;   // no stream attached yet
  SessionPtr writer;   // stream attached
  std::shared_ptr<net::Stream> reader_stream;  // attach later

  DetachedPair() {
    auto node_a = net.add_node("a");
    auto node_b = net.add_node("b");
    auto listener = node_b->listen(1);
    EXPECT_TRUE(listener.ok());
    auto client = node_a->connect(net::Endpoint{"b", 1}, 1s);
    EXPECT_TRUE(client.ok());
    auto server = (*listener)->accept(1s);
    EXPECT_TRUE(server.ok());

    reader = std::make_shared<Session>(1, 2, true, agent::AgentId("low"),
                                       agent::AgentId("high"));
    writer = std::make_shared<Session>(1, 2, false, agent::AgentId("high"),
                                       agent::AgentId("low"));
    reader_stream = std::shared_ptr<net::Stream>(std::move(*client));
    writer->attach_stream(std::shared_ptr<net::Stream>(std::move(*server)));

    EXPECT_TRUE(reader->advance(ConnEvent::kAppConnect).ok());
    EXPECT_TRUE(reader->advance(ConnEvent::kRecvConnectAck).ok());
    EXPECT_TRUE(writer->advance(ConnEvent::kAppListen).ok());
    EXPECT_TRUE(writer->advance(ConnEvent::kRecvConnect).ok());
    EXPECT_TRUE(writer->advance(ConnEvent::kRecvAttach).ok());
  }
};

TEST(RxWakeup, AttachStreamWakesBlockedReader) {
  DetachedPair pair;
  // Data is already in flight before the reader's stream exists.
  ASSERT_TRUE(pair.writer->send(span("hello"), 1s).ok());

  std::atomic<std::int64_t> recv_done_us{0};
  std::atomic<bool> got_frame{false};
  std::thread t([&] {
    auto r = pair.reader->recv(3s);
    recv_done_us.store(util::RealClock::instance().now_us());
    if (r.ok()) got_frame.store(r->body.size() == 5);
  });

  // Let the reader settle into wait_rx_event (no stream: pump fails fast,
  // so it is either waiting or between snapshot and wait — both windows
  // the epoch protocol must cover).
  std::this_thread::sleep_for(320ms);
  const std::int64_t attach_us = util::RealClock::instance().now_us();
  pair.reader->attach_stream(pair.reader_stream);
  t.join();

  EXPECT_TRUE(got_frame.load());
  // Without the attach-side wakeup the reader sleeps out the remainder of
  // its 100 ms slice; with it, it wakes within a few ms.
  EXPECT_LT(recv_done_us.load() - attach_us, 80'000)
      << "reader slept through the attach_stream event";
  EXPECT_GE(pair.reader->data_stats().recv_wakeups, 1u)
      << "the attach wakeup was not delivered through rx_cv_";
}

TEST(RxWakeup, CloseStreamWakesBlockedReaderIntoAbort) {
  DetachedPair pair;

  std::atomic<std::int64_t> recv_done_us{0};
  std::atomic<bool> aborted{false};
  std::thread t([&] {
    auto r = pair.reader->recv(3s);
    recv_done_us.store(util::RealClock::instance().now_us());
    if (!r.ok()) aborted.store(r.status().code() == util::StatusCode::kAborted);
  });

  std::this_thread::sleep_for(320ms);
  // Abort-style teardown: state first, then the stream event that carries
  // the wakeup (the controller's abort_session does the same dance).
  ASSERT_TRUE(pair.reader->advance(ConnEvent::kAppClose).ok());
  ASSERT_TRUE(pair.reader->advance(ConnEvent::kTimeout).ok());
  const std::int64_t close_us = util::RealClock::instance().now_us();
  pair.reader->close_stream();
  t.join();

  EXPECT_TRUE(aborted.load());
  EXPECT_LT(recv_done_us.load() - close_us, 80'000)
      << "reader slept through the close_stream event";
}

}  // namespace
}  // namespace naplet::nsock
