#include "core/state.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace naplet::nsock {
namespace {

using S = ConnState;
using E = ConnEvent;

std::vector<S> all_states() {
  std::vector<S> out;
  for (int i = 0; i < kConnStateCount; ++i) {
    out.push_back(static_cast<S>(i));
  }
  return out;
}

std::vector<E> all_events() {
  std::vector<E> out;
  for (int i = 0; i < kConnEventCount; ++i) {
    out.push_back(static_cast<E>(i));
  }
  return out;
}

TEST(StateMachine, FourteenStatesAllNamed) {
  std::set<std::string_view> names;
  for (S s : all_states()) {
    const std::string_view name = to_string(s);
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 14u);  // paper Table 1
}

TEST(StateMachine, AllEventsNamed) {
  std::set<std::string_view> names;
  for (E e : all_events()) {
    EXPECT_NE(to_string(e), "?");
    names.insert(to_string(e));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kConnEventCount));
}

// --- The paper's nominal paths (Figure 3) ---

TEST(StateMachine, ClientOpenPath) {
  // CLOSED --app:connect--> CONNECT_SENT --recv ACK+ID--> ESTABLISHED
  EXPECT_EQ(transition(S::kClosed, E::kAppConnect), S::kConnectSent);
  EXPECT_EQ(transition(S::kConnectSent, E::kRecvConnectAck), S::kEstablished);
}

TEST(StateMachine, ServerOpenPath) {
  // CLOSED --listen--> LISTEN --recv CONNECT--> CONNECT_ACKED --recv ID-->
  // ESTABLISHED
  EXPECT_EQ(transition(S::kClosed, E::kAppListen), S::kListen);
  EXPECT_EQ(transition(S::kListen, E::kRecvConnect), S::kConnectAcked);
  EXPECT_EQ(transition(S::kConnectAcked, E::kRecvAttach), S::kEstablished);
}

TEST(StateMachine, ActiveSuspendPath) {
  EXPECT_EQ(transition(S::kEstablished, E::kAppSuspend), S::kSusSent);
  EXPECT_EQ(transition(S::kSusSent, E::kRecvSusAck), S::kSuspended);
}

TEST(StateMachine, PassiveSuspendPath) {
  EXPECT_EQ(transition(S::kEstablished, E::kRecvSus), S::kSusAcked);
  EXPECT_EQ(transition(S::kSusAcked, E::kExecSuspended), S::kSuspended);
}

TEST(StateMachine, ActiveResumePath) {
  EXPECT_EQ(transition(S::kSuspended, E::kAppResume), S::kResSent);
  EXPECT_EQ(transition(S::kResSent, E::kRecvResumeOk), S::kEstablished);
}

TEST(StateMachine, PassiveResumePath) {
  EXPECT_EQ(transition(S::kSuspended, E::kRecvResume), S::kResAcked);
  EXPECT_EQ(transition(S::kResAcked, E::kExecResumed), S::kEstablished);
}

TEST(StateMachine, ActiveClosePathFromEstablished) {
  EXPECT_EQ(transition(S::kEstablished, E::kAppClose), S::kCloseSent);
  EXPECT_EQ(transition(S::kCloseSent, E::kRecvClsAck), S::kClosed);
}

TEST(StateMachine, PassiveClosePath) {
  EXPECT_EQ(transition(S::kEstablished, E::kRecvCls), S::kCloseAcked);
  EXPECT_EQ(transition(S::kCloseAcked, E::kExecClosed), S::kClosed);
}

TEST(StateMachine, CloseFromSuspended) {
  // Paper §2.2: close is legal from ESTABLISHED or SUSPENDED.
  EXPECT_EQ(transition(S::kSuspended, E::kAppClose), S::kCloseSent);
  EXPECT_EQ(transition(S::kSuspended, E::kRecvCls), S::kCloseAcked);
}

// --- Concurrent-migration arcs (paper §3.1) ---

TEST(StateMachine, OverlappedLowPriorityPath) {
  // SUS_SENT --recv ACK_WAIT--> SUSPEND_WAIT --recv SUS_RES--> SUSPENDED
  EXPECT_EQ(transition(S::kSusSent, E::kRecvAckWait), S::kSuspendWait);
  EXPECT_EQ(transition(S::kSuspendWait, E::kRecvSusRes), S::kSuspended);
}

TEST(StateMachine, OverlappedCrossingSusHolds) {
  // Both sides in SUS_SENT when the peer's SUS arrives: state holds, the
  // action (ACK vs ACK_WAIT) is decided by priority outside the FSM.
  EXPECT_EQ(transition(S::kSusSent, E::kRecvSus), S::kSusSent);
}

TEST(StateMachine, NonOverlappedParkedSuspend) {
  // SUSPENDED --app:suspend--> SUSPEND_WAIT (parked);
  // peer's RESUME releases it (we answer RESUME_WAIT): -> SUSPENDED.
  EXPECT_EQ(transition(S::kSuspended, E::kAppSuspend), S::kSuspendWait);
  EXPECT_EQ(transition(S::kSuspendWait, E::kRecvResume), S::kSuspended);
}

TEST(StateMachine, ResumeWaitPath) {
  // RES_SENT --recv RESUME_WAIT--> RESUME_WAIT --recv RESUME--> RES_ACKED
  EXPECT_EQ(transition(S::kResSent, E::kRecvResumeWait), S::kResumeWait);
  EXPECT_EQ(transition(S::kResumeWait, E::kRecvResume), S::kResAcked);
}

TEST(StateMachine, ResumeGlareAccepted) {
  EXPECT_EQ(transition(S::kResSent, E::kRecvResume), S::kResAcked);
}

TEST(StateMachine, ParkedResumeSupersededByPeerSuspension) {
  // While we wait in RESUME_WAIT for the peer's reconnect, the peer may
  // start another migration round instead: its SUS converts our parked
  // resume into a passive suspension.
  EXPECT_EQ(transition(S::kResumeWait, E::kRecvSus), S::kSuspended);
  EXPECT_EQ(transition(S::kResumeWait, E::kTimeout), S::kSuspended);
}

// --- Robustness arcs ---

TEST(StateMachine, Timeouts) {
  EXPECT_EQ(transition(S::kConnectSent, E::kTimeout), S::kClosed);
  EXPECT_EQ(transition(S::kConnectAcked, E::kTimeout), S::kClosed);
  EXPECT_EQ(transition(S::kSusSent, E::kTimeout), S::kSuspended);
  EXPECT_EQ(transition(S::kResSent, E::kTimeout), S::kSuspended);
  EXPECT_EQ(transition(S::kCloseSent, E::kTimeout), S::kClosed);
}

TEST(StateMachine, DuplicateSusReAcked) {
  EXPECT_EQ(transition(S::kSuspended, E::kRecvSus), S::kSuspended);
}

TEST(StateMachine, CloseIdempotentFromClosed) {
  EXPECT_EQ(transition(S::kClosed, E::kAppClose), S::kClosed);
}

// --- Negative space: transitions the protocol must NOT allow ---

TEST(StateMachine, NoDataStateSkipping) {
  // Cannot resume what was never suspended.
  EXPECT_FALSE(transition(S::kEstablished, E::kAppResume).has_value());
  // Cannot suspend before establishment.
  EXPECT_FALSE(transition(S::kConnectSent, E::kAppSuspend).has_value());
  EXPECT_FALSE(transition(S::kClosed, E::kAppSuspend).has_value());
  // Cannot connect twice.
  EXPECT_FALSE(transition(S::kEstablished, E::kAppConnect).has_value());
  // Cannot re-listen while established.
  EXPECT_FALSE(transition(S::kEstablished, E::kAppListen).has_value());
  // A closed connection stays closed.
  EXPECT_FALSE(transition(S::kClosed, E::kRecvSus).has_value());
  EXPECT_FALSE(transition(S::kClosed, E::kAppResume).has_value());
}

TEST(StateMachine, EstablishedRequiresHandshake) {
  for (S s : all_states()) {
    for (E e : all_events()) {
      auto next = transition(s, e);
      if (!next || *next != S::kEstablished) continue;
      // Only these arcs may enter ESTABLISHED: the two connect handshakes,
      // the two resume completions, and the suspend rollbacks (an
      // unanswered SUS over a still-healthy stream — or an orphaned group
      // pre-freeze — returns the connection to service).
      const bool legal =
          (s == S::kConnectSent && e == E::kRecvConnectAck) ||
          (s == S::kConnectAcked && e == E::kRecvAttach) ||
          (s == S::kResSent && e == E::kRecvResumeOk) ||
          (s == S::kResAcked && e == E::kExecResumed) ||
          (s == S::kSusSent && e == E::kSuspendAbort) ||
          (s == S::kSusAcked && e == E::kSuspendAbort);
      EXPECT_TRUE(legal) << to_string(s) << " --" << to_string(e) << "-->";
    }
  }
}

TEST(StateMachine, ClosedIsAbsorbing) {
  // From CLOSED, the only exits are app listen/connect.
  for (E e : all_events()) {
    auto next = transition(S::kClosed, e);
    if (!next) continue;
    const bool legal = (e == E::kAppListen && *next == S::kListen) ||
                       (e == E::kAppConnect && *next == S::kConnectSent) ||
                       (e == E::kAppClose && *next == S::kClosed);
    EXPECT_TRUE(legal) << to_string(e);
  }
}

TEST(StateMachine, EveryLiveStateHasAnExit) {
  for (S s : all_states()) {
    if (s == S::kClosed) continue;
    bool has_exit = false;
    for (E e : all_events()) {
      auto next = transition(s, e);
      if (next && *next != s) {
        has_exit = true;
        break;
      }
    }
    EXPECT_TRUE(has_exit) << to_string(s);
  }
}

TEST(StateMachine, NoTransitionOutOfRangeStates) {
  // Defensive: every (state, event) pair either maps to a valid state or
  // to nullopt — never to something outside the enum.
  for (S s : all_states()) {
    for (E e : all_events()) {
      auto next = transition(s, e);
      if (next) {
        EXPECT_GE(static_cast<int>(*next), 0);
        EXPECT_LT(static_cast<int>(*next), kConnStateCount);
      }
    }
  }
}

// Property: along ANY event walk, applying only legal transitions, the
// machine stays within the 14 states, and the only way back to a
// transfer-capable state after suspension passes through a resume arc.
class FsmRandomWalk : public ::testing::TestWithParam<int> {};

TEST_P(FsmRandomWalk, StaysConsistent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  for (int run = 0; run < 200; ++run) {
    S state = S::kClosed;
    bool was_suspended = false;
    for (int step = 0; step < 60; ++step) {
      const E event = static_cast<E>(rng.next_below(kConnEventCount));
      auto next = transition(state, event);
      if (!next) continue;  // illegal in this state: rejected, no change
      // Entering ESTABLISHED after a suspension must use a resume arc.
      if (*next == S::kEstablished && was_suspended) {
        EXPECT_TRUE(event == E::kRecvResumeOk || event == E::kExecResumed)
            << to_string(state) << " --" << to_string(event) << "-->";
      }
      if (*next == S::kSuspended) was_suspended = true;
      if (*next == S::kEstablished || *next == S::kClosed) {
        was_suspended = false;
      }
      EXPECT_GE(static_cast<int>(*next), 0);
      EXPECT_LT(static_cast<int>(*next), kConnStateCount);
      state = *next;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsmRandomWalk, ::testing::Range(1, 9));

TEST(StateMachine, HelperPredicates) {
  EXPECT_TRUE(can_transfer(S::kEstablished));
  EXPECT_FALSE(can_transfer(S::kSuspended));
  EXPECT_FALSE(can_transfer(S::kSusSent));
  EXPECT_TRUE(is_live(S::kSuspended));
  EXPECT_TRUE(is_live(S::kEstablished));
  EXPECT_FALSE(is_live(S::kClosed));
  EXPECT_FALSE(is_live(S::kCloseSent));
  EXPECT_FALSE(is_live(S::kCloseAcked));
}

}  // namespace
}  // namespace naplet::nsock
