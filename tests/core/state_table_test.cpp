// Exhaustive (state, event) coverage of the connection FSM (paper Table 1 /
// Figure 3). Three layers:
//
//  * a golden table of every legal arc, checked cell-by-cell against
//    transition() over the full 14x23 grid — any added, removed, or
//    redirected arc fails here by name;
//  * a reachability sweep proving every state is reachable from kClosed
//    through legal arcs alone;
//  * Session::advance agreement: for every reachable state and every event,
//    advance() applies legal arcs and returns kProtocolError with the state
//    unchanged for illegal ones.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <queue>
#include <vector>

#include "core/session.hpp"
#include "core/state.hpp"

namespace naplet::nsock {
namespace {

using S = ConnState;
using E = ConnEvent;

std::vector<S> all_states() {
  std::vector<S> out;
  for (int i = 0; i < kConnStateCount; ++i) out.push_back(static_cast<S>(i));
  return out;
}

std::vector<E> all_events() {
  std::vector<E> out;
  for (int i = 0; i < kConnEventCount; ++i) out.push_back(static_cast<E>(i));
  return out;
}

/// Every legal arc, transcribed from the protocol description — not from
/// the implementation. 41 arcs; all other (state, event) pairs are illegal.
const std::map<std::pair<S, E>, S>& golden_table() {
  static const std::map<std::pair<S, E>, S> table = {
      // CLOSED
      {{S::kClosed, E::kAppListen}, S::kListen},
      {{S::kClosed, E::kAppConnect}, S::kConnectSent},
      {{S::kClosed, E::kAppClose}, S::kClosed},  // idempotent close
      // LISTEN
      {{S::kListen, E::kRecvConnect}, S::kConnectAcked},
      {{S::kListen, E::kAppClose}, S::kClosed},
      // CONNECT_SENT
      {{S::kConnectSent, E::kRecvConnectAck}, S::kEstablished},
      {{S::kConnectSent, E::kRecvReject}, S::kClosed},
      {{S::kConnectSent, E::kTimeout}, S::kClosed},
      // CONNECT_ACKED
      {{S::kConnectAcked, E::kRecvAttach}, S::kEstablished},
      {{S::kConnectAcked, E::kTimeout}, S::kClosed},
      // ESTABLISHED
      {{S::kEstablished, E::kAppSuspend}, S::kSusSent},
      {{S::kEstablished, E::kRecvSus}, S::kSusAcked},
      {{S::kEstablished, E::kAppClose}, S::kCloseSent},
      {{S::kEstablished, E::kRecvCls}, S::kCloseAcked},
      // SUS_SENT
      {{S::kSusSent, E::kRecvSusAck}, S::kSuspended},
      {{S::kSusSent, E::kRecvAckWait}, S::kSuspendWait},
      {{S::kSusSent, E::kRecvSus}, S::kSusSent},  // overlapped migration
      {{S::kSusSent, E::kTimeout}, S::kSuspended},
      {{S::kSusSent, E::kSuspendAbort}, S::kEstablished},  // rollback
      // SUS_ACKED
      {{S::kSusAcked, E::kExecSuspended}, S::kSuspended},
      {{S::kSusAcked, E::kSuspendAbort}, S::kEstablished},  // group pre-freeze
                                                            // revert
      // SUSPEND_WAIT
      {{S::kSuspendWait, E::kRecvSusRes}, S::kSuspended},
      {{S::kSuspendWait, E::kRecvResume}, S::kSuspended},
      // SUSPENDED
      {{S::kSuspended, E::kAppResume}, S::kResSent},
      {{S::kSuspended, E::kRecvResume}, S::kResAcked},
      {{S::kSuspended, E::kAppSuspend}, S::kSuspendWait},  // §3.2 park
      {{S::kSuspended, E::kRecvSus}, S::kSuspended},       // duplicate SUS
      {{S::kSuspended, E::kAppClose}, S::kCloseSent},
      {{S::kSuspended, E::kRecvCls}, S::kCloseAcked},
      {{S::kSuspended, E::kRecvSusRes}, S::kSuspended},  // duplicate release
      // RES_SENT
      {{S::kResSent, E::kRecvResumeOk}, S::kEstablished},
      {{S::kResSent, E::kRecvResumeWait}, S::kResumeWait},
      {{S::kResSent, E::kRecvResume}, S::kResAcked},  // resume glare
      {{S::kResSent, E::kTimeout}, S::kSuspended},
      // RES_ACKED
      {{S::kResAcked, E::kExecResumed}, S::kEstablished},
      // RESUME_WAIT
      {{S::kResumeWait, E::kRecvResume}, S::kResAcked},
      {{S::kResumeWait, E::kRecvSus}, S::kSuspended},
      {{S::kResumeWait, E::kTimeout}, S::kSuspended},
      // CLOSE_SENT
      {{S::kCloseSent, E::kRecvClsAck}, S::kClosed},
      {{S::kCloseSent, E::kTimeout}, S::kClosed},
      // CLOSE_ACKED
      {{S::kCloseAcked, E::kExecClosed}, S::kClosed},
  };
  return table;
}

TEST(StateTable, EveryCellMatchesGoldenTable) {
  const auto& golden = golden_table();
  ASSERT_EQ(golden.size(), 41u);
  int legal = 0;
  for (S s : all_states()) {
    for (E e : all_events()) {
      const std::optional<S> got = transition(s, e);
      const auto it = golden.find({s, e});
      if (it == golden.end()) {
        EXPECT_FALSE(got.has_value())
            << to_string(s) << " on " << to_string(e)
            << " should be illegal but transitions to "
            << (got ? to_string(*got) : "?");
      } else {
        ASSERT_TRUE(got.has_value())
            << to_string(s) << " on " << to_string(e) << " should be legal";
        EXPECT_EQ(*got, it->second)
            << to_string(s) << " on " << to_string(e) << " goes to "
            << to_string(*got) << ", expected " << to_string(it->second);
        ++legal;
      }
    }
  }
  EXPECT_EQ(legal, 41);
}

/// Shortest legal event path from kClosed to each state.
std::map<S, std::vector<E>> reach_paths() {
  std::map<S, std::vector<E>> paths;
  paths[S::kClosed] = {};
  std::queue<S> frontier;
  frontier.push(S::kClosed);
  while (!frontier.empty()) {
    const S s = frontier.front();
    frontier.pop();
    for (E e : all_events()) {
      const auto next = transition(s, e);
      if (!next || paths.contains(*next)) continue;
      auto path = paths[s];
      path.push_back(e);
      paths[*next] = std::move(path);
      frontier.push(*next);
    }
  }
  return paths;
}

TEST(StateTable, EveryStateReachableFromClosed) {
  const auto paths = reach_paths();
  for (S s : all_states()) {
    EXPECT_TRUE(paths.contains(s)) << to_string(s) << " is unreachable";
  }
}

TEST(StateTable, SessionAdvanceAgreesOnEveryCell) {
  const auto paths = reach_paths();
  for (S s : all_states()) {
    ASSERT_TRUE(paths.contains(s));
    for (E e : all_events()) {
      // Fresh session driven to `s` along a legal path, then hit with `e`.
      Session session(1, 1, true, agent::AgentId("a"), agent::AgentId("b"));
      for (E step : paths.at(s)) {
        ASSERT_TRUE(session.advance(step).ok())
            << "setup path broke at " << to_string(step);
      }
      ASSERT_EQ(session.state(), s);

      const auto expected = transition(s, e);
      const util::Status st = session.advance(e);
      if (expected) {
        EXPECT_TRUE(st.ok()) << to_string(s) << " on " << to_string(e) << ": "
                             << st.to_string();
        EXPECT_EQ(session.state(), *expected);
      } else {
        EXPECT_EQ(st.code(), util::StatusCode::kProtocolError)
            << to_string(s) << " on " << to_string(e);
        EXPECT_EQ(session.state(), s) << "illegal event mutated the state";
      }
    }
  }
}

}  // namespace
}  // namespace naplet::nsock
