// The paper's reliability demonstration (Figure 7): a stationary sender
// pumps counter messages while the receiver migrates repeatedly; every
// message must arrive exactly once and in order, with the in-flight ones
// replayed from the migrated NapletInputStream buffer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/test_realm.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

TEST(Reliability, CountersInOrderAcrossThreeMigrations) {
  SimRealm realm(4, /*security=*/false);
  auto sender = realm.pseudo_agent("sender", 0);
  auto mobile = realm.pseudo_agent("mobile", 1);
  ConnPair conn = make_connection(realm, sender, 0, mobile, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  constexpr int kTotal = 120;
  std::atomic<bool> stop_sending{false};
  std::thread pump([&] {
    for (int i = 0; i < kTotal && !stop_sending.load(); ++i) {
      util::BytesWriter w;
      w.u32(static_cast<std::uint32_t>(i));
      // Generous timeout: sends block during suspensions.
      ASSERT_TRUE(conn.client
                      ->send(util::ByteSpan(w.data().data(), w.data().size()),
                             30s)
                      .ok())
          << "counter " << i;
      std::this_thread::sleep_for(1ms);  // paper: one message per ms
    }
  });

  int receiver_node = 1;
  std::uint32_t expected = 0;
  int buffered_replays = 0;

  auto drain_some = [&](int count) {
    SessionPtr side = realm.ctrl(receiver_node).session_by_id(conn_id);
    ASSERT_TRUE(side);
    for (int i = 0; i < count; ++i) {
      auto got = side->recv(10s);
      ASSERT_TRUE(got.ok()) << "at counter " << expected << ": "
                            << got.status().to_string();
      util::BytesReader r(util::ByteSpan(got->body.data(), got->body.size()));
      const std::uint32_t counter = *r.u32();
      ASSERT_EQ(counter, expected) << "out-of-order or lost message";
      ++expected;
      if (got->from_buffer) ++buffered_replays;
    }
  };

  // Read a burst, let the pump run ahead (so data is genuinely in flight),
  // then migrate — three hops like the paper's trace.
  const int hops[] = {2, 3, 1};
  for (int hop : hops) {
    drain_some(20);
    std::this_thread::sleep_for(15ms);  // unread messages accumulate
    ASSERT_TRUE(realm.migrate_pseudo_agent(mobile, receiver_node, hop).ok());
    receiver_node = hop;
  }
  drain_some(kTotal - static_cast<int>(expected));

  pump.join();
  EXPECT_EQ(expected, static_cast<std::uint32_t>(kTotal));
  // With a live pump, at least one hop should have caught data in flight.
  EXPECT_GT(buffered_replays, 0)
      << "no message was ever buffered across a migration";
  // Nothing extra: exactly-once.
  SessionPtr side = realm.ctrl(receiver_node).session_by_id(conn_id);
  ASSERT_TRUE(side);
  EXPECT_FALSE(side->recv(100ms).ok());
}

TEST(Reliability, ReceiverDrainsWhileSenderMigrates) {
  // Mirror image: the *sender* migrates mid-burst; no message may be lost
  // even though the sender's socket closes right after a burst.
  SimRealm realm(3, /*security=*/false);
  auto mobile = realm.pseudo_agent("msender", 0);
  auto fixed = realm.pseudo_agent("receiver", 1);
  ConnPair conn = make_connection(realm, mobile, 0, fixed, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  int sender_node = 0;
  std::uint32_t counter = 0;
  for (int hop = 0; hop < 3; ++hop) {
    SessionPtr side = realm.ctrl(sender_node).session_by_id(conn_id);
    ASSERT_TRUE(side);
    for (int i = 0; i < 10; ++i) {
      util::BytesWriter w;
      w.u32(counter++);
      ASSERT_TRUE(
          side->send(util::ByteSpan(w.data().data(), w.data().size()), 5s)
              .ok());
    }
    const int next = sender_node == 0 ? 2 : (sender_node == 2 ? 0 : 2);
    ASSERT_TRUE(realm.migrate_pseudo_agent(mobile, sender_node, next).ok());
    sender_node = next;
  }

  for (std::uint32_t i = 0; i < counter; ++i) {
    auto got = conn.server->recv(5s);
    ASSERT_TRUE(got.ok()) << "message " << i;
    util::BytesReader r(util::ByteSpan(got->body.data(), got->body.size()));
    EXPECT_EQ(*r.u32(), i);
  }
  EXPECT_FALSE(conn.server->recv(100ms).ok());
}

TEST(Reliability, LossyControlChannelStillMigratesSafely) {
  // 20% datagram loss on every link: the rudp layer must absorb it and
  // the migration protocol must still deliver exactly-once.
  SimRealm realm(3, /*security=*/false);
  realm.net().set_default_link(net::LinkConfig{.datagram_loss = 0.2});

  auto sender = realm.pseudo_agent("s", 0);
  auto mobile = realm.pseudo_agent("m", 1);
  ConnPair conn = make_connection(realm, sender, 0, mobile, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  for (int i = 0; i < 10; ++i) {
    util::BytesWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(conn.client
                    ->send(util::ByteSpan(w.data().data(), w.data().size()),
                           5s)
                    .ok());
  }
  ASSERT_TRUE(realm.migrate_pseudo_agent(mobile, 1, 2).ok());
  SessionPtr side = realm.ctrl(2).session_by_id(conn_id);
  ASSERT_TRUE(side);
  for (std::uint32_t i = 0; i < 10; ++i) {
    auto got = side->recv(10s);
    ASSERT_TRUE(got.ok()) << i;
    util::BytesReader r(util::ByteSpan(got->body.data(), got->body.size()));
    EXPECT_EQ(*r.u32(), i);
  }
  EXPECT_GT(realm.net().datagrams_dropped(), 0u);
}

TEST(Reliability, LargePayloadsAcrossMigration) {
  SimRealm realm(3, /*security=*/false);
  auto sender = realm.pseudo_agent("s", 0);
  auto mobile = realm.pseudo_agent("m", 1);
  ConnPair conn = make_connection(realm, sender, 0, mobile, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  util::Bytes big(128 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  ASSERT_TRUE(conn.client->send(util::ByteSpan(big.data(), big.size()), 5s)
                  .ok());
  ASSERT_TRUE(realm.migrate_pseudo_agent(mobile, 1, 2).ok());
  SessionPtr side = realm.ctrl(2).session_by_id(conn_id);
  ASSERT_TRUE(side);
  auto got = side->recv(5s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->body, big);
}

}  // namespace
}  // namespace naplet::nsock
