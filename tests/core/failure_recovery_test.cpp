// Fault-tolerance extension tests (the paper's §7 future work): broken-link
// detection + automatic repair with history replay, and heartbeat-based
// peer-failure detection.
#include <gtest/gtest.h>

#include <thread>

#include "core/test_realm.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

std::function<void(NodeConfig&)> with_recovery(
    util::Duration probe = std::chrono::milliseconds(50),
    int miss_threshold = 3) {
  return [probe, miss_threshold](NodeConfig& config) {
    config.controller.failure_recovery.enabled = true;
    config.controller.failure_recovery.probe_interval = probe;
    config.controller.failure_recovery.miss_threshold = miss_threshold;
    // Fail heartbeats fast so dead-peer tests stay quick.
    config.server.rudp_config.retransmit_interval =
        std::chrono::milliseconds(20);
    config.server.rudp_config.max_attempts = 5;
  };
}

TEST(FailureRecovery, BrokenLinkRepairedWithoutDataLoss) {
  SimRealm realm(2, /*security=*/true, {}, with_recovery());
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  // Some delivered traffic first.
  ASSERT_TRUE(conn.client->send(span("before"), 1s).ok());
  ASSERT_EQ(text(conn.server->recv(1s)->body), "before");

  // Kill the data socket behind the protocol's back (link failure).
  realm.net().sever_streams("node0", "node1");

  // Keep sending: sends may fail transiently while broken, then the repair
  // loop re-resumes the connection and history replay fills any gap.
  int sent = 0;
  const std::int64_t deadline =
      util::RealClock::instance().now_us() + 10'000'000;
  while (sent < 5 && util::RealClock::instance().now_us() < deadline) {
    if (conn.client->send(span("m" + std::to_string(sent)), 2s).ok()) {
      ++sent;
    }
  }
  ASSERT_EQ(sent, 5);

  for (int i = 0; i < 5; ++i) {
    auto got = conn.server->recv(10s);
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().to_string();
    EXPECT_EQ(text(got->body), "m" + std::to_string(i));
  }
  EXPECT_FALSE(conn.server->recv(100ms).ok());  // exactly once
  EXPECT_GE(realm.ctrl(0).links_repaired() + realm.ctrl(1).links_repaired(),
            1u);
}

TEST(FailureRecovery, InFlightFramesReplayedAfterUncoordinatedLoss) {
  SimRealm realm(2, /*security=*/false, {}, with_recovery());
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  // Latency so written frames are genuinely in flight when the link dies.
  realm.net().set_link("node0", "node1", net::LinkConfig{.latency = 50ms});
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  // Write frames that cannot have arrived yet, then cut the link.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(conn.client->send(span("lost" + std::to_string(i)), 1s).ok());
  }
  realm.net().sever_streams("node0", "node1");

  // The frames were dropped with the stream; history replay must recover
  // them, in order, exactly once.
  for (int i = 0; i < 3; ++i) {
    auto got = conn.server->recv(10s);
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().to_string();
    EXPECT_EQ(text(got->body), "lost" + std::to_string(i));
  }
  EXPECT_FALSE(conn.server->recv(100ms).ok());
}

TEST(FailureRecovery, HeartbeatDeclaresDeadPeerAndAborts) {
  SimRealm realm(2, /*security=*/true, {}, with_recovery(50ms, 2));
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  // Total partition: data socket dead AND control channel unreachable —
  // the peer is indistinguishable from a crashed host.
  realm.net().set_partition("node0", "node1", true);
  realm.net().sever_streams("node0", "node1");

  // Each side's heartbeats go unanswered; sessions are aborted locally.
  ASSERT_TRUE(conn.client->wait_state(
      [](ConnState s) { return s == ConnState::kClosed; }, 20s));
  EXPECT_GE(realm.ctrl(0).peers_declared_dead(), 1u);
  EXPECT_EQ(realm.ctrl(0).session_count(), 0u);
  auto st = conn.client->send(span("to the dead"), 500ms);
  EXPECT_EQ(st.code(), util::StatusCode::kAborted);
}

TEST(FailureRecovery, DisabledModeLeavesFailureToTheApplication) {
  // Paper-faithful default: no detection, no repair.
  SimRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  realm.net().sever_streams("node0", "node1");
  std::this_thread::sleep_for(300ms);
  // No repair happened; the session still claims ESTABLISHED and I/O
  // simply times out (the paper's §7 status quo).
  EXPECT_EQ(conn.client->state(), ConnState::kEstablished);
  EXPECT_EQ(realm.ctrl(0).links_repaired(), 0u);
  auto got = conn.server->recv(200ms);
  EXPECT_FALSE(got.ok());
}

TEST(FailureRecovery, RepairSurvivesRepeatedLinkFailures) {
  SimRealm realm(2, /*security=*/false, {}, with_recovery());
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  int delivered = 0;
  for (int round = 0; round < 3; ++round) {
    const std::int64_t deadline =
        util::RealClock::instance().now_us() + 10'000'000;
    int sent_this_round = 0;
    while (sent_this_round < 3 &&
           util::RealClock::instance().now_us() < deadline) {
      if (conn.client
              ->send(span("r" + std::to_string(round) + "-" +
                          std::to_string(sent_this_round)),
                     2s)
              .ok()) {
        ++sent_this_round;
      }
    }
    ASSERT_EQ(sent_this_round, 3) << "round " << round;
    realm.net().sever_streams("node0", "node1");
  }

  while (delivered < 9) {
    auto got = conn.server->recv(10s);
    ASSERT_TRUE(got.ok()) << "after " << delivered << " messages: "
                          << got.status().to_string();
    ++delivered;
  }
  EXPECT_FALSE(conn.server->recv(100ms).ok());
}

TEST(FailureRecovery, MigrationStillWorksWithRecoveryEnabled) {
  SimRealm realm(3, /*security=*/true, {}, with_recovery());
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  ASSERT_TRUE(conn.client->send(span("hop with recovery on"), 1s).ok());
  ASSERT_TRUE(realm.migrate_pseudo_agent(bob, 1, 2).ok());
  SessionPtr moved = realm.ctrl(2).session_by_id(conn.client->conn_id());
  ASSERT_TRUE(moved);
  EXPECT_EQ(text(moved->recv(2s)->body), "hop with recovery on");
  // The repair loop must not have interfered with the clean migration.
  EXPECT_EQ(realm.ctrl(1).peers_declared_dead(), 0u);
}

// ---- session-level history semantics ----

TEST(History, BoundedEviction) {
  Session session(1, 1, true, agent::AgentId("a"), agent::AgentId("b"));
  session.enable_history(64);  // tiny bound
  EXPECT_TRUE(session.history_enabled());
  // Without a stream, send fails, so drive history via a session pair.
}

TEST(History, SinceSemantics) {
  SimRealm realm(2, /*security=*/false, {}, with_recovery());
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(conn.client->send(span("h" + std::to_string(i)), 1s).ok());
  }
  auto all = conn.client->history_since(0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);
  EXPECT_EQ((*all)[0].first, 1u);

  auto tail = conn.client->history_since(2);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->size(), 2u);
  EXPECT_EQ((*tail)[0].first, 3u);

  auto none = conn.client->history_since(4);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  auto beyond = conn.client->history_since(99);
  ASSERT_TRUE(beyond.ok());
  EXPECT_TRUE(beyond->empty());
}

TEST(History, EvictionMakesOldSpansUnrecoverable) {
  SimRealm realm(2, /*security=*/false, {}, [](NodeConfig& config) {
    config.controller.failure_recovery.enabled = true;
    config.controller.failure_recovery.history_bytes = 8;  // ~2 messages
  });
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(conn.client->send(span("xxxx"), 1s).ok());
  }
  auto since_zero = conn.client->history_since(0);
  EXPECT_FALSE(since_zero.ok());
  EXPECT_EQ(since_zero.status().code(), util::StatusCode::kOutOfRange);
  // Recent span is still available.
  EXPECT_TRUE(conn.client->history_since(9).ok());
}

}  // namespace
}  // namespace naplet::nsock
