// Connection lifecycle over the full controller stack: open (with the
// CONNECT/ACK+ID/ID handshake and socket handoff), data transfer, explicit
// suspend/resume, and close — on stationary agents.
#include <gtest/gtest.h>

#include <thread>

#include "core/test_realm.hpp"
#include "net/tcp.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

TEST(Socket, ConnectEstablishesBothEnds) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);
  EXPECT_EQ(conn.client->state(), ConnState::kEstablished);
  EXPECT_EQ(conn.server->state(), ConnState::kEstablished);
  EXPECT_EQ(conn.client->conn_id(), conn.server->conn_id());
  EXPECT_TRUE(conn.client->is_client());
  EXPECT_FALSE(conn.server->is_client());
  EXPECT_EQ(conn.client->peer_agent(), bob);
  EXPECT_EQ(conn.server->peer_agent(), alice);
}

TEST(Socket, SessionKeysAgreeUnderSecurity) {
  SimRealm realm(2, /*security=*/true);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);
  EXPECT_EQ(conn.client->session_key().size(), 32u);
  EXPECT_EQ(conn.client->session_key(), conn.server->session_key());
}

TEST(Socket, NoSecurityModeHasEmptyKeys) {
  SimRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);
  EXPECT_TRUE(conn.client->session_key().empty());
  EXPECT_EQ(conn.client->state(), ConnState::kEstablished);
}

TEST(Socket, ConnectToNonListeningAgentRejected) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  realm.pseudo_agent("bob", 1);  // registered but not listening
  auto session = realm.ctrl(0).connect(alice, agent::AgentId("bob"));
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kPermissionDenied);
}

TEST(Socket, ConnectToUnknownAgentTimesOutInLookup) {
  SimRealm realm(1);
  auto alice = realm.pseudo_agent("alice", 0);
  auto session = realm.ctrl(0).connect(alice, agent::AgentId("nobody"));
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kNotFound);
}

TEST(Socket, DataTransferBothDirections) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  ASSERT_TRUE(conn.client->send(span("hello bob"), 1s).ok());
  auto got = conn.server->recv(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "hello bob");

  ASSERT_TRUE(conn.server->send(span("hello alice"), 1s).ok());
  auto back = conn.client->recv(1s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(text(back->body), "hello alice");
}

TEST(Socket, ExplicitSuspendResumeKeepsConnection) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  ASSERT_TRUE(conn.client->send(span("before"), 1s).ok());
  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
  EXPECT_EQ(conn.client->state(), ConnState::kSuspended);
  // The passive side settles into SUSPENDED shortly after ACKing.
  conn.server->wait_state(
      [](ConnState s) { return s == ConnState::kSuspended; }, 2s);
  EXPECT_EQ(conn.server->state(), ConnState::kSuspended);

  ASSERT_TRUE(realm.ctrl(0).resume(conn.client).ok());
  EXPECT_EQ(conn.client->state(), ConnState::kEstablished);
  conn.server->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 2s);

  // Data written before suspension arrives exactly once, then new data.
  auto got1 = conn.server->recv(1s);
  ASSERT_TRUE(got1.ok());
  EXPECT_EQ(text(got1->body), "before");
  ASSERT_TRUE(conn.client->send(span("after"), 1s).ok());
  auto got2 = conn.server->recv(1s);
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(text(got2->body), "after");
}

TEST(Socket, SuspendFromEitherSide) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  // The paper: "either of the two parts may suspend it" — here the server.
  ASSERT_TRUE(realm.ctrl(1).suspend(conn.server).ok());
  conn.client->wait_state(
      [](ConnState s) { return s == ConnState::kSuspended; }, 2s);
  ASSERT_TRUE(realm.ctrl(1).resume(conn.server).ok());
  conn.client->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 2s);
  ASSERT_TRUE(conn.client->send(span("still works"), 1s).ok());
  auto got = conn.server->recv(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "still works");
}

TEST(Socket, SuspendIsIdempotentWhenLocal) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());  // no-op
  EXPECT_EQ(conn.client->state(), ConnState::kSuspended);
  ASSERT_TRUE(realm.ctrl(0).resume(conn.client).ok());
}

TEST(Socket, ResumeOnEstablishedIsNoop) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  EXPECT_TRUE(realm.ctrl(0).resume(conn.client).ok());
  EXPECT_EQ(conn.client->state(), ConnState::kEstablished);
}

TEST(Socket, CloseFromEstablished) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(realm.ctrl(0).close(conn.client).ok());
  EXPECT_EQ(conn.client->state(), ConnState::kClosed);
  conn.server->wait_state([](ConnState s) { return s == ConnState::kClosed; },
                          2s);
  EXPECT_EQ(conn.server->state(), ConnState::kClosed);
  EXPECT_EQ(realm.ctrl(0).session_count(), 0u);
  // The passive side's registry cleanup happens just after its final state
  // change; poll briefly.
  for (int i = 0; i < 100 && realm.ctrl(1).session_count() != 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(realm.ctrl(1).session_count(), 0u);
}

TEST(Socket, CloseFromSuspended) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
  conn.server->wait_state(
      [](ConnState s) { return s == ConnState::kSuspended; }, 2s);
  ASSERT_TRUE(realm.ctrl(0).close(conn.client).ok());
  conn.server->wait_state([](ConnState s) { return s == ConnState::kClosed; },
                          2s);
  EXPECT_EQ(conn.server->state(), ConnState::kClosed);
}

TEST(Socket, CloseIsIdempotent) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(realm.ctrl(0).close(conn.client).ok());
  EXPECT_TRUE(realm.ctrl(0).close(conn.client).ok());
}

TEST(Socket, MultipleConnectionsBetweenSameAgents) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ASSERT_TRUE(realm.ctrl(1).listen(bob).ok());

  auto c1 = realm.ctrl(0).connect(alice, bob);
  auto c2 = realm.ctrl(0).connect(alice, bob);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto s1 = realm.ctrl(1).accept(bob, 2s);
  auto s2 = realm.ctrl(1).accept(bob, 2s);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE((*c1)->conn_id(), (*c2)->conn_id());

  ASSERT_TRUE((*c1)->send(span("on-1"), 1s).ok());
  ASSERT_TRUE((*c2)->send(span("on-2"), 1s).ok());
  // Map accepted sessions to the right connection by conn_id.
  SessionPtr srv1 = (*s1)->conn_id() == (*c1)->conn_id() ? *s1 : *s2;
  SessionPtr srv2 = (*s1)->conn_id() == (*c1)->conn_id() ? *s2 : *s1;
  EXPECT_EQ(text(srv1->recv(1s)->body), "on-1");
  EXPECT_EQ(text(srv2->recv(1s)->body), "on-2");
}

TEST(Socket, AcceptTimesOutWithoutConnect) {
  SimRealm realm(1);
  auto bob = realm.pseudo_agent("bob", 0);
  ASSERT_TRUE(realm.ctrl(0).listen(bob).ok());
  auto session = realm.ctrl(0).accept(bob, 100ms);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kTimeout);
}

TEST(Socket, DoubleListenRejected) {
  SimRealm realm(1);
  auto bob = realm.pseudo_agent("bob", 0);
  ASSERT_TRUE(realm.ctrl(0).listen(bob).ok());
  EXPECT_EQ(realm.ctrl(0).listen(bob).code(),
            util::StatusCode::kAlreadyExists);
  ASSERT_TRUE(realm.ctrl(0).unlisten(bob).ok());
  EXPECT_TRUE(realm.ctrl(0).listen(bob).ok());
}

TEST(Socket, ConnectBreakdownPhasesSumToTotal) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ASSERT_TRUE(realm.ctrl(1).listen(bob).ok());
  ConnectBreakdown breakdown;
  auto session = realm.ctrl(0).connect(alice, bob, &breakdown);
  ASSERT_TRUE(session.ok());
  EXPECT_GT(breakdown.total_ms(), 0.0);
  EXPECT_GT(breakdown.key_exchange_ms, 0.0);     // DH ran
  EXPECT_GE(breakdown.security_check_ms, 0.0);
  EXPECT_GT(breakdown.handshake_ms, 0.0);
  EXPECT_GE(breakdown.open_socket_ms, 0.0);
}

TEST(Socket, NoSecurityBreakdownSkipsKeyExchange) {
  SimRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ASSERT_TRUE(realm.ctrl(1).listen(bob).ok());
  ConnectBreakdown breakdown;
  auto session = realm.ctrl(0).connect(alice, bob, &breakdown);
  ASSERT_TRUE(session.ok());
  EXPECT_LT(breakdown.key_exchange_ms, 1.0);
  EXPECT_LT(breakdown.security_check_ms, 1.0);
}

TEST(Socket, SameNodeAgentPair) {
  // Both endpoints hosted by ONE controller: the registry keys sessions by
  // (conn_id, local agent) and messages carry the sender's identity, so
  // the two sessions sharing a conn id never cross wires.
  SimRealm realm(1);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 0);
  ConnPair conn = make_connection(realm, alice, 0, bob, 0);
  ASSERT_TRUE(conn.client && conn.server);
  EXPECT_EQ(realm.ctrl(0).session_count(), 2u);

  ASSERT_TRUE(conn.client->send(span("local ping"), 1s).ok());
  EXPECT_EQ(text(conn.server->recv(1s)->body), "local ping");
  ASSERT_TRUE(conn.server->send(span("local pong"), 1s).ok());
  EXPECT_EQ(text(conn.client->recv(1s)->body), "local pong");

  // Suspend/resume between co-located agents also routes correctly.
  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
  conn.server->wait_state(
      [](ConnState s) { return s == ConnState::kSuspended; }, 2s);
  ASSERT_TRUE(realm.ctrl(0).resume(conn.client).ok());
  ASSERT_TRUE(conn.client->send(span("after local resume"), 1s).ok());
  EXPECT_EQ(text(conn.server->recv(2s)->body), "after local resume");

  ASSERT_TRUE(realm.ctrl(0).close(conn.client).ok());
}

TEST(Socket, SameNodePairMigratesApart) {
  // Two co-located agents; one moves away; the connection follows.
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 0);
  ConnPair conn = make_connection(realm, alice, 0, bob, 0);
  ASSERT_TRUE(conn.client->send(span("carry this"), 1s).ok());

  ASSERT_TRUE(realm.migrate_pseudo_agent(bob, 0, 1).ok());
  SessionPtr moved = realm.ctrl(1).session_by_id(conn.client->conn_id());
  ASSERT_TRUE(moved);
  EXPECT_EQ(text(moved->recv(2s)->body), "carry this");
  ASSERT_TRUE(conn.client->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 2s));
}

TEST(Socket, BandwidthBoundLinkMasksProtocolOverhead) {
  // The paper's Fig. 9 testbed was NIC-bound (100 Mb/s Ethernet): both raw
  // sockets and NapletSocket saturate the wire, so the protocol's
  // per-message CPU cost vanishes. Reproduce that regime with the
  // simulated network's bandwidth shaping: NapletSocket throughput must
  // converge to the link cap (not to CPU limits).
  SimRealm realm(2, /*security=*/false);
  constexpr std::uint64_t kCap = 4'000'000;  // 4 MB/s
  realm.net().set_default_link(net::LinkConfig{.bytes_per_second = kCap});

  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  constexpr std::size_t kMsg = 8192;
  constexpr int kCount = 150;  // ~1.2 MB => ~0.3 s at the cap
  std::thread pump([&] {
    const util::Bytes payload(kMsg, 0x3C);
    for (int i = 0; i < kCount; ++i) {
      ASSERT_TRUE(conn.client
                      ->send(util::ByteSpan(payload.data(), payload.size()),
                             10s)
                      .ok());
    }
  });
  const std::int64_t t0 = util::RealClock::instance().now_us();
  std::size_t received = 0;
  while (received < kMsg * kCount) {
    auto got = conn.server->recv(10s);
    ASSERT_TRUE(got.ok());
    received += got->body.size();
  }
  pump.join();
  const double elapsed_s =
      static_cast<double>(util::RealClock::instance().now_us() - t0) / 1e6;
  const double bytes_per_sec = static_cast<double>(received) / elapsed_s;
  // Within scheduling slack of the cap — and far below unshaped speeds
  // (hundreds of MB/s on this path).
  EXPECT_GT(bytes_per_sec, 0.5 * kCap);
  EXPECT_LT(bytes_per_sec, 1.6 * kCap);
}

TEST(Socket, WorksOverRealTcpLoopback) {
  // Same protocol stack over real kernel sockets.
  Realm realm;  // TCP loopback by default
  NodeConfig config;
  config.controller.dh_group = crypto::DhGroup::kModp768;
  realm.add_node("alpha", config);
  realm.add_node("beta", config);
  ASSERT_TRUE(realm.start().ok());

  agent::AgentId alice("alice"), bob("bob");
  realm.locations().register_agent(alice,
                                   realm.node("alpha").server().node_info());
  realm.locations().register_agent(bob,
                                   realm.node("beta").server().node_info());
  ASSERT_TRUE(realm.node("beta").controller().listen(bob).ok());
  auto client = realm.node("alpha").controller().connect(alice, bob);
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  auto server = realm.node("beta").controller().accept(bob, 5s);
  ASSERT_TRUE(server.ok());

  ASSERT_TRUE((*client)->send(span("over tcp"), 1s).ok());
  auto got = (*server)->recv(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "over tcp");
  ASSERT_TRUE(realm.node("alpha").controller().close(*client).ok());
  realm.stop();
}

}  // namespace
}  // namespace naplet::nsock
