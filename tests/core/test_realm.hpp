// Shared fixture helpers for core protocol tests: a two- or three-node
// realm over the in-process simulated network, with pseudo-agents
// registered directly in the location service so protocol-level tests can
// drive the SocketController API without standing up full agent threads.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/runtime.hpp"
#include "net/sim.hpp"

namespace naplet::nsock::testing {

using namespace std::chrono_literals;

inline util::ByteSpan span(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

inline std::string text(const util::Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Realm over SimNet with n nodes named "node0".."node{n-1}".
class SimRealm {
 public:
  explicit SimRealm(int nodes, bool security = true,
                    util::Duration link_latency = {},
                    std::function<void(NodeConfig&)> tweak = {}) {
    if (link_latency.count() > 0) {
      net_.set_default_link(net::LinkConfig{.latency = link_latency});
    }
    realm_ = std::make_unique<Realm>();
    for (int i = 0; i < nodes; ++i) {
      const std::string name = "node" + std::to_string(i);
      NodeConfig config;
      config.controller.security = security;
      config.controller.dh_group = crypto::DhGroup::kModp768;
      if (tweak) tweak(config);
      realm_->add_node(name, net_.add_node(name), config);
    }
    EXPECT_TRUE(realm_->start().ok());
  }

  ~SimRealm() { realm_->stop(); }

  NapletRuntime& node(int i) {
    return realm_->node("node" + std::to_string(i));
  }
  SocketController& ctrl(int i) { return node(i).controller(); }
  agent::AgentServer& server(int i) { return node(i).server(); }
  agent::LocationService& locations() { return realm_->locations(); }
  net::SimNet& net() { return net_; }
  Realm& realm() { return *realm_; }

  /// Register a pseudo-agent as resident on node i (no thread).
  agent::AgentId pseudo_agent(const std::string& name, int node_index) {
    agent::AgentId id(name);
    locations().register_agent(id, server(node_index).node_info());
    return id;
  }

  /// Move a pseudo-agent's suspended sessions from one node to another,
  /// exactly as the docking system would around a hop.
  util::Status migrate_pseudo_agent(const agent::AgentId& id, int from,
                                    int to) {
    locations().begin_migration(id);
    NAPLET_RETURN_IF_ERROR(ctrl(from).prepare_migration(id));
    const util::Bytes sessions = ctrl(from).export_sessions(id);
    NAPLET_RETURN_IF_ERROR(ctrl(to).import_sessions(
        id, util::ByteSpan(sessions.data(), sessions.size())));
    locations().register_agent(id, server(to).node_info());
    return ctrl(to).complete_migration(id);
  }

 private:
  net::SimNet net_;
  std::unique_ptr<Realm> realm_;
};

/// Establish a connection between two pseudo-agents; returns both ends.
struct ConnPair {
  SessionPtr client;
  SessionPtr server;
};

inline ConnPair make_connection(SimRealm& realm, const agent::AgentId& client,
                                int client_node, const agent::AgentId& server,
                                int server_node) {
  EXPECT_TRUE(realm.ctrl(server_node).listen(server).ok());
  auto client_session = realm.ctrl(client_node).connect(client, server);
  EXPECT_TRUE(client_session.ok()) << client_session.status().to_string();
  auto server_session = realm.ctrl(server_node).accept(server, 5s);
  EXPECT_TRUE(server_session.ok()) << server_session.status().to_string();
  return ConnPair{client_session.ok() ? *client_session : nullptr,
                  server_session.ok() ? *server_session : nullptr};
}

}  // namespace naplet::nsock::testing
