// Mixed-workload stress: several agent pairs with live traffic, random
// explicit suspend/resume cycles, migrations, and closes, all interleaved.
// The invariants under test are global: every sent message is delivered
// exactly once and in order on its own connection, and the realm shuts
// down cleanly (no leaked sessions, no stuck threads).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "core/test_realm.hpp"
#include "util/rng.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

// ThreadSanitizer runs these interleavings ~10x slower; the tsan-labeled
// ctest entries set NAPLET_TSAN_LIGHT=1 to pin a lighter workload that
// still exercises every concurrent path.
bool tsan_light() { return std::getenv("NAPLET_TSAN_LIGHT") != nullptr; }

struct PairState {
  agent::AgentId sender;
  agent::AgentId receiver;
  SessionPtr tx;
  std::uint64_t conn_id = 0;
  int sender_node = 0;
  int receiver_node = 0;
  std::uint32_t sent = 0;
  std::uint32_t received = 0;
};

TEST(Stress, ManyPairsMigrationsAndSuspends) {
  const int kPairs = tsan_light() ? 2 : 3;
  const int kRounds = tsan_light() ? 3 : 6;
  const int kMsgsPerRound = tsan_light() ? 4 : 8;

  SimRealm realm(4, /*security=*/false);
  util::Rng rng(2024);

  std::vector<PairState> pairs(kPairs);
  for (int p = 0; p < kPairs; ++p) {
    pairs[p].sender = realm.pseudo_agent("tx-" + std::to_string(p), 0);
    pairs[p].receiver = realm.pseudo_agent("rx-" + std::to_string(p), 1);
    pairs[p].sender_node = 0;
    pairs[p].receiver_node = 1;
    ConnPair conn = make_connection(realm, pairs[p].sender, 0,
                                    pairs[p].receiver, 1);
    ASSERT_TRUE(conn.client && conn.server);
    pairs[p].tx = conn.client;
    pairs[p].conn_id = conn.client->conn_id();
  }

  for (int round = 0; round < kRounds; ++round) {
    // Traffic burst on every pair.
    for (auto& pair : pairs) {
      SessionPtr tx =
          realm.ctrl(pair.sender_node).session_by_id(pair.conn_id);
      ASSERT_TRUE(tx) << "round " << round;
      for (int m = 0; m < kMsgsPerRound; ++m) {
        util::BytesWriter w;
        w.u32(pair.sent++);
        ASSERT_TRUE(
            tx->send(util::ByteSpan(w.data().data(), w.data().size()), 10s)
                .ok())
            << "round " << round;
      }
    }

    // Random disturbance per pair: migrate receiver, suspend/resume, or
    // leave alone.
    for (auto& pair : pairs) {
      switch (rng.next_below(3)) {
        case 0: {  // migrate the receiver to a random other node
          int next = static_cast<int>(rng.next_below(4));
          if (next == pair.receiver_node) next = (next + 1) % 4;
          if (next == pair.sender_node) next = (next + 1) % 4;
          ASSERT_TRUE(realm
                          .migrate_pseudo_agent(pair.receiver,
                                                pair.receiver_node, next)
                          .ok())
              << "round " << round;
          pair.receiver_node = next;
          break;
        }
        case 1: {  // explicit suspend + resume from the sender side
          SessionPtr tx =
              realm.ctrl(pair.sender_node).session_by_id(pair.conn_id);
          ASSERT_TRUE(tx);
          ASSERT_TRUE(realm.ctrl(pair.sender_node).suspend(tx).ok());
          ASSERT_TRUE(realm.ctrl(pair.sender_node).resume(tx).ok());
          break;
        }
        default:
          break;  // leave alone
      }
    }

    // Drain everything sent so far on each pair, verifying order.
    for (auto& pair : pairs) {
      SessionPtr rx =
          realm.ctrl(pair.receiver_node).session_by_id(pair.conn_id);
      ASSERT_TRUE(rx) << "round " << round;
      while (pair.received < pair.sent) {
        auto got = rx->recv(10s);
        ASSERT_TRUE(got.ok()) << "round " << round << " msg "
                              << pair.received << ": "
                              << got.status().to_string();
        util::BytesReader r(util::ByteSpan(got->body.data(),
                                           got->body.size()));
        ASSERT_EQ(*r.u32(), pair.received) << "round " << round;
        ++pair.received;
      }
      EXPECT_FALSE(rx->recv(50ms).ok());  // nothing extra
    }
  }

  // Clean close of every pair.
  for (auto& pair : pairs) {
    SessionPtr tx = realm.ctrl(pair.sender_node).session_by_id(pair.conn_id);
    ASSERT_TRUE(tx);
    EXPECT_TRUE(realm.ctrl(pair.sender_node).close(tx).ok());
  }
  for (int node = 0; node < 4; ++node) {
    for (int i = 0; i < 100 && realm.ctrl(node).session_count() != 0; ++i) {
      std::this_thread::sleep_for(5ms);
    }
    EXPECT_EQ(realm.ctrl(node).session_count(), 0u) << "node " << node;
  }
}

TEST(Stress, RapidSuspendResumeCycles) {
  SimRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  const int kCycles = tsan_light() ? 8 : 25;
  for (int i = 0; i < kCycles; ++i) {
    ASSERT_TRUE(conn.client->send(span("c" + std::to_string(i)), 5s).ok());
    ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok()) << i;
    ASSERT_TRUE(realm.ctrl(0).resume(conn.client).ok()) << i;
  }
  for (int i = 0; i < kCycles; ++i) {
    auto got = conn.server->recv(5s);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(text(got->body), "c" + std::to_string(i));
  }
}

TEST(Stress, AlternatingSidesSuspend) {
  SimRealm realm(2, /*security=*/true);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  const int kSwaps = tsan_light() ? 4 : 10;
  for (int i = 0; i < kSwaps; ++i) {
    auto& ctrl = (i % 2 == 0) ? realm.ctrl(0) : realm.ctrl(1);
    const SessionPtr& side = (i % 2 == 0) ? conn.client : conn.server;
    const SessionPtr& other = (i % 2 == 0) ? conn.server : conn.client;
    ASSERT_TRUE(ctrl.suspend(side).ok()) << i;
    ASSERT_TRUE(other->wait_state(
        [](ConnState s) { return s == ConnState::kSuspended; }, 5s))
        << i;
    ASSERT_TRUE(ctrl.resume(side).ok()) << i;
    ASSERT_TRUE(other->wait_state(
        [](ConnState s) { return s == ConnState::kEstablished; }, 5s))
        << i;
  }
  ASSERT_TRUE(conn.client->send(span("still alive"), 2s).ok());
  EXPECT_EQ(text(conn.server->recv(2s)->body), "still alive");
}

}  // namespace
}  // namespace naplet::nsock
