// Security properties (paper §3.3): agent-oriented access control at
// connect time, and session-key (HMAC) protection of suspend/resume/close
// against forged or replayed control traffic.
#include <gtest/gtest.h>

#include "agent/bus.hpp"
#include "core/test_realm.hpp"
#include "net/frame.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

TEST(Security, DeniedAgentCannotConnect) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ASSERT_TRUE(realm.ctrl(1).listen(bob).ok());

  realm.server(0).access().deny("alice",
                                agent::Permission::kUseNapletSocket);
  auto session = realm.ctrl(0).connect(alice, bob);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kPermissionDenied);
  EXPECT_GE(realm.ctrl(0).access_denials(), 1u);
}

TEST(Security, ServerSideDenialAlsoRejects) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ASSERT_TRUE(realm.ctrl(1).listen(bob).ok());

  // Server-side policy denies alice even though her home server allows.
  realm.server(1).access().deny("alice",
                                agent::Permission::kUseNapletSocket);
  auto session = realm.ctrl(0).connect(alice, bob);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), util::StatusCode::kPermissionDenied);
}

TEST(Security, DeniedListenRejected) {
  SimRealm realm(1);
  auto bob = realm.pseudo_agent("bob", 0);
  realm.server(0).access().deny("bob", agent::Permission::kUseNapletSocket);
  EXPECT_EQ(realm.ctrl(0).listen(bob).code(),
            util::StatusCode::kPermissionDenied);
}

TEST(Security, ForgedSuspendIgnored) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);
  const std::uint64_t conn_id = conn.client->conn_id();

  // An attacker node with its own bus knows the conn id (eavesdropped)
  // but not the Diffie–Hellman session key.
  auto attacker_node = realm.net().add_node("attacker");
  auto dgram = attacker_node->bind_datagram(0);
  ASSERT_TRUE(dgram.ok());
  agent::ServerBus attacker_bus(
      std::make_unique<net::ReliableChannel>(std::move(*dgram)));

  CtrlMsg forged;
  forged.type = CtrlType::kSus;
  forged.conn_id = conn_id;
  forged.sent_seq = 0;
  forged.node.server_name = "attacker";
  forged.node.control = attacker_bus.local_endpoint();
  forged.mac = util::Bytes(32, 0x00);  // wrong tag
  const util::Bytes encoded = forged.encode();
  ASSERT_TRUE(attacker_bus
                  .send(realm.server(1).node_info().control,
                        agent::BusKind::kControl,
                        util::ByteSpan(encoded.data(), encoded.size()))
                  .ok());

  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(conn.server->state(), ConnState::kEstablished)
      << "forged SUS must not suspend the connection";
  EXPECT_GE(realm.ctrl(1).mac_rejections(), 1u);

  // Traffic unaffected.
  ASSERT_TRUE(conn.client->send(span("still secure"), 1s).ok());
  EXPECT_EQ(text(conn.server->recv(1s)->body), "still secure");
  attacker_bus.stop();
}

TEST(Security, ForgedCloseIgnored) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  auto attacker_node = realm.net().add_node("attacker2");
  auto dgram = attacker_node->bind_datagram(0);
  ASSERT_TRUE(dgram.ok());
  agent::ServerBus attacker_bus(
      std::make_unique<net::ReliableChannel>(std::move(*dgram)));

  CtrlMsg forged;
  forged.type = CtrlType::kCls;
  forged.conn_id = conn.client->conn_id();
  forged.node.server_name = "attacker2";
  forged.node.control = attacker_bus.local_endpoint();
  const util::Bytes encoded = forged.encode();
  ASSERT_TRUE(attacker_bus
                  .send(realm.server(1).node_info().control,
                        agent::BusKind::kControl,
                        util::ByteSpan(encoded.data(), encoded.size()))
                  .ok());
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(conn.server->state(), ConnState::kEstablished);
  attacker_bus.stop();
}

TEST(Security, HijackedResumeRejectedAtRedirector) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  // Suspend legitimately so the session is resumable.
  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
  conn.server->wait_state(
      [](ConnState s) { return s == ConnState::kSuspended; }, 2s);

  // Attacker connects to bob's redirector and tries to steal the session
  // with a RESUME carrying a guessed MAC.
  auto attacker_node = realm.net().add_node("hijacker");
  auto stream = attacker_node->connect(
      realm.server(1).node_info().redirector, 1s);
  ASSERT_TRUE(stream.ok());
  HandoffMsg forged;
  forged.type = HandoffType::kResume;
  forged.conn_id = conn_id;
  forged.verifier = conn.client->verifier();  // even with the verifier...
  forged.sent_seq = 0;
  forged.mac = util::Bytes(32, 0xAA);  // ...the MAC cannot be forged
  const util::Bytes encoded = forged.encode();
  ASSERT_TRUE(net::write_frame(**stream,
                               util::ByteSpan(encoded.data(), encoded.size()))
                  .ok());
  auto reply_frame = net::read_frame(**stream);
  ASSERT_TRUE(reply_frame.ok());
  auto reply = HandoffMsg::decode(
      util::ByteSpan(reply_frame->data(), reply_frame->size()));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, HandoffType::kError);
  EXPECT_GE(realm.ctrl(1).mac_rejections(), 1u);

  // The legitimate owner can still resume.
  ASSERT_TRUE(realm.ctrl(0).resume(conn.client).ok());
  ASSERT_TRUE(conn.client->send(span("mine"), 1s).ok());
  EXPECT_EQ(text(conn.server->recv(2s)->body), "mine");
}

TEST(Security, AttachRequiresMacUnderSecurity) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ASSERT_TRUE(realm.ctrl(1).listen(bob).ok());

  // Race a forged ATTACH against a real connect: start a real connect to
  // create a pending CONNECT_ACKED session, but we cannot see its conn_id
  // from outside; instead verify that an ATTACH with a random conn_id is
  // rejected cleanly.
  auto attacker_node = realm.net().add_node("sneaker");
  auto stream = attacker_node->connect(
      realm.server(1).node_info().redirector, 1s);
  ASSERT_TRUE(stream.ok());
  HandoffMsg forged;
  forged.type = HandoffType::kAttach;
  forged.conn_id = 0xDEAD;
  const util::Bytes encoded = forged.encode();
  ASSERT_TRUE(net::write_frame(**stream,
                               util::ByteSpan(encoded.data(), encoded.size()))
                  .ok());
  auto reply_frame = net::read_frame(**stream);
  ASSERT_TRUE(reply_frame.ok());
  auto reply = HandoffMsg::decode(
      util::ByteSpan(reply_frame->data(), reply_frame->size()));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, HandoffType::kError);
}

TEST(Security, SuspendResumeWorkWithoutSecurityMode) {
  // The w/o-security baseline still migrates correctly — it simply skips
  // authentication, DH, and MAC checks.
  SimRealm realm(3, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client->send(span("insecure but reliable"), 1s).ok());
  ASSERT_TRUE(realm.migrate_pseudo_agent(bob, 1, 2).ok());
  SessionPtr moved = realm.ctrl(2).session_by_id(conn.client->conn_id());
  ASSERT_TRUE(moved);
  EXPECT_EQ(text(moved->recv(2s)->body), "insecure but reliable");
}

TEST(Security, MacRejectionCounterStartsAtZero) {
  SimRealm realm(1);
  EXPECT_EQ(realm.ctrl(0).mac_rejections(), 0u);
  EXPECT_EQ(realm.ctrl(0).access_denials(), 0u);
}

}  // namespace
}  // namespace naplet::nsock
