// Migration under continuous full-speed traffic: reproduces the regime the
// throughput benches run in (a pump saturating the connection while the
// endpoints migrate, singly and concurrently). Every migration must
// complete within the protocol timeouts and no message may be lost,
// duplicated, or reordered.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "core/test_realm.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

struct PumpHarness {
  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> sent{0};
  std::atomic<int> tx_node{0};
  std::atomic<std::uint32_t> received{0};
  std::atomic<int> rx_node{1};
  std::atomic<bool> order_broken{false};
  std::thread pump;
  std::thread sink;

  void start(SimRealm& realm, std::uint64_t conn_id) {
    pump = std::thread([this, &realm, conn_id] {
      while (!stop.load()) {
        auto side = realm.ctrl(tx_node.load()).session_by_id(conn_id);
        if (!side) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        util::BytesWriter w;
        w.u32(sent.load());
        if (side->send(util::ByteSpan(w.data().data(), w.data().size()),
                       std::chrono::milliseconds(100))
                .ok()) {
          sent.fetch_add(1);
        }
      }
    });
    sink = std::thread([this, &realm, conn_id] {
      while (!stop.load()) {
        auto side = realm.ctrl(rx_node.load()).session_by_id(conn_id);
        if (!side) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        auto got = side->recv(std::chrono::milliseconds(20));
        if (!got.ok()) continue;
        util::BytesReader r(util::ByteSpan(got->body.data(),
                                           got->body.size()));
        if (*r.u32() != received.load()) order_broken.store(true);
        received.fetch_add(1);
      }
    });
  }

  // Drain the tail after stopping the pump, then join.
  void finish(SimRealm& realm, std::uint64_t conn_id) {
    // Let in-flight sends settle, then stop producing.
    stop.store(true);
    pump.join();
    // Drain whatever was sent.
    const std::int64_t deadline =
        util::RealClock::instance().now_us() + 15'000'000;
    std::atomic<bool> sink_stop{false};
    while (received.load() < sent.load() &&
           util::RealClock::instance().now_us() < deadline) {
      auto side = realm.ctrl(rx_node.load()).session_by_id(conn_id);
      if (!side) continue;
      auto got = side->recv(std::chrono::milliseconds(100));
      if (!got.ok()) continue;
      util::BytesReader r(util::ByteSpan(got->body.data(), got->body.size()));
      if (*r.u32() != received.load()) order_broken.store(true);
      received.fetch_add(1);
    }
    (void)sink_stop;
    sink.join();
  }
};

TEST(PumpMigration, SingleMoverUnderSaturation) {
  SimRealm realm(4, /*security=*/false);
  auto sender = realm.pseudo_agent("sender", 0);
  auto mobile = realm.pseudo_agent("mobile", 1);
  ConnPair conn = make_connection(realm, sender, 0, mobile, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  PumpHarness harness;
  harness.start(realm, conn_id);

  int node = 1;
  for (int hop = 0; hop < 4; ++hop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const int next = 1 + (node % 3);
    ASSERT_TRUE(realm.migrate_pseudo_agent(mobile, node, next).ok())
        << "hop " << hop;
    node = next;
    harness.rx_node.store(node);
  }

  harness.finish(realm, conn_id);
  EXPECT_EQ(harness.received.load(), harness.sent.load());
  EXPECT_FALSE(harness.order_broken.load());
  EXPECT_GT(harness.sent.load(), 0u);
}

TEST(PumpMigration, ConcurrentMoversUnderSaturation) {
  SimRealm realm(6, /*security=*/false);
  auto a = realm.pseudo_agent("A", 0);
  auto b = realm.pseudo_agent("B", 1);
  ConnPair conn = make_connection(realm, a, 0, b, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  PumpHarness harness;
  harness.start(realm, conn_id);

  int a_node = 0, b_node = 1;
  for (int round = 0; round < 4; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const int a_next = ((a_node + 2) % 6) & ~1;
    int b_next = ((b_node + 2) % 6) | 1;
    auto move_a = std::async(std::launch::async, [&, a_next] {
      return realm.migrate_pseudo_agent(a, a_node, a_next);
    });
    auto move_b = std::async(std::launch::async, [&, b_next] {
      return realm.migrate_pseudo_agent(b, b_node, b_next);
    });
    const auto status_a = move_a.get();
    const auto status_b = move_b.get();
    ASSERT_TRUE(status_a.ok()) << "round " << round << ": "
                               << status_a.to_string();
    ASSERT_TRUE(status_b.ok()) << "round " << round << ": "
                               << status_b.to_string();
    a_node = a_next;
    b_node = b_next;
    harness.tx_node.store(a_node);
    harness.rx_node.store(b_node);
  }

  harness.finish(realm, conn_id);
  EXPECT_EQ(harness.received.load(), harness.sent.load());
  EXPECT_FALSE(harness.order_broken.load());
}

}  // namespace
}  // namespace naplet::nsock
