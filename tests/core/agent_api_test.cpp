// Full-stack test of the public NapletSocket API driven by real agents on
// real agent servers: agents open sockets through the controller proxy,
// exchange messages, migrate (the docking system suspends/ships/resumes
// their connections), reattach their handles, and keep talking.
#include <gtest/gtest.h>

#include <atomic>

#include "core/naplet_socket.hpp"
#include "core/test_realm.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

// Shared cross-agent observations (tests run in one process).
struct ApiProbe {
  std::atomic<int> pings_received{0};
  std::atomic<int> pongs_received{0};
  std::atomic<int> replayed{0};
  std::atomic<bool> order_broken{false};
  std::atomic<bool> error{false};
  std::mutex mu;
  std::string last_error;

  void fail(const std::string& why) {
    error = true;
    std::lock_guard lock(mu);
    last_error = why;
  }
  void reset() {
    pings_received = 0;
    pongs_received = 0;
    replayed = 0;
    order_broken = false;
    error = false;
    last_error.clear();
  }
};

ApiProbe& probe() {
  static ApiProbe p;
  return p;
}

/// Accepts one connection and echoes `expected` counters back; stationary.
class EchoServerAgent : public agent::Agent {
 public:
  std::uint32_t expected = 0;

  void run(agent::AgentContext& ctx) override {
    auto listener = NapletServerSocket::open(ctx);
    if (!listener.ok()) return probe().fail("listen failed");
    auto conn = (*listener)->accept(std::chrono::seconds(10));
    if (!conn.ok()) return probe().fail("accept failed");

    for (std::uint32_t i = 0; i < expected; ++i) {
      auto got = (*conn)->recv(std::chrono::seconds(20));
      if (!got.ok()) {
        return probe().fail("server recv: " + got.status().to_string());
      }
      util::BytesReader r(util::ByteSpan(got->body.data(), got->body.size()));
      const std::uint32_t counter = *r.u32();
      if (counter != i) probe().order_broken = true;
      probe().pings_received.fetch_add(1);
      util::BytesWriter w;
      w.u32(counter);
      if (!(*conn)->send(util::ByteSpan(w.data().data(), w.data().size()))
               .ok()) {
        return probe().fail("server send failed");
      }
    }
    (void)(*conn)->close();
  }

  void persist(util::Archive& ar) override { ar.field(expected); }
  std::string type_name() const override { return "EchoServerAgent"; }
};
NAPLET_REGISTER_AGENT(EchoServerAgent);

/// Connects to the echo server, then ping-pongs counters while hopping
/// across servers between bursts — the paper's Fig. 7/11 workload on the
/// real agent runtime.
class RoamingClientAgent : public agent::Agent {
 public:
  std::string peer_name;
  std::vector<std::string> itinerary;
  std::uint32_t total = 0;
  // persisted progress
  std::uint64_t conn_id = 0;
  std::uint32_t sent = 0;
  std::uint64_t hops_done = 0;

  void run(agent::AgentContext& ctx) override {
    std::unique_ptr<NapletSocket> conn;
    if (conn_id == 0) {
      auto opened = NapletSocket::open(ctx, agent::AgentId(peer_name));
      if (!opened.ok()) {
        return probe().fail("open: " + opened.status().to_string());
      }
      conn = std::move(*opened);
      conn_id = conn->conn_id();
    } else {
      auto reattached = NapletSocket::reattach(ctx, conn_id);
      if (!reattached.ok()) {
        return probe().fail("reattach: " + reattached.status().to_string());
      }
      conn = std::move(*reattached);
    }

    const std::uint32_t burst =
        total / static_cast<std::uint32_t>(itinerary.size() + 1);
    const std::uint32_t goal =
        hops_done < itinerary.size() ? sent + burst : total;

    while (sent < goal) {
      util::BytesWriter w;
      w.u32(sent);
      if (!conn->send(util::ByteSpan(w.data().data(), w.data().size())).ok()) {
        return probe().fail("client send failed");
      }
      auto pong = conn->recv(std::chrono::seconds(20));
      if (!pong.ok()) {
        return probe().fail("client recv: " + pong.status().to_string());
      }
      if (pong->from_buffer) probe().replayed.fetch_add(1);
      util::BytesReader r(
          util::ByteSpan(pong->body.data(), pong->body.size()));
      if (*r.u32() != sent) probe().order_broken = true;
      probe().pongs_received.fetch_add(1);
      ++sent;
    }

    if (hops_done < itinerary.size()) {
      const std::string next = itinerary[hops_done];
      ++hops_done;
      ctx.migrate_to(next);  // docking system migrates the connection too
    } else {
      (void)conn->close();
    }
  }

  void persist(util::Archive& ar) override {
    ar.field(peer_name);
    ar.field(itinerary);
    ar.field(total);
    ar.field(conn_id);
    ar.field(sent);
    ar.field(hops_done);
  }
  std::string type_name() const override { return "RoamingClientAgent"; }
};
NAPLET_REGISTER_AGENT(RoamingClientAgent);

TEST(AgentApi, StationaryPingPong) {
  probe().reset();
  SimRealm realm(2);

  auto server = std::make_unique<EchoServerAgent>();
  server->expected = 20;
  ASSERT_TRUE(realm.server(1)
                  .launch(std::move(server), agent::AgentId("echo-1"))
                  .ok());

  auto client = std::make_unique<RoamingClientAgent>();
  client->peer_name = "echo-1";
  client->total = 20;
  ASSERT_TRUE(realm.server(0)
                  .launch(std::move(client), agent::AgentId("pinger-1"))
                  .ok());

  ASSERT_TRUE(agent::wait_agent_gone(realm.locations(),
                                     agent::AgentId("pinger-1"), 30s));
  ASSERT_TRUE(agent::wait_agent_gone(realm.locations(),
                                     agent::AgentId("echo-1"), 30s));
  EXPECT_FALSE(probe().error.load()) << probe().last_error;
  EXPECT_EQ(probe().pongs_received.load(), 20);
  EXPECT_FALSE(probe().order_broken.load());
}

TEST(AgentApi, ClientMigratesAcrossThreeServersMidStream) {
  probe().reset();
  SimRealm realm(4);

  auto server = std::make_unique<EchoServerAgent>();
  server->expected = 40;
  ASSERT_TRUE(realm.server(0)
                  .launch(std::move(server), agent::AgentId("echo-2"))
                  .ok());

  auto client = std::make_unique<RoamingClientAgent>();
  client->peer_name = "echo-2";
  client->total = 40;
  client->itinerary = {"node2", "node3", "node1"};
  ASSERT_TRUE(realm.server(1)
                  .launch(std::move(client), agent::AgentId("roamer-2"))
                  .ok());

  ASSERT_TRUE(agent::wait_agent_gone(realm.locations(),
                                     agent::AgentId("roamer-2"), 60s));
  ASSERT_TRUE(agent::wait_agent_gone(realm.locations(),
                                     agent::AgentId("echo-2"), 60s));
  EXPECT_FALSE(probe().error.load()) << probe().last_error;
  EXPECT_EQ(probe().pongs_received.load(), 40);
  EXPECT_EQ(probe().pings_received.load(), 40);
  EXPECT_FALSE(probe().order_broken.load());
}

TEST(AgentApi, ReattachRejectsForeignConnection) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("owner", 0);
  auto bob = realm.pseudo_agent("target", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  // A different agent on the same server must not steal the handle.
  class Thief : public agent::AgentContext {
   public:
    explicit Thief(SimRealm& realm) : realm_(realm), id_("thief") {}
    const agent::AgentId& self() const override { return id_; }
    const std::string& server_name() const override { return name_; }
    std::uint32_t hop_count() const override { return 0; }
    void migrate_to(const std::string&) override {}
    util::Status send_mail(const agent::AgentId&, util::ByteSpan) override {
      return util::OkStatus();
    }
    std::optional<agent::Mail> read_mail(util::Duration) override {
      return std::nullopt;
    }
    agent::LocationService& locations() override {
      return realm_.locations();
    }
    void* service(const std::string& name) override {
      return name == SocketController::kServiceName ? &realm_.ctrl(0)
                                                    : nullptr;
    }

   private:
    SimRealm& realm_;
    agent::AgentId id_;
    std::string name_ = "node0";
  } thief(realm);

  auto stolen = NapletSocket::reattach(thief, conn.client->conn_id());
  EXPECT_FALSE(stolen.ok());
  EXPECT_EQ(stolen.status().code(), util::StatusCode::kPermissionDenied);

  auto missing = NapletSocket::reattach(thief, 0xDEAD);
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace naplet::nsock
