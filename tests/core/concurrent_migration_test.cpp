// Concurrent migration of both connection endpoints (paper §3.1, §3.2):
// overlapped, non-overlapped, multi-connection sweeps, and resume glare.
//
// The overlapped case is made deterministic by shaping the control link
// with enough latency that the two SUS requests always cross in flight.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <thread>

#include "core/test_realm.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

// Find which of two names outranks the other (hash priority).
bool outranks(const std::string& a, const std::string& b) {
  return agent::AgentId(a).outranks(agent::AgentId(b));
}

TEST(ConcurrentMigration, OverlappedBothMigrateAndReestablish) {
  // 25 ms control latency guarantees the SUS messages cross.
  SimRealm realm(4, /*security=*/true, /*link_latency=*/25ms);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  // Queue unread data in both directions: it must survive the double hop.
  ASSERT_TRUE(conn.client->send(span("a->b in flight"), 1s).ok());
  ASSERT_TRUE(conn.server->send(span("b->a in flight"), 1s).ok());

  auto move_alice = std::async(std::launch::async, [&] {
    return realm.migrate_pseudo_agent(alice, 0, 2);
  });
  auto move_bob = std::async(std::launch::async, [&] {
    return realm.migrate_pseudo_agent(bob, 1, 3);
  });
  ASSERT_TRUE(move_alice.get().ok());
  ASSERT_TRUE(move_bob.get().ok());

  SessionPtr alice_side = realm.ctrl(2).session_by_id(conn_id);
  SessionPtr bob_side = realm.ctrl(3).session_by_id(conn_id);
  ASSERT_TRUE(alice_side && bob_side);

  // Both sides end re-established (possibly after the loser's resume).
  ASSERT_TRUE(alice_side->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 10s));
  ASSERT_TRUE(bob_side->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 10s));

  // In-flight data delivered exactly once, and fresh traffic flows.
  auto b_got = bob_side->recv(2s);
  ASSERT_TRUE(b_got.ok());
  EXPECT_EQ(text(b_got->body), "a->b in flight");
  auto a_got = alice_side->recv(2s);
  ASSERT_TRUE(a_got.ok());
  EXPECT_EQ(text(a_got->body), "b->a in flight");

  ASSERT_TRUE(alice_side->send(span("hello from node2"), 2s).ok());
  auto fresh = bob_side->recv(2s);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(text(fresh->body), "hello from node2");
}

TEST(ConcurrentMigration, NonOverlappedSecondMoverWaits) {
  SimRealm realm(4);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  // Alice suspends and "departs" (prepare only; she is now in transit).
  realm.locations().begin_migration(alice);
  ASSERT_TRUE(realm.ctrl(0).prepare_migration(alice).ok());
  conn.server->wait_state(
      [](ConnState s) { return s == ConnState::kSuspended; }, 2s);

  // Bob now decides to migrate: his suspend must park (non-overlapped).
  auto move_bob = std::async(std::launch::async, [&] {
    return realm.migrate_pseudo_agent(bob, 1, 3);
  });
  std::this_thread::sleep_for(100ms);
  EXPECT_NE(move_bob.wait_for(0ms), std::future_status::ready)
      << "bob's migration must wait for alice's to finish";

  // Alice lands; her resume releases bob (RESUME_WAIT), bob migrates,
  // then bob's resume re-establishes the connection.
  const util::Bytes sessions = realm.ctrl(0).export_sessions(alice);
  ASSERT_TRUE(realm.ctrl(2)
                  .import_sessions(alice, util::ByteSpan(sessions.data(),
                                                         sessions.size()))
                  .ok());
  realm.locations().register_agent(alice, realm.server(2).node_info());
  ASSERT_TRUE(realm.ctrl(2).complete_migration(alice).ok());
  ASSERT_TRUE(move_bob.get().ok());

  SessionPtr alice_side = realm.ctrl(2).session_by_id(conn_id);
  SessionPtr bob_side = realm.ctrl(3).session_by_id(conn_id);
  ASSERT_TRUE(alice_side && bob_side);
  ASSERT_TRUE(alice_side->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 10s));
  ASSERT_TRUE(bob_side->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 10s));

  ASSERT_TRUE(alice_side->send(span("we both moved"), 2s).ok());
  auto got = bob_side->recv(2s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "we both moved");
}

TEST(ConcurrentMigration, MultiConnectionSweepBothAgents) {
  // Paper Fig. 5: two connections between the same agent pair; both agents
  // migrate at once. The priority rules serialize the migrations; both
  // connections must survive.
  SimRealm realm(4, /*security=*/true, /*link_latency=*/15ms);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);

  ASSERT_TRUE(realm.ctrl(1).listen(bob).ok());
  auto c1 = realm.ctrl(0).connect(alice, bob);
  auto c2 = realm.ctrl(0).connect(alice, bob);
  ASSERT_TRUE(c1.ok() && c2.ok());
  auto s1 = realm.ctrl(1).accept(bob, 2s);
  auto s2 = realm.ctrl(1).accept(bob, 2s);
  ASSERT_TRUE(s1.ok() && s2.ok());

  ASSERT_TRUE((*c1)->send(span("one"), 1s).ok());
  ASSERT_TRUE((*c2)->send(span("two"), 1s).ok());

  auto move_alice = std::async(std::launch::async, [&] {
    return realm.migrate_pseudo_agent(alice, 0, 2);
  });
  auto move_bob = std::async(std::launch::async, [&] {
    return realm.migrate_pseudo_agent(bob, 1, 3);
  });
  ASSERT_TRUE(move_alice.get().ok());
  ASSERT_TRUE(move_bob.get().ok());

  for (std::uint64_t conn_id : {(*c1)->conn_id(), (*c2)->conn_id()}) {
    SessionPtr alice_side = realm.ctrl(2).session_by_id(conn_id);
    SessionPtr bob_side = realm.ctrl(3).session_by_id(conn_id);
    ASSERT_TRUE(alice_side && bob_side) << conn_id;
    ASSERT_TRUE(alice_side->wait_state(
        [](ConnState s) { return s == ConnState::kEstablished; }, 10s));
    ASSERT_TRUE(bob_side->wait_state(
        [](ConnState s) { return s == ConnState::kEstablished; }, 10s));
  }
  // In-flight data intact on both connections.
  EXPECT_EQ(text(realm.ctrl(3)
                     .session_by_id((*c1)->conn_id())
                     ->recv(2s)
                     ->body),
            "one");
  EXPECT_EQ(text(realm.ctrl(3)
                     .session_by_id((*c2)->conn_id())
                     ->recv(2s)
                     ->body),
            "two");
}

TEST(ConcurrentMigration, ResumeGlareResolvesByPriority) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  // Suspend from one side; both settle SUSPENDED.
  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
  conn.server->wait_state(
      [](ConnState s) { return s == ConnState::kSuspended; }, 2s);

  // Both resume at once; priority breaks the tie.
  auto r1 = std::async(std::launch::async,
                       [&] { return realm.ctrl(0).resume(conn.client); });
  auto r2 = std::async(std::launch::async,
                       [&] { return realm.ctrl(1).resume(conn.server); });
  EXPECT_TRUE(r1.get().ok());
  EXPECT_TRUE(r2.get().ok());
  EXPECT_EQ(conn.client->state(), ConnState::kEstablished);
  EXPECT_EQ(conn.server->state(), ConnState::kEstablished);

  ASSERT_TRUE(conn.client->send(span("glare resolved"), 1s).ok());
  auto got = conn.server->recv(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "glare resolved");
}

TEST(ConcurrentMigration, StressAlternatingAndSimultaneousHops) {
  // Repeated concurrent hops with live traffic: whatever interleaving the
  // scheduler produces (single / overlapped / non-overlapped), the
  // connection must always come back with no loss and no duplication.
  SimRealm realm(4, /*security=*/false, /*link_latency=*/5ms);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  int alice_node = 0, bob_node = 1;
  std::uint64_t messages_sent = 0;

  // Lighter under TSan (see stress_test.cpp); both variants still overlap
  // the two migrations via std::async.
  const int kHopRounds = std::getenv("NAPLET_TSAN_LIGHT") != nullptr ? 2 : 4;
  for (int round = 0; round < kHopRounds; ++round) {
    SessionPtr alice_side = realm.ctrl(alice_node).session_by_id(conn_id);
    ASSERT_TRUE(alice_side);
    ASSERT_TRUE(
        alice_side->send(span("round-" + std::to_string(round)), 2s).ok());
    ++messages_sent;

    const int alice_next = (alice_node + 2) % 4 == bob_node
                               ? (alice_node + 1) % 4
                               : (alice_node + 2) % 4;
    int bob_next = (bob_node + 2) % 4;
    if (bob_next == alice_next) bob_next = (bob_next + 1) % 4;

    auto move_alice = std::async(std::launch::async, [&, alice_next] {
      return realm.migrate_pseudo_agent(alice, alice_node, alice_next);
    });
    auto move_bob = std::async(std::launch::async, [&, bob_next] {
      return realm.migrate_pseudo_agent(bob, bob_node, bob_next);
    });
    ASSERT_TRUE(move_alice.get().ok()) << "round " << round;
    ASSERT_TRUE(move_bob.get().ok()) << "round " << round;
    alice_node = alice_next;
    bob_node = bob_next;

    SessionPtr a = realm.ctrl(alice_node).session_by_id(conn_id);
    SessionPtr b = realm.ctrl(bob_node).session_by_id(conn_id);
    ASSERT_TRUE(a && b) << "round " << round;
    ASSERT_TRUE(a->wait_state(
        [](ConnState s) { return s == ConnState::kEstablished; }, 10s));
    ASSERT_TRUE(b->wait_state(
        [](ConnState s) { return s == ConnState::kEstablished; }, 10s));
  }

  // Drain everything at bob: every round's message, in order, once.
  SessionPtr bob_side = realm.ctrl(bob_node).session_by_id(conn_id);
  ASSERT_TRUE(bob_side);
  for (std::uint64_t i = 0; i < messages_sent; ++i) {
    auto got = bob_side->recv(3s);
    ASSERT_TRUE(got.ok()) << "message " << i;
    EXPECT_EQ(text(got->body), "round-" + std::to_string(i));
  }
  EXPECT_FALSE(bob_side->recv(100ms).ok());
  EXPECT_TRUE(outranks("alice", "bob") || outranks("bob", "alice"));
}

}  // namespace
}  // namespace naplet::nsock
