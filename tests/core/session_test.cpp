#include "core/session.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/wire.hpp"
#include "net/frame.hpp"
#include "net/sim.hpp"

namespace naplet::nsock {
namespace {

using namespace std::chrono_literals;

/// A pair of sessions wired over an in-process stream, both forced into
/// ESTABLISHED (the controller handshake is tested elsewhere).
struct SessionPair {
  net::SimNet net;
  SessionPtr a;
  SessionPtr b;

  SessionPair() {
    auto node_a = net.add_node("a");
    auto node_b = net.add_node("b");
    auto listener = node_b->listen(1);
    EXPECT_TRUE(listener.ok());
    auto client = node_a->connect(net::Endpoint{"b", 1}, 1s);
    EXPECT_TRUE(client.ok());
    auto server = (*listener)->accept(1s);
    EXPECT_TRUE(server.ok());

    a = std::make_shared<Session>(1, 2, true, agent::AgentId("low"),
                                  agent::AgentId("high"));
    b = std::make_shared<Session>(1, 2, false, agent::AgentId("high"),
                                  agent::AgentId("low"));
    a->attach_stream(std::shared_ptr<net::Stream>(std::move(*client)));
    b->attach_stream(std::shared_ptr<net::Stream>(std::move(*server)));
    establish(*a, true);
    establish(*b, false);
  }

  static void establish(Session& s, bool client) {
    if (client) {
      EXPECT_TRUE(s.advance(ConnEvent::kAppConnect).ok());
      EXPECT_TRUE(s.advance(ConnEvent::kRecvConnectAck).ok());
    } else {
      EXPECT_TRUE(s.advance(ConnEvent::kAppListen).ok());
      EXPECT_TRUE(s.advance(ConnEvent::kRecvConnect).ok());
      EXPECT_TRUE(s.advance(ConnEvent::kRecvAttach).ok());
    }
    EXPECT_EQ(s.state(), ConnState::kEstablished);
  }
};

util::ByteSpan span(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

TEST(Session, IdentityAndPriority) {
  Session s(10, 20, true, agent::AgentId("a"), agent::AgentId("b"));
  EXPECT_EQ(s.conn_id(), 10u);
  EXPECT_EQ(s.verifier(), 20u);
  EXPECT_TRUE(s.is_client());
  EXPECT_EQ(s.local_has_priority(),
            agent::AgentId("a").outranks(agent::AgentId("b")));
}

TEST(Session, AdvanceRejectsIllegalTransition) {
  Session s(1, 1, true, agent::AgentId("a"), agent::AgentId("b"));
  EXPECT_EQ(s.state(), ConnState::kClosed);
  auto st = s.advance(ConnEvent::kAppSuspend);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kProtocolError);
  EXPECT_EQ(s.state(), ConnState::kClosed);  // unchanged
}

TEST(Session, SendRecvInOrder) {
  SessionPair pair;
  ASSERT_TRUE(pair.a->send(span("one"), 1s).ok());
  ASSERT_TRUE(pair.a->send(span("two"), 1s).ok());
  auto r1 = pair.b->recv(1s);
  auto r2 = pair.b->recv(1s);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(std::string(r1->body.begin(), r1->body.end()), "one");
  EXPECT_EQ(std::string(r2->body.begin(), r2->body.end()), "two");
  EXPECT_EQ(r1->seq, 1u);
  EXPECT_EQ(r2->seq, 2u);
  EXPECT_FALSE(r1->from_buffer);
}

TEST(Session, BidirectionalTraffic) {
  SessionPair pair;
  ASSERT_TRUE(pair.a->send(span("ping"), 1s).ok());
  auto got = pair.b->recv(1s);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(pair.b->send(span("pong"), 1s).ok());
  auto back = pair.a->recv(1s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(std::string(back->body.begin(), back->body.end()), "pong");
}

TEST(Session, RecvTimesOutWhenIdle) {
  SessionPair pair;
  auto r = pair.b->recv(50ms);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kTimeout);
}

TEST(Session, SequenceCounters) {
  SessionPair pair;
  EXPECT_EQ(pair.a->sent_seq(), 0u);
  ASSERT_TRUE(pair.a->send(span("x"), 1s).ok());
  ASSERT_TRUE(pair.a->send(span("y"), 1s).ok());
  EXPECT_EQ(pair.a->sent_seq(), 2u);
  (void)pair.b->recv(1s);
  EXPECT_GE(pair.b->highest_rx_seq(), 1u);
}

TEST(Session, DrainToMarkBuffersInFlightData) {
  SessionPair pair;
  ASSERT_TRUE(pair.a->send(span("m1"), 1s).ok());
  ASSERT_TRUE(pair.a->send(span("m2"), 1s).ok());
  ASSERT_TRUE(pair.a->send(span("m3"), 1s).ok());
  const std::uint64_t mark = pair.a->sent_seq();

  ASSERT_TRUE(pair.b->drain_to_mark(mark, 2s).ok());
  EXPECT_EQ(pair.b->buffered_frames(), 3u);
  EXPECT_EQ(pair.b->highest_rx_seq(), 3u);

  // Reads now come from the buffer and are flagged as replays.
  pair.b->close_stream();
  auto r = pair.b->recv(1s);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->from_buffer);
  EXPECT_EQ(std::string(r->body.begin(), r->body.end()), "m1");
}

TEST(Session, DrainToMarkZeroIsImmediate) {
  SessionPair pair;
  EXPECT_TRUE(pair.b->drain_to_mark(0, 100ms).ok());
  EXPECT_EQ(pair.b->buffered_frames(), 0u);
}

TEST(Session, DrainTimesOutOnMissingData) {
  SessionPair pair;
  // Claim the peer sent 5 frames when it sent none.
  auto st = pair.b->drain_to_mark(5, 150ms);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kProtocolError);
}

TEST(Session, SendBlocksWhileSuspendedAndResumesAfter) {
  SessionPair pair;
  // Freeze A into a suspended state.
  ASSERT_TRUE(pair.a->advance(ConnEvent::kAppSuspend).ok());
  ASSERT_TRUE(pair.a->advance(ConnEvent::kRecvSusAck).ok());
  EXPECT_EQ(pair.a->state(), ConnState::kSuspended);

  std::atomic<bool> sent{false};
  std::thread sender([&] {
    EXPECT_TRUE(pair.a->send(span("delayed"), 5s).ok());
    sent = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(sent.load());  // blocked in SUSPENDED

  ASSERT_TRUE(pair.a->advance(ConnEvent::kAppResume).ok());
  ASSERT_TRUE(pair.a->advance(ConnEvent::kRecvResumeOk).ok());
  sender.join();
  EXPECT_TRUE(sent.load());
  auto got = pair.b->recv(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->body.begin(), got->body.end()), "delayed");
}

TEST(Session, SendTimesOutIfNeverResumed) {
  SessionPair pair;
  ASSERT_TRUE(pair.a->advance(ConnEvent::kAppSuspend).ok());
  ASSERT_TRUE(pair.a->advance(ConnEvent::kRecvSusAck).ok());
  auto st = pair.a->send(span("never"), 100ms);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kTimeout);
}

TEST(Session, SendFailsOnClosedConnection) {
  SessionPair pair;
  ASSERT_TRUE(pair.a->advance(ConnEvent::kAppClose).ok());
  ASSERT_TRUE(pair.a->advance(ConnEvent::kRecvClsAck).ok());
  auto st = pair.a->send(span("dead"), 1s);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kAborted);
  auto r = pair.a->recv(1s);
  EXPECT_EQ(r.status().code(), util::StatusCode::kAborted);
}

TEST(Session, DuplicateFramesDropped) {
  SessionPair pair;
  // Hand-craft a duplicate: send seq 1 twice through the raw stream.
  auto raw = DataFrame{1, {'d', 'u', 'p'}}.encode();
  // First through the normal path.
  ASSERT_TRUE(pair.a->send(span("dup"), 1s).ok());
  auto first = pair.b->recv(1s);
  ASSERT_TRUE(first.ok());

  // Now replay the same frame seq=1 on the wire: b must drop it.
  // (Grab b's stream indirectly by sending a fresh frame after the dup.)
  // We emulate the replay by exporting/importing state — the imported
  // buffer keeps rx_high, so a stale frame is ignored on the next drain.
  ASSERT_TRUE(pair.a->send(span("next"), 1s).ok());
  auto second = pair.b->recv(1s);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->seq, 2u);
  (void)raw;
}

TEST(Session, ExportImportRoundTrip) {
  SessionPair pair;
  // Buffer some undelivered data, then suspend a's view of the world.
  ASSERT_TRUE(pair.b->send(span("in-flight-1"), 1s).ok());
  ASSERT_TRUE(pair.b->send(span("in-flight-2"), 1s).ok());
  ASSERT_TRUE(pair.a->drain_to_mark(pair.b->sent_seq(), 2s).ok());
  ASSERT_TRUE(pair.a->advance(ConnEvent::kAppSuspend).ok());
  ASSERT_TRUE(pair.a->advance(ConnEvent::kRecvSusAck).ok());
  pair.a->close_stream();
  pair.a->set_peer_node(agent::NodeInfo{
      "beta", {"beta", 1}, {"beta", 2}, {"beta", 3}});
  pair.a->update_flags([](Session::Flags& f) {
    f.remote_suspended = true;
    f.peer_declared_seq = 2;
  });

  const util::Bytes blob = pair.a->export_state();
  auto imported = Session::import_state(util::ByteSpan(blob.data(), blob.size()));
  ASSERT_TRUE(imported.ok());
  Session& s = **imported;
  EXPECT_EQ(s.conn_id(), pair.a->conn_id());
  EXPECT_EQ(s.verifier(), pair.a->verifier());
  EXPECT_EQ(s.is_client(), pair.a->is_client());
  EXPECT_EQ(s.local_agent(), pair.a->local_agent());
  EXPECT_EQ(s.peer_agent(), pair.a->peer_agent());
  EXPECT_EQ(s.state(), ConnState::kSuspended);
  EXPECT_EQ(s.peer_node().server_name, "beta");
  EXPECT_EQ(s.buffered_frames(), 2u);
  EXPECT_EQ(s.sent_seq(), pair.a->sent_seq());
  EXPECT_EQ(s.highest_rx_seq(), pair.a->highest_rx_seq());
  EXPECT_TRUE(s.flags().remote_suspended);
  EXPECT_EQ(s.flags().peer_declared_seq, 2u);

  // The buffered frames replay in order and are flagged as buffer reads.
  auto r1 = s.recv(100ms);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->from_buffer);
  EXPECT_EQ(std::string(r1->body.begin(), r1->body.end()), "in-flight-1");
}

TEST(Session, ImportRejectsGarbage) {
  const util::Bytes junk = {1, 2, 3};
  EXPECT_FALSE(Session::import_state(util::ByteSpan(junk.data(), junk.size()))
                   .ok());
  EXPECT_FALSE(Session::import_state({}).ok());
}

TEST(Session, SessionKeyRoundTripsThroughExport) {
  SessionPair pair;
  pair.a->set_session_key(util::Bytes(32, 0xAB));
  ASSERT_TRUE(pair.a->advance(ConnEvent::kAppSuspend).ok());
  ASSERT_TRUE(pair.a->advance(ConnEvent::kRecvSusAck).ok());
  pair.a->close_stream();
  const util::Bytes blob = pair.a->export_state();
  auto imported = Session::import_state(util::ByteSpan(blob.data(), blob.size()));
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ((*imported)->session_key(), util::Bytes(32, 0xAB));
}

TEST(Session, LargeMessages) {
  SessionPair pair;
  util::Bytes big(256 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i);
  }
  std::thread sender([&] {
    EXPECT_TRUE(
        pair.a->send(util::ByteSpan(big.data(), big.size()), 5s).ok());
  });
  auto got = pair.b->recv(5s);
  sender.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->body, big);
}

/// A session attached to one end of a stream while the peer end stays raw,
/// so tests can parse exactly the bytes the session puts on the wire.
struct RawWirePair {
  net::SimNet net;
  SessionPtr a;
  net::StreamPtr raw;  // peer end, read manually

  RawWirePair() {
    auto node_a = net.add_node("a");
    auto node_b = net.add_node("b");
    auto listener = node_b->listen(1);
    EXPECT_TRUE(listener.ok());
    auto client = node_a->connect(net::Endpoint{"b", 1}, 1s);
    EXPECT_TRUE(client.ok());
    auto server = (*listener)->accept(1s);
    EXPECT_TRUE(server.ok());
    a = std::make_shared<Session>(7, 2, true, agent::AgentId("low"),
                                  agent::AgentId("high"));
    a->attach_stream(std::shared_ptr<net::Stream>(std::move(*client)));
    raw = std::move(*server);
    SessionPair::establish(*a, true);
  }

  /// Read one length-prefixed data frame off the raw end and decode it.
  DataFrame next_frame() {
    auto bytes = net::read_frame(*raw);
    EXPECT_TRUE(bytes.ok()) << bytes.status().to_string();
    auto frame =
        DataFrame::decode(util::ByteSpan(bytes->data(), bytes->size()));
    EXPECT_TRUE(frame.ok()) << frame.status().to_string();
    return *frame;
  }
};

TEST(Retransmit, ReplaysIdenticalVectoredFramesFromHistory) {
  RawWirePair wire;
  wire.a->enable_history(1 << 20);
  ASSERT_TRUE(wire.a->send(span("alpha"), 1s).ok());
  ASSERT_TRUE(wire.a->send(span("bravo"), 1s).ok());

  // Original transmission: gather-written, but byte-identical on the wire
  // to the seed's single-buffer framing.
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    DataFrame f = wire.next_frame();
    EXPECT_EQ(f.seq, seq);
  }

  // Replay everything after seq 0: the same two frames, same framing.
  ASSERT_TRUE(wire.a->retransmit_after(0).ok());
  DataFrame r1 = wire.next_frame();
  DataFrame r2 = wire.next_frame();
  EXPECT_EQ(r1.seq, 1u);
  EXPECT_EQ(std::string(r1.body.begin(), r1.body.end()), "alpha");
  EXPECT_EQ(r2.seq, 2u);
  EXPECT_EQ(std::string(r2.body.begin(), r2.body.end()), "bravo");

  // Partial replay honours the cursor: only seq 2 goes out again.
  ASSERT_TRUE(wire.a->retransmit_after(1).ok());
  DataFrame r3 = wire.next_frame();
  EXPECT_EQ(r3.seq, 2u);
  EXPECT_EQ(std::string(r3.body.begin(), r3.body.end()), "bravo");
}

TEST(Retransmit, EmptyWindowIsNoOp) {
  SessionPair pair;
  pair.a->enable_history(1 << 20);
  // Nothing sent yet: replay-from-zero succeeds without touching the wire.
  EXPECT_TRUE(pair.a->retransmit_after(0).ok());

  ASSERT_TRUE(pair.a->send(span("x"), 1s).ok());
  ASSERT_TRUE(pair.b->recv(1s).ok());

  // after_seq at or past the send cursor: nothing to replay.
  EXPECT_TRUE(pair.a->retransmit_after(pair.a->sent_seq()).ok());
  EXPECT_TRUE(pair.a->retransmit_after(pair.a->sent_seq() + 5).ok());
  // The peer saw exactly the one original frame.
  EXPECT_FALSE(pair.b->recv(100ms).ok());
}

TEST(Retransmit, EvictedWindowReportsOutOfRange) {
  SessionPair pair;
  pair.a->enable_history(8);  // tiny: a second 6-byte frame evicts the first
  ASSERT_TRUE(pair.a->send(span("first!"), 1s).ok());
  ASSERT_TRUE(pair.a->send(span("second"), 1s).ok());
  auto st = pair.a->retransmit_after(0);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kOutOfRange);
}

TEST(Session, SteadyStateSendIsZeroCopy) {
  // Acceptance: with history disabled (the steady-state data path), a send
  // must not copy the payload — the caller's span is gather-written with a
  // stack-encoded header, one transport op per message.
  SessionPair pair;
  ASSERT_FALSE(pair.a->history_enabled());
  const util::Bytes payload(512, 0x5A);
  constexpr std::uint64_t kCount = 64;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        pair.a->send(util::ByteSpan(payload.data(), payload.size()), 1s).ok());
    ASSERT_TRUE(pair.b->recv(1s).ok());
  }
  const DataPathStats tx = pair.a->data_stats();
  EXPECT_EQ(tx.payload_bytes_copied, 0u);
  EXPECT_EQ(tx.stream_write_ops, kCount);

  // With history on, the only copy per message is the retained body.
  pair.a->enable_history(1 << 20);
  ASSERT_TRUE(
      pair.a->send(util::ByteSpan(payload.data(), payload.size()), 1s).ok());
  ASSERT_TRUE(pair.b->recv(1s).ok());
  const DataPathStats tx2 = pair.a->data_stats();
  EXPECT_EQ(tx2.payload_bytes_copied, payload.size());
  EXPECT_EQ(tx2.stream_write_ops, kCount + 1);
}

TEST(Session, PeerNodeUpdates) {
  Session s(1, 1, true, agent::AgentId("a"), agent::AgentId("b"));
  EXPECT_EQ(s.peer_node().server_name, "");
  s.set_peer_node(agent::NodeInfo{"x", {"x", 1}, {"x", 2}, {"x", 3}});
  EXPECT_EQ(s.peer_node().server_name, "x");
}

}  // namespace
}  // namespace naplet::nsock
