// Single-endpoint connection migration: one agent moves between nodes
// while the other stays put; the connection must survive transparently
// with exactly-once delivery of everything in flight (paper §2.1, §3.1).
#include <gtest/gtest.h>

#include <thread>

#include "core/test_realm.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

TEST(Migration, ConnectionSurvivesOneHop) {
  SimRealm realm(3);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);
  const std::uint64_t conn_id = conn.client->conn_id();

  ASSERT_TRUE(realm.migrate_pseudo_agent(bob, 1, 2).ok());

  // The session moved controllers and re-established.
  EXPECT_EQ(realm.ctrl(1).session_count(), 0u);
  SessionPtr moved = realm.ctrl(2).session_by_id(conn_id);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->state(), ConnState::kEstablished);
  // The stationary responder advances to ESTABLISHED immediately after
  // sending RESUME_OK; allow that last step to land.
  ASSERT_TRUE(conn.client->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 2s));
  // The stationary side learned bob's new location.
  EXPECT_EQ(conn.client->peer_node().server_name, "node2");

  // Traffic flows in both directions after the hop.
  ASSERT_TRUE(conn.client->send(span("to-new-home"), 1s).ok());
  auto got = moved->recv(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "to-new-home");
  ASSERT_TRUE(moved->send(span("settled"), 1s).ok());
  auto back = conn.client->recv(1s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(text(back->body), "settled");
}

TEST(Migration, InFlightDataDeliveredExactlyOnceAfterHop) {
  SimRealm realm(3);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  // Alice fires messages that bob never reads before migrating: they are
  // "in transmission" and must travel with the agent in its input buffer.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(conn.client->send(span("msg-" + std::to_string(i)), 1s).ok());
  }
  ASSERT_TRUE(realm.migrate_pseudo_agent(bob, 1, 2).ok());

  SessionPtr moved = realm.ctrl(2).session_by_id(conn_id);
  ASSERT_NE(moved, nullptr);
  ASSERT_TRUE(conn.client->send(span("msg-5"), 1s).ok());

  // All six messages arrive, in order, exactly once; the first five from
  // the migrated buffer, the sixth from the new socket.
  for (int i = 0; i < 6; ++i) {
    auto got = moved->recv(2s);
    ASSERT_TRUE(got.ok()) << "message " << i << ": "
                          << got.status().to_string();
    EXPECT_EQ(text(got->body), "msg-" + std::to_string(i));
    if (i < 5) {
      EXPECT_TRUE(got->from_buffer) << "message " << i;
    } else {
      EXPECT_FALSE(got->from_buffer);
    }
  }
  EXPECT_FALSE(moved->recv(100ms).ok());  // nothing extra (exactly once)
}

TEST(Migration, ClientSideCanMigrateToo) {
  SimRealm realm(3);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  ASSERT_TRUE(conn.server->send(span("catch me"), 1s).ok());
  ASSERT_TRUE(realm.migrate_pseudo_agent(alice, 0, 2).ok());

  SessionPtr moved = realm.ctrl(2).session_by_id(conn_id);
  ASSERT_NE(moved, nullptr);
  auto got = moved->recv(2s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "catch me");
  EXPECT_EQ(conn.server->peer_node().server_name, "node2");
}

TEST(Migration, MultipleHopsSequentially) {
  SimRealm realm(4);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  const std::uint64_t conn_id = conn.client->conn_id();

  int hop_targets[] = {2, 3, 1};
  int from = 1;
  for (int to : hop_targets) {
    ASSERT_TRUE(conn.client->send(span("hop"), 1s).ok());
    ASSERT_TRUE(realm.migrate_pseudo_agent(bob, from, to).ok());
    from = to;
    SessionPtr moved = realm.ctrl(to).session_by_id(conn_id);
    ASSERT_NE(moved, nullptr);
    auto got = moved->recv(2s);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(text(got->body), "hop");
  }
  EXPECT_EQ(conn.client->sent_seq(), 3u);
}

TEST(Migration, MultipleConnectionsAllMigrate) {
  SimRealm realm(3);
  auto alice = realm.pseudo_agent("alice", 0);
  auto carol = realm.pseudo_agent("carol", 0);
  auto bob = realm.pseudo_agent("bob", 1);

  ConnPair c1 = make_connection(realm, alice, 0, bob, 1);
  auto c2_client = realm.ctrl(0).connect(carol, bob);
  ASSERT_TRUE(c2_client.ok());
  auto c2_server = realm.ctrl(1).accept(bob, 2s);
  ASSERT_TRUE(c2_server.ok());

  ASSERT_TRUE(c1.client->send(span("a->b"), 1s).ok());
  ASSERT_TRUE((*c2_client)->send(span("c->b"), 1s).ok());

  ASSERT_TRUE(realm.migrate_pseudo_agent(bob, 1, 2).ok());
  EXPECT_EQ(realm.ctrl(2).session_count(), 2u);

  SessionPtr m1 = realm.ctrl(2).session_by_id(c1.client->conn_id());
  SessionPtr m2 = realm.ctrl(2).session_by_id((*c2_client)->conn_id());
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(text(m1->recv(2s)->body), "a->b");
  EXPECT_EQ(text(m2->recv(2s)->body), "c->b");
  EXPECT_EQ(c1.client->peer_node().server_name, "node2");
  EXPECT_EQ((*c2_client)->peer_node().server_name, "node2");
}

TEST(Migration, SuspendedStateBlocksTrafficDuringHop) {
  SimRealm realm(3);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  // Manually run only the first half of the migration.
  realm.locations().begin_migration(bob);
  ASSERT_TRUE(realm.ctrl(1).prepare_migration(bob).ok());
  EXPECT_EQ(conn.server->state(), ConnState::kSuspended);
  conn.client->wait_state(
      [](ConnState s) { return s == ConnState::kSuspended; }, 2s);

  // Sends on the stationary side block while suspended.
  auto st = conn.client->send(span("blocked"), 150ms);
  EXPECT_EQ(st.code(), util::StatusCode::kTimeout);

  // Finish the hop; the blocked writer's retry path now succeeds.
  const util::Bytes sessions = realm.ctrl(1).export_sessions(bob);
  ASSERT_TRUE(realm.ctrl(2)
                  .import_sessions(bob, util::ByteSpan(sessions.data(),
                                                       sessions.size()))
                  .ok());
  realm.locations().register_agent(bob, realm.server(2).node_info());
  ASSERT_TRUE(realm.ctrl(2).complete_migration(bob).ok());
  ASSERT_TRUE(conn.client->send(span("unblocked"), 2s).ok());
}

TEST(Migration, ExportRemovesImportRestores) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  realm.locations().begin_migration(bob);
  ASSERT_TRUE(realm.ctrl(1).prepare_migration(bob).ok());
  const util::Bytes blob = realm.ctrl(1).export_sessions(bob);
  EXPECT_EQ(realm.ctrl(1).session_count(), 0u);
  EXPECT_FALSE(blob.empty());

  // Import back into the same node (a degenerate "hop").
  ASSERT_TRUE(realm.ctrl(1)
                  .import_sessions(bob, util::ByteSpan(blob.data(),
                                                       blob.size()))
                  .ok());
  realm.locations().register_agent(bob, realm.server(1).node_info());
  EXPECT_EQ(realm.ctrl(1).session_count(), 1u);
  ASSERT_TRUE(realm.ctrl(1).complete_migration(bob).ok());
  ASSERT_TRUE(conn.client->wait_state(
      [](ConnState s) { return s == ConnState::kEstablished; }, 2s));
}

TEST(Migration, ImportRejectsForeignSessions) {
  SimRealm realm(2);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  (void)conn;

  realm.locations().begin_migration(bob);
  ASSERT_TRUE(realm.ctrl(1).prepare_migration(bob).ok());
  const util::Bytes blob = realm.ctrl(1).export_sessions(bob);
  // Importing under the wrong agent id must fail.
  auto st = realm.ctrl(0).import_sessions(
      agent::AgentId("mallory"), util::ByteSpan(blob.data(), blob.size()));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kProtocolError);
}

TEST(Migration, EmptyExportForConnectionlessAgent) {
  SimRealm realm(2);
  auto loner = realm.pseudo_agent("loner", 0);
  ASSERT_TRUE(realm.ctrl(0).prepare_migration(loner).ok());
  const util::Bytes blob = realm.ctrl(0).export_sessions(loner);
  // count == 0 encoding
  ASSERT_TRUE(realm.ctrl(1)
                  .import_sessions(loner, util::ByteSpan(blob.data(),
                                                         blob.size()))
                  .ok());
  EXPECT_TRUE(realm.ctrl(1).complete_migration(loner).ok());
}

}  // namespace
}  // namespace naplet::nsock
