// Byte-stream adapters over NapletSocket (the paper's Java-stream-like
// interface): buffering writes, boundary-crossing reads, and persistence
// of the unread tail across a migration hop.
#include <gtest/gtest.h>

#include "core/streams.hpp"
#include "core/test_realm.hpp"

namespace naplet::nsock {
namespace {

using namespace naplet::nsock::testing;

struct StreamPair {
  SimRealm realm{2, /*security=*/false};
  std::unique_ptr<NapletSocket> tx;
  std::unique_ptr<NapletSocket> rx;

  StreamPair() {
    auto alice = realm.pseudo_agent("alice", 0);
    auto bob = realm.pseudo_agent("bob", 1);
    ConnPair conn = make_connection(realm, alice, 0, bob, 1);
    tx = std::make_unique<NapletSocket>(realm.ctrl(0), conn.client);
    rx = std::make_unique<NapletSocket>(realm.ctrl(1), conn.server);
  }
};

TEST(Streams, WriteBuffersUntilFlush) {
  StreamPair pair;
  NapletOutputStream out;
  out.bind(pair.tx.get());

  ASSERT_TRUE(out.write("hello ").ok());
  ASSERT_TRUE(out.write("world").ok());
  EXPECT_EQ(out.buffered(), 11u);
  // Nothing sent yet.
  EXPECT_FALSE(pair.rx->recv(50ms).ok());

  ASSERT_TRUE(out.flush().ok());
  EXPECT_EQ(out.buffered(), 0u);
  auto got = pair.rx->recv(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "hello world");
}

TEST(Streams, AutoFlushAtThreshold) {
  StreamPair pair;
  NapletOutputStream out(/*flush_threshold=*/16);
  out.bind(pair.tx.get());
  ASSERT_TRUE(out.write(std::string(20, 'x')).ok());  // crosses threshold
  EXPECT_EQ(out.buffered(), 0u);
  auto got = pair.rx->recv(1s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->body.size(), 20u);
}

TEST(Streams, FlushEmptyIsNoop) {
  StreamPair pair;
  NapletOutputStream out;
  out.bind(pair.tx.get());
  EXPECT_TRUE(out.flush().ok());
  EXPECT_FALSE(pair.rx->recv(50ms).ok());
}

TEST(Streams, UnboundStreamsFailCleanly) {
  NapletOutputStream out;
  EXPECT_TRUE(out.write("buffered fine").ok());
  EXPECT_EQ(out.flush().code(), util::StatusCode::kFailedPrecondition);

  NapletInputStream in;
  std::uint8_t buf[4];
  EXPECT_EQ(in.read(buf, 4, 10ms).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(Streams, ReadAcrossMessageBoundaries) {
  StreamPair pair;
  ASSERT_TRUE(pair.tx->send(std::string_view("abcdef")).ok());
  ASSERT_TRUE(pair.tx->send(std::string_view("ghij")).ok());

  NapletInputStream in;
  in.bind(pair.rx.get());

  std::uint8_t buf[4];
  auto n1 = in.read(buf, 4, 1s);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(*n1, 4u);
  EXPECT_EQ(std::string(buf, buf + 4), "abcd");
  EXPECT_EQ(in.buffered(), 2u);  // "ef" held

  auto n2 = in.read(buf, 4, 1s);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 2u);  // tail served without blocking
  EXPECT_EQ(std::string(buf, buf + 2), "ef");

  ASSERT_TRUE(in.read_exact(buf, 4, 1s).ok());
  EXPECT_EQ(std::string(buf, buf + 4), "ghij");
}

TEST(Streams, ReadExactTimesOutOnShortData) {
  StreamPair pair;
  ASSERT_TRUE(pair.tx->send(std::string_view("ab")).ok());
  NapletInputStream in;
  in.bind(pair.rx.get());
  std::uint8_t buf[8];
  auto st = in.read_exact(buf, 8, 150ms);
  EXPECT_EQ(st.code(), util::StatusCode::kTimeout);
}

TEST(Streams, TailPersistsAcrossReconstruction) {
  StreamPair pair;
  ASSERT_TRUE(pair.tx->send(std::string_view("0123456789")).ok());

  NapletInputStream in;
  in.bind(pair.rx.get());
  std::uint8_t buf[4];
  ASSERT_TRUE(in.read_exact(buf, 4, 1s).ok());  // "0123"; tail "456789"
  EXPECT_EQ(in.buffered(), 6u);

  // Simulate a hop: persist the adapter, rebuild it, rebind.
  util::Archive w;
  in.persist(w);
  util::Bytes blob = std::move(w).take_bytes();

  NapletInputStream restored;
  util::Archive r((util::ByteSpan(blob.data(), blob.size())));
  restored.persist(r);
  ASSERT_TRUE(r.ok());
  restored.bind(pair.rx.get());
  EXPECT_EQ(restored.buffered(), 6u);

  std::uint8_t rest[6];
  ASSERT_TRUE(restored.read_exact(rest, 6, 1s).ok());
  EXPECT_EQ(std::string(rest, rest + 6), "456789");
}

TEST(Streams, PersistCarriesOnlyUnreadTail) {
  // A migrating agent must not ship bytes it already consumed: the persist
  // blob holds the unread suffix of the tail, not the whole last message.
  StreamPair pair;
  std::string msg(1000, 'A');
  msg += "tail";
  ASSERT_TRUE(pair.tx->send(std::string_view(msg)).ok());

  NapletInputStream in;
  in.bind(pair.rx.get());
  std::uint8_t consumed[1000];
  ASSERT_TRUE(in.read_exact(consumed, sizeof consumed, 1s).ok());
  EXPECT_EQ(in.buffered(), 4u);  // "tail"

  util::Archive w;
  in.persist(w);
  util::Bytes blob = std::move(w).take_bytes();
  // 4 unread bytes + fixed framing overhead — nowhere near the 1004-byte
  // message that was mostly consumed.
  EXPECT_LT(blob.size(), 64u);

  NapletInputStream restored;
  util::Archive r((util::ByteSpan(blob.data(), blob.size())));
  restored.persist(r);
  ASSERT_TRUE(r.ok());
  restored.bind(pair.rx.get());
  EXPECT_EQ(restored.buffered(), 4u);
  std::uint8_t rest[4];
  ASSERT_TRUE(restored.read_exact(rest, 4, 1s).ok());
  EXPECT_EQ(std::string(rest, rest + 4), "tail");
}

TEST(Streams, OutputPersistCarriesUnflushed) {
  NapletOutputStream out(4096);
  ASSERT_TRUE(out.write("keep me").ok());
  util::Archive w;
  out.persist(w);
  util::Bytes blob = std::move(w).take_bytes();

  NapletOutputStream restored;
  util::Archive r((util::ByteSpan(blob.data(), blob.size())));
  restored.persist(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(restored.buffered(), 7u);
}

TEST(Streams, RoundTripLargePayloadInSmallReads) {
  StreamPair pair;
  std::string big(10000, '?');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + i % 26);
  }
  NapletOutputStream out(/*flush_threshold=*/1024);
  out.bind(pair.tx.get());
  ASSERT_TRUE(out.write(big).ok());
  ASSERT_TRUE(out.flush().ok());

  NapletInputStream in;
  in.bind(pair.rx.get());
  std::string received(big.size(), 0);
  ASSERT_TRUE(in.read_exact(reinterpret_cast<std::uint8_t*>(received.data()),
                            received.size(), 5s)
                  .ok());
  EXPECT_EQ(received, big);
}

TEST(ControllerStatsTest, SnapshotReflectsSessions) {
  SimRealm realm(2, /*security=*/true);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  ControllerStats stats = realm.ctrl(0).stats();
  EXPECT_EQ(stats.sessions, 1u);
  EXPECT_EQ(stats.by_state[static_cast<std::size_t>(ConnState::kEstablished)],
            1u);
  EXPECT_EQ(stats.migrating_agents, 0u);
  EXPECT_GT(stats.ctrl_messages_sent, 0u);
  EXPECT_FALSE(stats.to_string().empty());

  ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
  stats = realm.ctrl(0).stats();
  EXPECT_EQ(stats.by_state[static_cast<std::size_t>(ConnState::kSuspended)],
            1u);

  ASSERT_TRUE(realm.ctrl(1).listen(bob).code() ==
              util::StatusCode::kAlreadyExists);
  EXPECT_EQ(realm.ctrl(1).stats().listening_agents, 1u);
}

}  // namespace
}  // namespace naplet::nsock
