#include "sim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace naplet::sim {
namespace {

TEST(Des, StartsAtZero) {
  Simulator des;
  EXPECT_EQ(des.now(), 0.0);
  EXPECT_TRUE(des.empty());
}

TEST(Des, EventsRunInTimeOrder) {
  Simulator des;
  std::vector<int> order;
  des.schedule_at(30, [&] { order.push_back(3); });
  des.schedule_at(10, [&] { order.push_back(1); });
  des.schedule_at(20, [&] { order.push_back(2); });
  des.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(des.now(), 30.0);
  EXPECT_EQ(des.events_processed(), 3u);
}

TEST(Des, SimultaneousEventsFifo) {
  Simulator des;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    des.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  des.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Des, ScheduleInIsRelative) {
  Simulator des;
  double fired_at = -1;
  des.schedule_at(10, [&] {
    des.schedule_in(5, [&] { fired_at = des.now(); });
  });
  des.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Des, RunUntilStopsAtBoundary) {
  Simulator des;
  int fired = 0;
  des.schedule_at(10, [&] { ++fired; });
  des.schedule_at(20, [&] { ++fired; });
  des.schedule_at(30, [&] { ++fired; });
  des.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(des.now(), 20.0);
  des.run();
  EXPECT_EQ(fired, 3);
}

TEST(Des, RunUntilAdvancesTimeWithNoEvents) {
  Simulator des;
  des.run_until(100);
  EXPECT_EQ(des.now(), 100.0);
}

TEST(Des, HandlersCanChainIndefinitely) {
  Simulator des;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    des.schedule_in(1, tick);
  };
  des.schedule_in(1, tick);
  des.run_until(50);
  EXPECT_EQ(count, 50);
}

TEST(Des, NegativeDelayClampedToNow) {
  Simulator des;
  double fired_at = -1;
  des.schedule_at(10, [&] {
    des.schedule_in(-5, [&] { fired_at = des.now(); });
  });
  des.run();
  EXPECT_EQ(fired_at, 10.0);
}

}  // namespace
}  // namespace naplet::sim
