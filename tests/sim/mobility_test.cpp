#include "sim/mobility.hpp"

#include <gtest/gtest.h>

namespace naplet::sim {
namespace {

MobilityConfig config_with(double mean_a, double mean_b,
                           std::uint64_t seed = 1) {
  MobilityConfig config;
  config.mean_service_a_ms = mean_a;
  config.mean_service_b_ms = mean_b;
  config.rounds = 20000;
  config.seed = seed;
  return config;
}

TEST(Mobility, Deterministic) {
  const MobilityResult r1 = simulate_mobility(config_with(200, 200, 7));
  const MobilityResult r2 = simulate_mobility(config_with(200, 200, 7));
  EXPECT_EQ(r1.low.migrations, r2.low.migrations);
  EXPECT_DOUBLE_EQ(r1.low.total_cost_ms, r2.low.total_cost_ms);
  EXPECT_DOUBLE_EQ(r1.high.total_cost_ms, r2.high.total_cost_ms);
}

TEST(Mobility, RoundsAreAccounted) {
  const MobilityConfig config = config_with(300, 300);
  const MobilityResult r = simulate_mobility(config);
  EXPECT_GE(r.low.migrations + r.high.migrations, config.rounds);
  EXPECT_EQ(r.low.migrations,
            r.low.single + r.low.overlapped + r.low.non_overlapped);
  EXPECT_EQ(r.high.migrations,
            r.high.single + r.high.overlapped + r.high.non_overlapped);
}

TEST(Mobility, HighPriorityCostNearConstant) {
  // Paper Fig. 12(a): the high-priority agent's cost stays ~Tsus+Tres
  // across service times (its suspend is never delayed).
  const CostModel model;
  for (double mean : {100.0, 500.0, 1000.0, 2000.0}) {
    const MobilityResult r = simulate_mobility(config_with(mean, mean));
    EXPECT_NEAR(r.high.mean_cost_ms(), model.single_cost(), 3.0)
        << "mean service " << mean;
  }
}

TEST(Mobility, LowPriorityPaysMoreAtHighMigrationRates) {
  // Paper Fig. 12(b): at small service times the low-priority agent is
  // delayed by concurrent migrations; at large service times the cost
  // converges to the single-migration value.
  const CostModel model;
  const MobilityResult fast = simulate_mobility(config_with(50, 50));
  const MobilityResult slow = simulate_mobility(config_with(5000, 5000));
  EXPECT_GT(fast.low.mean_cost_ms(), slow.low.mean_cost_ms());
  EXPECT_NEAR(slow.low.mean_cost_ms(), model.single_cost(), 1.5);
  EXPECT_GT(fast.low.overlapped + fast.low.non_overlapped,
            slow.low.overlapped + slow.low.non_overlapped);
}

TEST(Mobility, ConcurrencyVanishesAtLongDwellTimes) {
  const MobilityResult r = simulate_mobility(config_with(20000, 20000));
  const double concurrent_fraction =
      static_cast<double>(r.low.overlapped + r.low.non_overlapped) /
      static_cast<double>(std::max<std::uint64_t>(1, r.low.migrations));
  EXPECT_LT(concurrent_fraction, 0.02);
}

TEST(Mobility, FasterPeerIncreasesConcurrencyForLowAgent) {
  // Paper: raising mu_b/mu_a means B migrates more often, so A's suspends
  // meet ongoing B-migrations more often.
  const MobilityResult balanced = simulate_mobility(config_with(600, 600));
  const MobilityResult fast_b = simulate_mobility(config_with(600, 200));
  const auto concurrent = [](const AgentStats& s) {
    return static_cast<double>(s.overlapped + s.non_overlapped) /
           static_cast<double>(std::max<std::uint64_t>(1, s.migrations));
  };
  EXPECT_GT(concurrent(fast_b.low), concurrent(balanced.low));
}

TEST(Mobility, AsymmetricRatesMigrationCounts) {
  // With B three times faster, B completes roughly 3x the migrations.
  const MobilityResult r = simulate_mobility(config_with(900, 300));
  const double ratio = static_cast<double>(r.high.migrations) /
                       static_cast<double>(r.low.migrations);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(Mobility, CostsBoundedByModelExtremes) {
  const CostModel model;
  const MobilityResult r = simulate_mobility(config_with(100, 100));
  // Low agent's mean must lie between the single cost and the worst
  // overlapped penalty.
  EXPECT_GE(r.low.mean_cost_ms(),
            model.non_overlapped_second_cost(model.params().t_control_ms) -
                1.0);
  EXPECT_LE(r.low.mean_cost_ms(),
            model.overlapped_low_cost(model.params().t_control_ms) + 1.0);
}

}  // namespace
}  // namespace naplet::sim
