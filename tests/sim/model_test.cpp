#include "sim/model.hpp"

#include <gtest/gtest.h>

namespace naplet::sim {
namespace {

TEST(CostModel, DefaultsMatchPaperMeasurements) {
  const CostModel model;
  EXPECT_DOUBLE_EQ(model.params().t_control_ms, 10.0);
  EXPECT_DOUBLE_EQ(model.params().t_suspend_ms, 27.8);
  EXPECT_DOUBLE_EQ(model.params().t_resume_ms, 16.9);
  EXPECT_DOUBLE_EQ(model.params().t_agent_migrate_ms, 220.0);
}

TEST(CostModel, SingleCostIsEquationOne) {
  const CostModel model;
  EXPECT_DOUBLE_EQ(model.single_cost(), 27.8 + 16.9);
}

TEST(CostModel, ClassificationWindows) {
  const CostModel model;
  EXPECT_EQ(model.classify(0.0), MigrationCase::kOverlapped);
  EXPECT_EQ(model.classify(9.99), MigrationCase::kOverlapped);
  EXPECT_EQ(model.classify(10.0), MigrationCase::kNonOverlapped);
  EXPECT_EQ(model.classify(27.0), MigrationCase::kNonOverlapped);
  EXPECT_EQ(model.classify(27.8), MigrationCase::kSingle);
  EXPECT_EQ(model.classify(1000.0), MigrationCase::kSingle);
}

TEST(CostModel, OverlappedHighEqualsSingle) {
  const CostModel model;
  EXPECT_DOUBLE_EQ(model.overlapped_high_cost(), model.single_cost());
}

TEST(CostModel, OverlappedLowIsEquationThreePlusResume) {
  const CostModel model;
  // Eq. (3): Tsuspend_low = Tcontrol + Tsuspend + tau; plus resume.
  EXPECT_DOUBLE_EQ(model.overlapped_low_cost(5.0), 10.0 + 27.8 + 5.0 + 16.9);
  // Low side always pays at least a control-message of extra latency.
  EXPECT_GT(model.overlapped_low_cost(0.0), model.single_cost());
}

TEST(CostModel, NonOverlappedSecondIsEquationFour) {
  const CostModel model;
  EXPECT_DOUBLE_EQ(model.non_overlapped_second_cost(12.0), 16.9 + 10.0 + 12.0);
  EXPECT_DOUBLE_EQ(model.non_overlapped_first_cost(), model.single_cost());
}

TEST(CostModel, DipBelowSingleJustPastControlLatency) {
  // Paper §5.2: "the lowest latency ... happens around the point where
  // their starting time interval tau is larger than Tcontrol".
  const CostModel model;
  const double tau = model.params().t_control_ms + 1.0;  // 11 ms
  EXPECT_EQ(model.classify(tau), MigrationCase::kNonOverlapped);
  EXPECT_LT(model.non_overlapped_second_cost(tau), model.single_cost());
}

TEST(CostModel, CustomParameters) {
  CostParams params;
  params.t_control_ms = 1;
  params.t_suspend_ms = 2;
  params.t_resume_ms = 3;
  const CostModel model(params);
  EXPECT_DOUBLE_EQ(model.single_cost(), 5.0);
  EXPECT_EQ(model.classify(0.5), MigrationCase::kOverlapped);
  EXPECT_EQ(model.classify(1.5), MigrationCase::kNonOverlapped);
  EXPECT_EQ(model.classify(2.5), MigrationCase::kSingle);
}

}  // namespace
}  // namespace naplet::sim
