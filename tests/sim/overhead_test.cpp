#include "sim/overhead.hpp"

#include <gtest/gtest.h>

namespace naplet::sim {
namespace {

OverheadConfig config_with(double lambda, double r, std::uint64_t seed = 3) {
  OverheadConfig config;
  config.message_rate = lambda;
  config.relative_rate = r;
  config.sim_time = 20000;
  config.seed = seed;
  return config;
}

TEST(Overhead, Deterministic) {
  const OverheadResult a = simulate_overhead(config_with(10, 5));
  const OverheadResult b = simulate_overhead(config_with(10, 5));
  EXPECT_EQ(a.data_messages, b.data_messages);
  EXPECT_EQ(a.control_messages, b.control_messages);
}

TEST(Overhead, RatesApproximatelyHonored) {
  const OverheadConfig config = config_with(10, 5);
  const OverheadResult r = simulate_overhead(config);
  const double expected_data = config.message_rate * config.sim_time;
  const double expected_migrations =
      config.message_rate / config.relative_rate * config.sim_time;
  EXPECT_NEAR(static_cast<double>(r.data_messages), expected_data,
              expected_data * 0.05);
  EXPECT_NEAR(static_cast<double>(r.migrations), expected_migrations,
              expected_migrations * 0.1);
}

TEST(Overhead, AboveEightyPercentAtUnitRatio) {
  // Paper Fig. 13: at r = 1 the overhead stays above 80% no matter how
  // large the message exchange rate becomes.
  for (double lambda : {10.0, 50.0, 100.0}) {
    const OverheadResult r = simulate_overhead(config_with(lambda, 1));
    EXPECT_GT(r.overhead(), 0.80) << "lambda " << lambda;
  }
}

TEST(Overhead, DecreasesWithRate) {
  // For a fixed ratio, a higher exchange rate amortizes the maintenance
  // stream and reduces the overhead fraction.
  const OverheadResult slow = simulate_overhead(config_with(1, 10));
  const OverheadResult fast = simulate_overhead(config_with(100, 10));
  EXPECT_GT(slow.overhead(), fast.overhead());
}

TEST(Overhead, DecreasesWithRatio) {
  // More data messages per migration -> proportionally less control.
  const OverheadResult r1 = simulate_overhead(config_with(50, 1));
  const OverheadResult r5 = simulate_overhead(config_with(50, 5));
  const OverheadResult r20 = simulate_overhead(config_with(50, 20));
  EXPECT_GT(r1.overhead(), r5.overhead());
  EXPECT_GT(r5.overhead(), r20.overhead());
}

TEST(Overhead, AsymptoteMatchesClosedForm) {
  // At high rates the maintenance stream vanishes and the overhead tends
  // to C / (C + r).
  OverheadConfig config = config_with(500, 5);
  config.sim_time = 5000;
  const OverheadResult r = simulate_overhead(config);
  const double asymptote =
      static_cast<double>(config.ctrl_per_migration) /
      (static_cast<double>(config.ctrl_per_migration) + config.relative_rate);
  EXPECT_NEAR(r.overhead(), asymptote, 0.02);
}

TEST(Overhead, ZeroRatesDegenerate) {
  OverheadConfig config;
  config.message_rate = 0;
  config.relative_rate = 0;
  config.maintenance_rate = 0;
  config.sim_time = 100;
  const OverheadResult r = simulate_overhead(config);
  EXPECT_EQ(r.data_messages, 0u);
  EXPECT_EQ(r.control_messages, 0u);
  EXPECT_EQ(r.overhead(), 0.0);
}

TEST(Overhead, MaintenanceOnlyIsAllControl) {
  OverheadConfig config;
  config.message_rate = 0;
  config.relative_rate = 1;  // mu = 0 anyway since lambda = 0
  config.maintenance_rate = 2;
  config.sim_time = 1000;
  const OverheadResult r = simulate_overhead(config);
  EXPECT_EQ(r.data_messages, 0u);
  EXPECT_GT(r.control_messages, 0u);
  EXPECT_EQ(r.overhead(), 1.0);
}

}  // namespace
}  // namespace naplet::sim
