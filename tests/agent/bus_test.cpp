#include "agent/bus.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/sim.hpp"
#include "util/sync.hpp"

namespace naplet::agent {
namespace {

using namespace std::chrono_literals;

std::unique_ptr<ServerBus> make_bus(net::Network& node,
                                    net::RudpConfig config = {}) {
  auto dgram = node.bind_datagram(0);
  EXPECT_TRUE(dgram.ok());
  return std::make_unique<ServerBus>(
      std::make_unique<net::ReliableChannel>(std::move(*dgram), config));
}

TEST(ServerBus, RoutesByKind) {
  net::SimNet net;
  auto node_a = net.add_node("a");
  auto node_b = net.add_node("b");
  auto bus_a = make_bus(*node_a);
  auto bus_b = make_bus(*node_b);

  util::BlockingQueue<std::string> ctrl_inbox;
  util::BlockingQueue<std::string> mail_inbox;
  bus_b->subscribe(BusKind::kControl,
                   [&](const net::Endpoint&, util::ByteSpan payload) {
                     ctrl_inbox.push(std::string(payload.begin(),
                                                 payload.end()));
                   });
  bus_b->subscribe(BusKind::kMail,
                   [&](const net::Endpoint&, util::ByteSpan payload) {
                     mail_inbox.push(std::string(payload.begin(),
                                                 payload.end()));
                   });

  const std::string ctrl = "ctrl-msg";
  const std::string mail = "mail-msg";
  ASSERT_TRUE(bus_a->send(bus_b->local_endpoint(), BusKind::kControl,
                          util::ByteSpan(
                              reinterpret_cast<const std::uint8_t*>(
                                  ctrl.data()),
                              ctrl.size()))
                  .ok());
  ASSERT_TRUE(bus_a->send(bus_b->local_endpoint(), BusKind::kMail,
                          util::ByteSpan(
                              reinterpret_cast<const std::uint8_t*>(
                                  mail.data()),
                              mail.size()))
                  .ok());

  auto got_ctrl = ctrl_inbox.pop_for(2s);
  auto got_mail = mail_inbox.pop_for(2s);
  ASSERT_TRUE(got_ctrl && got_mail);
  EXPECT_EQ(*got_ctrl, "ctrl-msg");
  EXPECT_EQ(*got_mail, "mail-msg");
}

TEST(ServerBus, UnhandledKindDropped) {
  net::SimNet net;
  auto bus_a = make_bus(*net.add_node("a"));
  auto bus_b = make_bus(*net.add_node("b"));
  // No subscription for kProbe at b: the message is ACKed by the channel
  // (send succeeds) and silently dropped at dispatch.
  const util::Bytes payload = {1};
  EXPECT_TRUE(bus_a->send(bus_b->local_endpoint(), BusKind::kProbe,
                          util::ByteSpan(payload.data(), payload.size()))
                  .ok());
}

TEST(ServerBus, HandlerReplacement) {
  net::SimNet net;
  auto bus_a = make_bus(*net.add_node("a"));
  auto bus_b = make_bus(*net.add_node("b"));

  std::atomic<int> first{0}, second{0};
  bus_b->subscribe(BusKind::kProbe,
                   [&](const net::Endpoint&, util::ByteSpan) { ++first; });
  const util::Bytes payload = {1};
  ASSERT_TRUE(bus_a->send(bus_b->local_endpoint(), BusKind::kProbe,
                          util::ByteSpan(payload.data(), payload.size()))
                  .ok());
  // The rudp ACK (which unblocks send) races the dispatch to the handler;
  // wait for the first message to actually land before replacing it.
  for (int i = 0; i < 2000 && first.load() == 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(first.load(), 1);
  // Replace the handler; subsequent messages go to the new one only.
  bus_b->subscribe(BusKind::kProbe,
                   [&](const net::Endpoint&, util::ByteSpan) { ++second; });
  ASSERT_TRUE(bus_a->send(bus_b->local_endpoint(), BusKind::kProbe,
                          util::ByteSpan(payload.data(), payload.size()))
                  .ok());
  // Delivery is asynchronous; wait for the counters to settle.
  for (int i = 0; i < 100 && first.load() + second.load() < 2; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 1);
}

TEST(ServerBus, HandlerSeesSenderEndpoint) {
  net::SimNet net;
  auto bus_a = make_bus(*net.add_node("a"));
  auto bus_b = make_bus(*net.add_node("b"));

  util::BlockingQueue<net::Endpoint> froms;
  bus_b->subscribe(BusKind::kControl,
                   [&](const net::Endpoint& from, util::ByteSpan) {
                     froms.push(from);
                   });
  const util::Bytes payload = {1};
  ASSERT_TRUE(bus_a->send(bus_b->local_endpoint(), BusKind::kControl,
                          util::ByteSpan(payload.data(), payload.size()))
                  .ok());
  auto from = froms.pop_for(2s);
  ASSERT_TRUE(from.has_value());
  EXPECT_EQ(*from, bus_a->local_endpoint());
}

TEST(ServerBus, BidirectionalReplyFromHandler) {
  // A handler may send on the bus (reliable send blocks on the channel's
  // rudp ACK, which is processed by the channel's own receiver thread, so
  // no deadlock).
  net::SimNet net;
  auto bus_a = make_bus(*net.add_node("a"));
  auto bus_b = make_bus(*net.add_node("b"));

  util::BlockingQueue<std::string> replies;
  std::atomic<bool> reply_sent{false};
  bus_a->subscribe(BusKind::kControl,
                   [&](const net::Endpoint&, util::ByteSpan payload) {
                     replies.push(std::string(payload.begin(),
                                              payload.end()));
                   });
  bus_b->subscribe(BusKind::kControl,
                   [&](const net::Endpoint& from, util::ByteSpan) {
                     const std::string pong = "pong";
                     EXPECT_TRUE(bus_b->send(
                                        from, BusKind::kControl,
                                        util::ByteSpan(
                                            reinterpret_cast<const std::uint8_t*>(
                                                pong.data()),
                                            pong.size()))
                                     .ok());
                     reply_sent.store(true);
                   });
  const util::Bytes ping = {'p'};
  ASSERT_TRUE(bus_a->send(bus_b->local_endpoint(), BusKind::kControl,
                          util::ByteSpan(ping.data(), ping.size()))
                  .ok());
  auto reply = replies.pop_for(2s);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "pong");
  // The pong payload reaches us before bus_b's blocking send has seen its
  // own transport ACK; don't tear the buses down under the handler.
  for (int i = 0; i < 2000 && !reply_sent.load(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(reply_sent.load());
}

TEST(ServerBus, StopIsIdempotentAndSendFailsAfter) {
  net::SimNet net;
  auto bus_a = make_bus(*net.add_node("a"));
  auto bus_b = make_bus(*net.add_node("b"));
  bus_a->stop();
  bus_a->stop();  // no crash
  const util::Bytes payload = {1};
  EXPECT_FALSE(bus_a->send(bus_b->local_endpoint(), BusKind::kControl,
                           util::ByteSpan(payload.data(), payload.size()))
                   .ok());
}

TEST(ServerBus, SurvivesLossyLink) {
  net::SimNet net(/*seed=*/3);
  auto node_a = net.add_node("a");
  auto node_b = net.add_node("b");
  net.set_link("a", "b", net::LinkConfig{.datagram_loss = 0.4});
  net.set_link("b", "a", net::LinkConfig{.datagram_loss = 0.4});

  net::RudpConfig rudp;
  rudp.retransmit_interval = 15ms;
  rudp.max_attempts = 60;
  auto bus_a = make_bus(*node_a, rudp);
  auto bus_b = make_bus(*node_b, rudp);

  std::atomic<int> received{0};
  bus_b->subscribe(BusKind::kControl,
                   [&](const net::Endpoint&, util::ByteSpan) { ++received; });
  const util::Bytes payload = {9};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bus_a->send(bus_b->local_endpoint(), BusKind::kControl,
                            util::ByteSpan(payload.data(), payload.size()))
                    .ok())
        << i;
  }
  for (int i = 0; i < 200 && received.load() < 20; ++i) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(received.load(), 20);  // exactly once each, despite loss
}

}  // namespace
}  // namespace naplet::agent
