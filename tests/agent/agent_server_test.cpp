#include "agent/agent_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/sim.hpp"

namespace naplet::agent {
namespace {

using namespace std::chrono_literals;

// Shared observable side effects for test agents (single process).
struct Probe {
  std::atomic<int> runs{0};
  std::atomic<int> max_hop{0};
  std::mutex mu;
  std::vector<std::string> visited;

  void record(const AgentContext& ctx) {
    ++runs;
    int hop = static_cast<int>(ctx.hop_count());
    int prev = max_hop.load();
    while (hop > prev && !max_hop.compare_exchange_weak(prev, hop)) {
    }
    std::lock_guard lock(mu);
    visited.push_back(ctx.server_name());
  }
};

Probe& probe() {
  static Probe p;
  return p;
}

/// Walks a fixed itinerary carried in its persisted state.
class TouristAgent : public Agent {
 public:
  std::vector<std::string> itinerary;
  std::uint64_t steps_done = 0;

  void run(AgentContext& ctx) override {
    probe().record(ctx);
    if (steps_done < itinerary.size()) {
      const std::string next = itinerary[steps_done];
      ++steps_done;
      ctx.migrate_to(next);
    }
  }

  void persist(util::Archive& ar) override {
    ar.field(itinerary);
    ar.field(steps_done);
  }

  std::string type_name() const override { return "TouristAgent"; }
};
NAPLET_REGISTER_AGENT(TouristAgent);

/// Consumes one mail message, then replies to the sender.
class EchoMailAgent : public Agent {
 public:
  void run(AgentContext& ctx) override {
    auto mail = ctx.read_mail(5s);
    if (mail) {
      util::Bytes reply(mail->body);
      reply.push_back('!');
      (void)ctx.send_mail(mail->from,
                          util::ByteSpan(reply.data(), reply.size()));
    }
  }
  void persist(util::Archive&) override {}
  std::string type_name() const override { return "EchoMailAgent"; }
};
NAPLET_REGISTER_AGENT(EchoMailAgent);

class UnregisteredAgent : public Agent {
 public:
  void run(AgentContext&) override {}
  void persist(util::Archive&) override {}
  std::string type_name() const override { return "UnregisteredAgent"; }
};

class AgentServerTest : public ::testing::Test {
 protected:
  AgentServerTest() {
    realm_key_ = util::Bytes(32, 0x5A);
    server_a_ = make_server("alpha");
    server_b_ = make_server("beta");
    EXPECT_TRUE(server_a_->start().ok());
    EXPECT_TRUE(server_b_->start().ok());
  }

  ~AgentServerTest() override {
    server_a_->stop();
    server_b_->stop();
  }

  std::unique_ptr<AgentServer> make_server(const std::string& name) {
    AgentServerConfig config;
    config.name = name;
    config.realm_key = realm_key_;
    return std::make_unique<AgentServer>(net_.add_node(name), locations_,
                                         std::move(config));
  }

  net::SimNet net_;
  LocationService locations_;
  util::Bytes realm_key_;
  std::unique_ptr<AgentServer> server_a_;
  std::unique_ptr<AgentServer> server_b_;
};

TEST_F(AgentServerTest, LaunchRunsAgentOnce) {
  const int runs_before = probe().runs.load();
  auto agent = std::make_unique<TouristAgent>();
  ASSERT_TRUE(server_a_->launch(std::move(agent), AgentId("solo")).ok());
  ASSERT_TRUE(wait_agent_gone(locations_, AgentId("solo"), 5s));
  EXPECT_EQ(probe().runs.load(), runs_before + 1);
  EXPECT_EQ(server_a_->resident_count(), 0u);
}

TEST_F(AgentServerTest, LaunchValidation) {
  EXPECT_FALSE(server_a_->launch(nullptr, AgentId("x")).ok());
  EXPECT_FALSE(
      server_a_->launch(std::make_unique<TouristAgent>(), AgentId()).ok());
  EXPECT_EQ(server_a_
                ->launch(std::make_unique<UnregisteredAgent>(), AgentId("u"))
                .code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(AgentServerTest, DuplicateIdRejected) {
  auto sleepy = std::make_unique<EchoMailAgent>();  // blocks on mail 5s
  ASSERT_TRUE(server_a_->launch(std::move(sleepy), AgentId("dup")).ok());
  EXPECT_EQ(
      server_a_->launch(std::make_unique<TouristAgent>(), AgentId("dup"))
          .code(),
      util::StatusCode::kAlreadyExists);
  // Unblock and drain.
  (void)server_a_->post().send(AgentId("t"), AgentId("dup"), util::ByteSpan{});
  ASSERT_TRUE(wait_agent_gone(locations_, AgentId("dup"), 10s));
}

TEST_F(AgentServerTest, MigrationMovesStateAndIncrementsHops) {
  const int max_hop_before = probe().max_hop.load();
  auto agent = std::make_unique<TouristAgent>();
  agent->itinerary = {"beta", "alpha", "beta"};
  ASSERT_TRUE(server_a_->launch(std::move(agent), AgentId("walker")).ok());
  ASSERT_TRUE(wait_agent_gone(locations_, AgentId("walker"), 10s));
  EXPECT_GE(probe().max_hop.load(), 3);
  EXPECT_GE(max_hop_before, 0);
  // The destination can finish running the agent before the final hop's
  // source thread records its outbound migration; let the counters settle.
  for (int i = 0; i < 2000 && server_a_->migrations_out() +
                                      server_b_->migrations_out() <
                                  3u;
       ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(server_a_->migrations_out() + server_b_->migrations_out(), 3u);
  EXPECT_EQ(server_a_->migrations_in() + server_b_->migrations_in(), 3u);
}

TEST_F(AgentServerTest, MigrationToUnknownServerTerminatesGracefully) {
  auto agent = std::make_unique<TouristAgent>();
  agent->itinerary = {"gamma-does-not-exist"};
  ASSERT_TRUE(server_a_->launch(std::move(agent), AgentId("lost")).ok());
  ASSERT_TRUE(wait_agent_gone(locations_, AgentId("lost"), 5s));
  EXPECT_EQ(server_a_->migrations_out(), 0u);
}

TEST_F(AgentServerTest, MigrationToSelfRejectedThenTerminates) {
  auto agent = std::make_unique<TouristAgent>();
  agent->itinerary = {"alpha"};
  ASSERT_TRUE(server_a_->launch(std::move(agent), AgentId("selfie")).ok());
  ASSERT_TRUE(wait_agent_gone(locations_, AgentId("selfie"), 5s));
}

TEST_F(AgentServerTest, MailFollowsAgentAcrossServers) {
  ASSERT_TRUE(server_b_
                  ->launch(std::make_unique<EchoMailAgent>(), AgentId("echo"))
                  .ok());
  // Another "agent" (the test) mails it via server A's PostOffice.
  locations_.register_agent(AgentId("tester"), server_a_->node_info());
  server_a_->post().open_mailbox(AgentId("tester"));
  const std::string body = "ping";
  ASSERT_TRUE(server_a_->post()
                  .send(AgentId("tester"), AgentId("echo"),
                        util::ByteSpan(
                            reinterpret_cast<const std::uint8_t*>(body.data()),
                            body.size()))
                  .ok());
  auto reply = server_a_->post().read(AgentId("tester"), 5s);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::string(reply->body.begin(), reply->body.end()), "ping!");
  ASSERT_TRUE(wait_agent_gone(locations_, AgentId("echo"), 5s));
}

TEST_F(AgentServerTest, NodeInfoRegistered) {
  auto info = locations_.lookup_server("alpha");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->server_name, "alpha");
  EXPECT_GT(info->control.port, 0);
  EXPECT_GT(info->migration.port, 0);
}

TEST_F(AgentServerTest, RedirectorEndpointUpdateIsRaceFree) {
  // Regression: redirector_endpoint_ used to be written by
  // set_redirector_endpoint without synchronization while node_info() read
  // it from agent threads. Both now go through the server mutex; readers
  // must only ever observe one of the published values. Run under TSan to
  // catch any regression in the guarding itself.
  const net::Endpoint even{"alpha", 7001};
  const net::Endpoint odd{"alpha", 7002};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 400; ++i) {
      server_a_->set_redirector_endpoint(i % 2 == 0 ? even : odd);
    }
    done.store(true);
  });
  // Keep sampling past `done` so a fast writer can't starve the reader of
  // observations; once the writer has run, the port is always published.
  int observed = 0;
  while (!done.load() || observed < 100) {
    const NodeInfo info = server_a_->node_info();
    if (info.redirector.port != 0) {
      ++observed;
      EXPECT_TRUE(info.redirector.port == even.port ||
                  info.redirector.port == odd.port)
          << "torn read: " << info.redirector.to_string();
    }
  }
  writer.join();
  EXPECT_GT(observed, 0);
}

TEST_F(AgentServerTest, MigrationAuthRejectedAcrossRealms) {
  // A server with a different realm key must reject inbound migrations.
  AgentServerConfig config;
  config.name = "outsider";
  config.realm_key = util::Bytes(32, 0xEE);
  AgentServer outsider(net_.add_node("outsider"), locations_,
                       std::move(config));
  ASSERT_TRUE(outsider.start().ok());

  auto agent = std::make_unique<TouristAgent>();
  agent->itinerary = {"outsider"};
  ASSERT_TRUE(server_a_->launch(std::move(agent), AgentId("spy")).ok());
  ASSERT_TRUE(wait_agent_gone(locations_, AgentId("spy"), 5s));
  EXPECT_EQ(outsider.migrations_in(), 0u);
  EXPECT_EQ(outsider.resident_count(), 0u);
  outsider.stop();
}

TEST_F(AgentServerTest, ExtraMigrationCostDelaysTransfer) {
  AgentServerConfig config;
  config.name = "slowpoke";
  config.realm_key = realm_key_;
  config.extra_migration_cost = 150ms;
  AgentServer slow(net_.add_node("slowpoke"), locations_, std::move(config));
  ASSERT_TRUE(slow.start().ok());

  auto agent = std::make_unique<TouristAgent>();
  agent->itinerary = {"alpha"};
  const auto t0 = util::RealClock::instance().now_us();
  ASSERT_TRUE(slow.launch(std::move(agent), AgentId("slowmover")).ok());
  ASSERT_TRUE(wait_agent_gone(locations_, AgentId("slowmover"), 5s));
  const auto elapsed_ms = (util::RealClock::instance().now_us() - t0) / 1000;
  EXPECT_GE(elapsed_ms, 140);
  slow.stop();
}

}  // namespace
}  // namespace naplet::agent
