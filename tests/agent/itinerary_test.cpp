#include "agent/itinerary.hpp"

#include <gtest/gtest.h>

namespace naplet::agent {
namespace {

/// Minimal context stub capturing migrate_to requests.
class StubContext : public AgentContext {
 public:
  const AgentId& self() const override { return id_; }
  const std::string& server_name() const override { return server_; }
  std::uint32_t hop_count() const override { return 0; }
  void migrate_to(const std::string& server_name) override {
    requested = server_name;
  }
  util::Status send_mail(const AgentId&, util::ByteSpan) override {
    return util::OkStatus();
  }
  std::optional<Mail> read_mail(util::Duration) override {
    return std::nullopt;
  }
  LocationService& locations() override { return locations_; }
  void* service(const std::string&) override { return nullptr; }

  std::string requested;

 private:
  AgentId id_{"stub"};
  std::string server_ = "stub-server";
  LocationService locations_;
};

TEST(Itinerary, SequentialRoute) {
  Itinerary route({"a", "b", "c"});
  StubContext ctx;

  EXPECT_EQ(route.peek(), "a");
  EXPECT_TRUE(route.advance(ctx));
  EXPECT_EQ(ctx.requested, "a");
  EXPECT_TRUE(route.advance(ctx));
  EXPECT_EQ(ctx.requested, "b");
  EXPECT_TRUE(route.advance(ctx));
  EXPECT_EQ(ctx.requested, "c");
  EXPECT_TRUE(route.exhausted());
  ctx.requested.clear();
  EXPECT_FALSE(route.advance(ctx));
  EXPECT_TRUE(ctx.requested.empty());  // no request once complete
  EXPECT_EQ(route.hops_taken(), 3u);
}

TEST(Itinerary, EmptyRouteIsExhausted) {
  Itinerary route;
  StubContext ctx;
  EXPECT_TRUE(route.exhausted());
  EXPECT_EQ(route.peek(), "");
  EXPECT_FALSE(route.advance(ctx));
}

TEST(Itinerary, LoopWithHopBound) {
  Itinerary route({"x", "y"}, /*loop=*/true, /*max_hops=*/5);
  StubContext ctx;
  std::vector<std::string> visited;
  while (route.advance(ctx)) visited.push_back(ctx.requested);
  EXPECT_EQ(visited,
            (std::vector<std::string>{"x", "y", "x", "y", "x"}));
  EXPECT_TRUE(route.exhausted());
}

TEST(Itinerary, PersistMidRoute) {
  Itinerary route({"a", "b", "c", "d"});
  StubContext ctx;
  ASSERT_TRUE(route.advance(ctx));
  ASSERT_TRUE(route.advance(ctx));

  util::Archive w;
  route.persist(w);
  util::Bytes encoded = std::move(w).take_bytes();

  Itinerary restored;
  util::Archive r((util::ByteSpan(encoded.data(), encoded.size())));
  restored.persist(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(restored.peek(), "c");
  EXPECT_EQ(restored.hops_taken(), 2u);
  EXPECT_EQ(restored.stops(), route.stops());
}

TEST(Itinerary, PeekAheadOnSequentialRoute) {
  Itinerary route({"a", "b", "c"});
  StubContext ctx;
  EXPECT_EQ(route.peek_ahead(0), "a");  // k = 0 is peek()
  EXPECT_EQ(route.peek_ahead(1), "b");
  EXPECT_EQ(route.peek_ahead(2), "c");
  EXPECT_EQ(route.peek_ahead(3), "");  // beyond the end

  ASSERT_TRUE(route.advance(ctx));
  EXPECT_EQ(route.peek_ahead(0), "b");
  EXPECT_EQ(route.peek_ahead(1), "c");
  EXPECT_EQ(route.peek_ahead(2), "");
}

TEST(Itinerary, PeekAheadHonorsLoopHopBound) {
  Itinerary route({"x", "y"}, /*loop=*/true, /*max_hops=*/5);
  StubContext ctx;
  // Hops 0..4 exist; the bound cuts the loop mid-cycle.
  EXPECT_EQ(route.peek_ahead(3), "y");
  EXPECT_EQ(route.peek_ahead(4), "x");
  EXPECT_EQ(route.peek_ahead(5), "");

  ASSERT_TRUE(route.advance(ctx));
  ASSERT_TRUE(route.advance(ctx));
  ASSERT_TRUE(route.advance(ctx));
  ASSERT_TRUE(route.advance(ctx));  // position 4, one hop left
  EXPECT_EQ(route.peek_ahead(0), "x");
  EXPECT_EQ(route.peek_ahead(1), "");
}

TEST(Itinerary, PeekAheadWrapsUnboundedLoop) {
  Itinerary route({"x", "y", "z"}, /*loop=*/true);
  EXPECT_EQ(route.peek_ahead(100), "y");  // 100 % 3 == 1
  EXPECT_EQ(Itinerary().peek_ahead(0), "");  // empty route: no stops at all
}

TEST(Itinerary, RemainingHops) {
  StubContext ctx;

  Itinerary bounded({"a", "b", "c"});
  EXPECT_EQ(bounded.remaining_hops(), std::optional<std::uint64_t>(3));
  ASSERT_TRUE(bounded.advance(ctx));
  EXPECT_EQ(bounded.remaining_hops(), std::optional<std::uint64_t>(2));
  while (bounded.advance(ctx)) {
  }
  EXPECT_EQ(bounded.remaining_hops(), std::optional<std::uint64_t>(0));

  Itinerary capped_loop({"x", "y"}, /*loop=*/true, /*max_hops=*/5);
  EXPECT_EQ(capped_loop.remaining_hops(), std::optional<std::uint64_t>(5));
  ASSERT_TRUE(capped_loop.advance(ctx));
  EXPECT_EQ(capped_loop.remaining_hops(), std::optional<std::uint64_t>(4));

  Itinerary unbounded({"x"}, /*loop=*/true);
  EXPECT_EQ(unbounded.remaining_hops(), std::nullopt);

  Itinerary empty;
  EXPECT_EQ(empty.remaining_hops(), std::optional<std::uint64_t>(0));
}

TEST(Itinerary, PersistAcrossHopPreservesLoopBound) {
  // The scenario the persist path exists for: an agent hops, carrying its
  // itinerary in its serialized state, and continues at the destination.
  Itinerary route({"x", "y"}, /*loop=*/true, /*max_hops=*/3);
  StubContext ctx;
  ASSERT_TRUE(route.advance(ctx));
  EXPECT_EQ(ctx.requested, "x");

  util::Archive w;
  route.persist(w);
  util::Bytes encoded = std::move(w).take_bytes();

  Itinerary restored;
  util::Archive r((util::ByteSpan(encoded.data(), encoded.size())));
  restored.persist(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(restored.hops_taken(), 1u);
  EXPECT_EQ(restored.remaining_hops(), std::optional<std::uint64_t>(2));

  // The restored copy finishes the journey exactly where the original
  // would have: y, then x, then the hop bound ends the loop.
  ASSERT_TRUE(restored.advance(ctx));
  EXPECT_EQ(ctx.requested, "y");
  ASSERT_TRUE(restored.advance(ctx));
  EXPECT_EQ(ctx.requested, "x");
  EXPECT_TRUE(restored.exhausted());
  EXPECT_FALSE(restored.advance(ctx));
}

TEST(Itinerary, UnboundedLoopNeverExhausts) {
  Itinerary route({"only"}, /*loop=*/true);
  StubContext ctx;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(route.advance(ctx));
    EXPECT_EQ(ctx.requested, "only");
  }
  EXPECT_FALSE(route.exhausted());
}

}  // namespace
}  // namespace naplet::agent
