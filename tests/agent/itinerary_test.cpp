#include "agent/itinerary.hpp"

#include <gtest/gtest.h>

namespace naplet::agent {
namespace {

/// Minimal context stub capturing migrate_to requests.
class StubContext : public AgentContext {
 public:
  const AgentId& self() const override { return id_; }
  const std::string& server_name() const override { return server_; }
  std::uint32_t hop_count() const override { return 0; }
  void migrate_to(const std::string& server_name) override {
    requested = server_name;
  }
  util::Status send_mail(const AgentId&, util::ByteSpan) override {
    return util::OkStatus();
  }
  std::optional<Mail> read_mail(util::Duration) override {
    return std::nullopt;
  }
  LocationService& locations() override { return locations_; }
  void* service(const std::string&) override { return nullptr; }

  std::string requested;

 private:
  AgentId id_{"stub"};
  std::string server_ = "stub-server";
  LocationService locations_;
};

TEST(Itinerary, SequentialRoute) {
  Itinerary route({"a", "b", "c"});
  StubContext ctx;

  EXPECT_EQ(route.peek(), "a");
  EXPECT_TRUE(route.advance(ctx));
  EXPECT_EQ(ctx.requested, "a");
  EXPECT_TRUE(route.advance(ctx));
  EXPECT_EQ(ctx.requested, "b");
  EXPECT_TRUE(route.advance(ctx));
  EXPECT_EQ(ctx.requested, "c");
  EXPECT_TRUE(route.exhausted());
  ctx.requested.clear();
  EXPECT_FALSE(route.advance(ctx));
  EXPECT_TRUE(ctx.requested.empty());  // no request once complete
  EXPECT_EQ(route.hops_taken(), 3u);
}

TEST(Itinerary, EmptyRouteIsExhausted) {
  Itinerary route;
  StubContext ctx;
  EXPECT_TRUE(route.exhausted());
  EXPECT_EQ(route.peek(), "");
  EXPECT_FALSE(route.advance(ctx));
}

TEST(Itinerary, LoopWithHopBound) {
  Itinerary route({"x", "y"}, /*loop=*/true, /*max_hops=*/5);
  StubContext ctx;
  std::vector<std::string> visited;
  while (route.advance(ctx)) visited.push_back(ctx.requested);
  EXPECT_EQ(visited,
            (std::vector<std::string>{"x", "y", "x", "y", "x"}));
  EXPECT_TRUE(route.exhausted());
}

TEST(Itinerary, PersistMidRoute) {
  Itinerary route({"a", "b", "c", "d"});
  StubContext ctx;
  ASSERT_TRUE(route.advance(ctx));
  ASSERT_TRUE(route.advance(ctx));

  util::Archive w;
  route.persist(w);
  util::Bytes encoded = std::move(w).take_bytes();

  Itinerary restored;
  util::Archive r((util::ByteSpan(encoded.data(), encoded.size())));
  restored.persist(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(restored.peek(), "c");
  EXPECT_EQ(restored.hops_taken(), 2u);
  EXPECT_EQ(restored.stops(), route.stops());
}

TEST(Itinerary, UnboundedLoopNeverExhausts) {
  Itinerary route({"only"}, /*loop=*/true);
  StubContext ctx;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(route.advance(ctx));
    EXPECT_EQ(ctx.requested, "only");
  }
  EXPECT_FALSE(route.exhausted());
}

}  // namespace
}  // namespace naplet::agent
