#include "agent/agent_id.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/serial.hpp"

namespace naplet::agent {
namespace {

TEST(AgentId, Basics) {
  AgentId id("worker-1");
  EXPECT_EQ(id.name(), "worker-1");
  EXPECT_FALSE(id.empty());
  EXPECT_TRUE(AgentId().empty());
}

TEST(AgentId, PriorityHashDeterministic) {
  EXPECT_EQ(AgentId("x").priority_hash(), AgentId("x").priority_hash());
  EXPECT_NE(AgentId("x").priority_hash(), AgentId("y").priority_hash());
}

TEST(AgentId, OutranksIsTotalOrder) {
  // Antisymmetric and total on distinct ids.
  const std::vector<AgentId> ids = {AgentId("a"), AgentId("b"), AgentId("c"),
                                    AgentId("worker-1"), AgentId("worker-2")};
  for (const auto& x : ids) {
    EXPECT_FALSE(x.outranks(x));  // irreflexive
    for (const auto& y : ids) {
      if (x == y) continue;
      EXPECT_NE(x.outranks(y), y.outranks(x)) << x.name() << " vs " << y.name();
    }
  }
}

TEST(AgentId, OutranksIsTransitiveOnSample) {
  // The order is by (hash, name), which is a total order, hence transitive;
  // verify on a sample by sorting and checking pairwise consistency.
  std::vector<AgentId> ids;
  for (int i = 0; i < 30; ++i) ids.emplace_back("agent-" + std::to_string(i));
  std::sort(ids.begin(), ids.end(), [](const AgentId& a, const AgentId& b) {
    return b.outranks(a);  // ascending rank
  });
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_TRUE(ids[i + 1].outranks(ids[i]));
  }
  // No circular waits possible: the top element outranks everything.
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_TRUE(ids.back().outranks(ids[i]));
  }
}

TEST(AgentId, HashesSpread) {
  std::set<std::uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(AgentId("agent-" + std::to_string(i)).priority_hash());
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions in a small sample
}

TEST(AgentId, Persist) {
  AgentId original("roundtrip");
  const util::Bytes encoded = util::Archive::encode(original);
  AgentId decoded;
  ASSERT_TRUE(util::Archive::decode(
                  util::ByteSpan(encoded.data(), encoded.size()), decoded)
                  .ok());
  EXPECT_EQ(decoded, original);
}

TEST(AgentId, ComparisonOperators) {
  EXPECT_LT(AgentId("a"), AgentId("b"));
  EXPECT_EQ(AgentId("a"), AgentId("a"));
}

}  // namespace
}  // namespace naplet::agent
