#include "agent/access_control.hpp"

#include <gtest/gtest.h>

namespace naplet::agent {
namespace {

util::Bytes key(std::uint8_t fill) { return util::Bytes(32, fill); }

TEST(AccessControl, DefaultPolicyDeniesRawSocketsToAgents) {
  AccessController ac("host-a", key(1));
  const Subject agent{Subject::Kind::kAgent, "wanderer"};
  EXPECT_EQ(ac.check(agent, Permission::kOpenSocket).code(),
            util::StatusCode::kPermissionDenied);
  EXPECT_EQ(ac.check(agent, Permission::kListenSocket).code(),
            util::StatusCode::kPermissionDenied);
  EXPECT_EQ(ac.denials(), 2u);
}

TEST(AccessControl, DefaultPolicyGrantsMediatedServices) {
  AccessController ac("host-a", key(1));
  const Subject agent{Subject::Kind::kAgent, "wanderer"};
  EXPECT_TRUE(ac.check(agent, Permission::kUseNapletSocket).ok());
  EXPECT_TRUE(ac.check(agent, Permission::kMigrate).ok());
  EXPECT_TRUE(ac.check(agent, Permission::kSendMail).ok());
}

TEST(AccessControl, SystemSubjectGetsEverything) {
  AccessController ac("host-a", key(1));
  const Subject system{Subject::Kind::kSystem, "host-a"};
  const Subject admin{Subject::Kind::kAdmin, "root"};
  for (Permission p :
       {Permission::kOpenSocket, Permission::kListenSocket,
        Permission::kUseNapletSocket, Permission::kMigrate,
        Permission::kSendMail}) {
    EXPECT_TRUE(ac.check(system, p).ok());
    EXPECT_TRUE(ac.check(admin, p).ok());
  }
}

TEST(AccessControl, ExplicitDenyOverridesDefaultGrant) {
  AccessController ac("host-a", key(1));
  ac.deny("wanderer", Permission::kUseNapletSocket);
  const Subject agent{Subject::Kind::kAgent, "wanderer"};
  EXPECT_FALSE(ac.check(agent, Permission::kUseNapletSocket).ok());
  // Other agents unaffected.
  EXPECT_TRUE(ac.check(Subject{Subject::Kind::kAgent, "other"},
                       Permission::kUseNapletSocket)
                  .ok());
}

TEST(AccessControl, ExplicitGrantOverridesDefaultDeny) {
  AccessController ac("host-a", key(1));
  ac.grant("trusted", Permission::kOpenSocket);
  EXPECT_TRUE(ac.check(Subject{Subject::Kind::kAgent, "trusted"},
                       Permission::kOpenSocket)
                  .ok());
}

TEST(AccessControl, GrantThenDenyLastWins) {
  AccessController ac("host-a", key(1));
  ac.grant("x", Permission::kOpenSocket);
  ac.deny("x", Permission::kOpenSocket);
  EXPECT_FALSE(
      ac.check(Subject{Subject::Kind::kAgent, "x"}, Permission::kOpenSocket)
          .ok());
  ac.grant("x", Permission::kOpenSocket);
  EXPECT_TRUE(
      ac.check(Subject{Subject::Kind::kAgent, "x"}, Permission::kOpenSocket)
          .ok());
}

TEST(AccessControl, ClearOverridesRestoresDefault) {
  AccessController ac("host-a", key(1));
  ac.deny("x", Permission::kSendMail);
  ac.clear_overrides("x");
  EXPECT_TRUE(
      ac.check(Subject{Subject::Kind::kAgent, "x"}, Permission::kSendMail)
          .ok());
}

TEST(AccessControl, TokenRoundTripSameRealm) {
  AccessController issuer("host-a", key(7));
  AccessController verifier("host-b", key(7));  // same realm key
  const AuthToken token = issuer.issue_token(AgentId("traveler"));
  auto subject = verifier.authenticate(token);
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(subject->kind, Subject::Kind::kAgent);
  EXPECT_EQ(subject->name, "traveler");
}

TEST(AccessControl, TokenRejectedAcrossRealms) {
  AccessController issuer("host-a", key(7));
  AccessController foreign("host-x", key(8));  // different realm
  const AuthToken token = issuer.issue_token(AgentId("traveler"));
  EXPECT_EQ(foreign.authenticate(token).status().code(),
            util::StatusCode::kUnauthenticated);
}

TEST(AccessControl, TamperedTokenRejected) {
  AccessController ac("host-a", key(7));
  AuthToken token = ac.issue_token(AgentId("traveler"));
  token.agent_name = "impostor";  // claim someone else's identity
  EXPECT_FALSE(ac.authenticate(token).ok());

  AuthToken token2 = ac.issue_token(AgentId("traveler"));
  token2.tag[0] ^= 1;
  EXPECT_FALSE(ac.authenticate(token2).ok());
}

TEST(AccessControl, TokenSerializes) {
  AccessController ac("host-a", key(7));
  AuthToken token = ac.issue_token(AgentId("traveler"));
  const util::Bytes encoded = util::Archive::encode(token);
  AuthToken decoded;
  ASSERT_TRUE(util::Archive::decode(
                  util::ByteSpan(encoded.data(), encoded.size()), decoded)
                  .ok());
  EXPECT_TRUE(ac.authenticate(decoded).ok());
}

TEST(Subject, ToString) {
  EXPECT_EQ((Subject{Subject::Kind::kAgent, "a"}).to_string(), "agent:a");
  EXPECT_EQ((Subject{Subject::Kind::kSystem, "s"}).to_string(), "system:s");
  EXPECT_EQ((Subject{Subject::Kind::kAdmin, "r"}).to_string(), "admin:r");
}

TEST(Permission, Names) {
  EXPECT_EQ(to_string(Permission::kOpenSocket), "open-socket");
  EXPECT_EQ(to_string(Permission::kUseNapletSocket), "use-naplet-socket");
}

}  // namespace
}  // namespace naplet::agent
