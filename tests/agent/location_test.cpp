#include "agent/location.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace naplet::agent {
namespace {

using namespace std::chrono_literals;

NodeInfo node(const std::string& name) {
  NodeInfo info;
  info.server_name = name;
  info.control = {name, 1};
  info.redirector = {name, 2};
  info.migration = {name, 3};
  return info;
}

TEST(LocationService, RegisterAndLookup) {
  LocationService svc;
  svc.register_agent(AgentId("a"), node("host-1"));
  auto found = svc.try_lookup(AgentId("a"));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->server_name, "host-1");
  EXPECT_TRUE(svc.known(AgentId("a")));
  EXPECT_EQ(svc.size(), 1u);
}

TEST(LocationService, UnknownAgent) {
  LocationService svc;
  EXPECT_FALSE(svc.try_lookup(AgentId("ghost")).has_value());
  EXPECT_FALSE(svc.known(AgentId("ghost")));
  auto looked = svc.lookup(AgentId("ghost"), 20ms);
  EXPECT_FALSE(looked.ok());
  EXPECT_EQ(looked.status().code(), util::StatusCode::kNotFound);
}

TEST(LocationService, InTransitHidesAgent) {
  LocationService svc;
  svc.register_agent(AgentId("a"), node("host-1"));
  svc.begin_migration(AgentId("a"));
  EXPECT_FALSE(svc.try_lookup(AgentId("a")).has_value());
  EXPECT_TRUE(svc.known(AgentId("a")));  // still known, just moving
  EXPECT_EQ(svc.size(), 0u);             // not settled
}

TEST(LocationService, LookupBlocksUntilSettled) {
  LocationService svc;
  svc.register_agent(AgentId("a"), node("host-1"));
  svc.begin_migration(AgentId("a"));
  std::thread mover([&] {
    std::this_thread::sleep_for(30ms);
    svc.register_agent(AgentId("a"), node("host-2"));
  });
  auto found = svc.lookup(AgentId("a"), 2s);
  mover.join();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->server_name, "host-2");
}

TEST(LocationService, DeregisterRemoves) {
  LocationService svc;
  svc.register_agent(AgentId("a"), node("host-1"));
  svc.deregister_agent(AgentId("a"));
  EXPECT_FALSE(svc.known(AgentId("a")));
}

TEST(LocationService, ReRegisterMovesAgent) {
  LocationService svc;
  svc.register_agent(AgentId("a"), node("host-1"));
  svc.register_agent(AgentId("a"), node("host-2"));
  EXPECT_EQ(svc.try_lookup(AgentId("a"))->server_name, "host-2");
  EXPECT_EQ(svc.size(), 1u);
}

TEST(LocationService, ServerDirectory) {
  LocationService svc;
  svc.register_server(node("host-1"));
  svc.register_server(node("host-2"));
  auto found = svc.lookup_server("host-1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->control.host, "host-1");
  EXPECT_FALSE(svc.lookup_server("nope").ok());
  svc.deregister_server("host-1");
  EXPECT_FALSE(svc.lookup_server("host-1").ok());
}

TEST(LocationService, BeginMigrationOnUnknownIsNoop) {
  LocationService svc;
  svc.begin_migration(AgentId("ghost"));  // must not crash or register
  EXPECT_FALSE(svc.known(AgentId("ghost")));
}

// Regression: a failed migration used to leave the agent in-transit
// forever (begin_migration with no matching register), wedging every
// blocking lookup until its timeout. end_migration rolls the mark back.
TEST(LocationService, EndMigrationRollsBackFailedTransit) {
  LocationService svc;
  svc.register_agent(AgentId("a"), node("host-1"));
  svc.begin_migration(AgentId("a"));
  ASSERT_FALSE(svc.try_lookup(AgentId("a")).has_value());
  ASSERT_EQ(svc.size(), 0u);

  svc.end_migration(AgentId("a"));  // migration failed; agent stays put
  auto found = svc.try_lookup(AgentId("a"));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->server_name, "host-1");
  EXPECT_EQ(svc.size(), 1u);
}

TEST(LocationService, EndMigrationReleasesBlockedLookup) {
  LocationService svc;
  svc.register_agent(AgentId("a"), node("host-1"));
  svc.begin_migration(AgentId("a"));
  std::thread rollback([&] {
    std::this_thread::sleep_for(30ms);
    svc.end_migration(AgentId("a"));
  });
  // The waiter must see the rolled-back (still settled) location, not
  // time out against a permanently in-transit entry.
  auto found = svc.lookup(AgentId("a"), 2s);
  rollback.join();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->server_name, "host-1");
}

TEST(LocationService, EndMigrationWithoutBeginIsNoop) {
  LocationService svc;
  svc.end_migration(AgentId("ghost"));  // unknown agent: no crash
  EXPECT_FALSE(svc.known(AgentId("ghost")));

  svc.register_agent(AgentId("a"), node("host-1"));
  svc.end_migration(AgentId("a"));  // settled agent: stays settled
  EXPECT_TRUE(svc.try_lookup(AgentId("a")).has_value());
  EXPECT_EQ(svc.size(), 1u);
}

TEST(NodeInfo, Persist) {
  NodeInfo original = node("host-9");
  util::Archive w;
  original.persist(w);
  util::Bytes encoded = std::move(w).take_bytes();
  NodeInfo decoded;
  util::Archive r((util::ByteSpan(encoded.data(), encoded.size())));
  decoded.persist(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded, original);
}

}  // namespace
}  // namespace naplet::agent
