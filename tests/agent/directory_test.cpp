#include "agent/directory.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "net/frame.hpp"
#include "net/tcp.hpp"

namespace naplet::agent {
namespace {

using namespace std::chrono_literals;

NodeInfo node(const std::string& name) {
  NodeInfo info;
  info.server_name = name;
  info.control = {"127.0.0.1", 1111};
  info.redirector = {"127.0.0.1", 2222};
  info.migration = {"127.0.0.1", 3333};
  return info;
}

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest()
      : network_(std::make_shared<net::TcpNetwork>()),
        server_(network_, backing_) {
    EXPECT_TRUE(server_.start().ok());
    remote_ = std::make_unique<RemoteLocationService>(network_,
                                                      server_.endpoint());
  }

  ~DirectoryTest() override { server_.stop(); }

  std::shared_ptr<net::TcpNetwork> network_;
  LocationService backing_;
  DirectoryServer server_;
  std::unique_ptr<RemoteLocationService> remote_;
};

TEST_F(DirectoryTest, RegisterAndTryLookup) {
  remote_->register_agent(AgentId("a"), node("host-1"));
  auto found = remote_->try_lookup(AgentId("a"));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->server_name, "host-1");
  EXPECT_EQ(found->redirector.port, 2222);
  // And it actually landed in the backing registry.
  EXPECT_TRUE(backing_.known(AgentId("a")));
}

TEST_F(DirectoryTest, UnknownAgentPaths) {
  EXPECT_FALSE(remote_->try_lookup(AgentId("ghost")).has_value());
  EXPECT_FALSE(remote_->known(AgentId("ghost")));
  auto looked = remote_->lookup(AgentId("ghost"), 50ms);
  EXPECT_FALSE(looked.ok());
  EXPECT_EQ(looked.status().code(), util::StatusCode::kNotFound);
}

TEST_F(DirectoryTest, BlockingLookupReleasedByRemoteRegistration) {
  remote_->register_agent(AgentId("mover"), node("host-1"));
  remote_->begin_migration(AgentId("mover"));
  EXPECT_FALSE(remote_->try_lookup(AgentId("mover")).has_value());

  std::thread settler([&] {
    std::this_thread::sleep_for(50ms);
    remote_->register_agent(AgentId("mover"), node("host-2"));
  });
  auto found = remote_->lookup(AgentId("mover"), 5s);
  settler.join();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->server_name, "host-2");
}

TEST_F(DirectoryTest, DeregisterAgent) {
  remote_->register_agent(AgentId("a"), node("host-1"));
  remote_->deregister_agent(AgentId("a"));
  EXPECT_FALSE(remote_->known(AgentId("a")));
}

TEST_F(DirectoryTest, SizeCountsSettledAgents) {
  EXPECT_EQ(remote_->size(), 0u);
  remote_->register_agent(AgentId("a"), node("h"));
  remote_->register_agent(AgentId("b"), node("h"));
  remote_->begin_migration(AgentId("b"));
  EXPECT_EQ(remote_->size(), 1u);
}

TEST_F(DirectoryTest, ServerDirectoryOps) {
  remote_->register_server(node("alpha"));
  auto found = remote_->lookup_server("alpha");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->migration.port, 3333);
  EXPECT_FALSE(remote_->lookup_server("missing").ok());
  remote_->deregister_server("alpha");
  EXPECT_FALSE(remote_->lookup_server("alpha").ok());
}

TEST_F(DirectoryTest, MixedLocalAndRemoteClients) {
  // One client writes through the wire, another reads the backing registry
  // directly (and vice versa) — same authority.
  backing_.register_agent(AgentId("local"), node("host-l"));
  EXPECT_TRUE(remote_->known(AgentId("local")));
  remote_->register_agent(AgentId("wire"), node("host-w"));
  EXPECT_TRUE(backing_.known(AgentId("wire")));
}

TEST_F(DirectoryTest, RequestCounter) {
  (void)remote_->size();
  (void)remote_->size();
  EXPECT_GE(server_.requests_served(), 2u);
}

TEST_F(DirectoryTest, UnreachableDirectoryFailsSoft) {
  RemoteLocationService orphan(network_, net::Endpoint{"127.0.0.1", 1});
  EXPECT_FALSE(orphan.try_lookup(AgentId("x")).has_value());
  EXPECT_FALSE(orphan.known(AgentId("x")));
  EXPECT_EQ(orphan.size(), 0u);
  auto looked = orphan.lookup(AgentId("x"), 50ms);
  EXPECT_FALSE(looked.ok());
  EXPECT_FALSE(orphan.last_error().ok());
}

TEST_F(DirectoryTest, GarbageRequestRejected) {
  auto stream = network_->connect(server_.endpoint(), 1s);
  ASSERT_TRUE(stream.ok());
  const util::Bytes junk = {0xEE, 0xFF};
  ASSERT_TRUE(net::write_frame(**stream,
                               util::ByteSpan(junk.data(), junk.size()))
                  .ok());
  auto reply = net::read_frame(**stream);
  ASSERT_TRUE(reply.ok());
  util::BytesReader r(util::ByteSpan(reply->data(), reply->size()));
  EXPECT_NE(static_cast<util::StatusCode>(*r.u8()), util::StatusCode::kOk);
}

TEST_F(DirectoryTest, EndMigrationOverTheWire) {
  remote_->register_agent(AgentId("mover"), node("host-1"));
  remote_->begin_migration(AgentId("mover"));
  EXPECT_FALSE(remote_->try_lookup(AgentId("mover")).has_value());
  EXPECT_TRUE(backing_.known(AgentId("mover")));

  // The migration fails; the source rolls the transit mark back through
  // the directory, and every client sees the agent settled again.
  remote_->end_migration(AgentId("mover"));
  auto found = remote_->try_lookup(AgentId("mover"));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->server_name, "host-1");
  EXPECT_EQ(backing_.size(), 1u);
}

TEST_F(DirectoryTest, EndMigrationReleasesRemoteWaiter) {
  remote_->register_agent(AgentId("mover"), node("host-1"));
  remote_->begin_migration(AgentId("mover"));
  std::thread rollback([&] {
    std::this_thread::sleep_for(50ms);
    RemoteLocationService other(network_, server_.endpoint());
    other.end_migration(AgentId("mover"));
  });
  auto found = remote_->lookup(AgentId("mover"), 5s);
  rollback.join();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->server_name, "host-1");
}

TEST(DirectoryInstruments, PerOpCountersAndLatency) {
  auto network = std::make_shared<net::TcpNetwork>();
  LocationService backing;
  obs::Registry registry;
  DirectoryServer server(network, backing, 0, &registry);
  ASSERT_TRUE(server.start().ok());
  RemoteLocationService remote(network, server.endpoint());

  remote.register_agent(AgentId("a"), node("host-1"));  // mutation
  (void)remote.try_lookup(AgentId("a"));                // lookup
  (void)remote.known(AgentId("a"));                     // lookup
  remote.begin_migration(AgentId("a"));                 // mutation
  remote.end_migration(AgentId("a"));                   // mutation

  // The worker thread records latency and drops the inflight gauge after
  // writing the reply, so the final op can still be settling when the
  // client returns; wait for the instruments to quiesce.
  obs::Snapshot snap = registry.snapshot();
  for (int i = 0; i < 200; ++i) {
    const auto* hist = snap.histogram("directory_op_us");
    const auto* gauge = snap.gauge("directory_inflight");
    if (hist != nullptr && hist->count == 5u && gauge != nullptr &&
        gauge->value == 0) {
      break;
    }
    std::this_thread::sleep_for(10ms);
    snap = registry.snapshot();
  }
  ASSERT_NE(snap.counter("directory_requests"), nullptr);
  EXPECT_EQ(snap.counter("directory_requests")->value, 5u);
  EXPECT_EQ(snap.counter("directory_lookups")->value, 2u);
  EXPECT_EQ(snap.counter("directory_mutations")->value, 3u);
  // Every request was timed, and none is being served right now.
  ASSERT_NE(snap.histogram("directory_op_us"), nullptr);
  EXPECT_EQ(snap.histogram("directory_op_us")->count, 5u);
  ASSERT_NE(snap.gauge("directory_inflight"), nullptr);
  EXPECT_EQ(snap.gauge("directory_inflight")->value, 0);
  server.stop();
}

TEST_F(DirectoryTest, ConcurrentClients) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 25;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      RemoteLocationService client(network_, server_.endpoint());
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string name =
            "agent-" + std::to_string(t) + "-" + std::to_string(i);
        client.register_agent(AgentId(name), node("h" + std::to_string(t)));
        EXPECT_TRUE(client.known(AgentId(name)));
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(backing_.size(),
            static_cast<std::size_t>(kThreads * kOpsPerThread));
}

}  // namespace
}  // namespace naplet::agent
