#include "agent/postoffice.hpp"

#include <gtest/gtest.h>

#include "net/sim.hpp"

namespace naplet::agent {
namespace {

using namespace std::chrono_literals;

// Two PostOffices on two simulated hosts sharing a location service.
class PostOfficeTest : public ::testing::Test {
 protected:
  PostOfficeTest() {
    auto node_a = net_.add_node("a");
    auto node_b = net_.add_node("b");
    bus_a_ = make_bus(*node_a);
    bus_b_ = make_bus(*node_b);
    po_a_ = std::make_unique<PostOffice>(*bus_a_, locations_, "server-a");
    po_b_ = std::make_unique<PostOffice>(*bus_b_, locations_, "server-b");

    node_info_a_.server_name = "server-a";
    node_info_a_.control = bus_a_->local_endpoint();
    node_info_b_.server_name = "server-b";
    node_info_b_.control = bus_b_->local_endpoint();
  }

  ~PostOfficeTest() override {
    po_a_->stop();
    po_b_->stop();
    bus_a_->stop();
    bus_b_->stop();
  }

  std::unique_ptr<ServerBus> make_bus(net::Network& node) {
    auto dgram = node.bind_datagram(0);
    EXPECT_TRUE(dgram.ok());
    return std::make_unique<ServerBus>(
        std::make_unique<net::ReliableChannel>(std::move(*dgram)));
  }

  net::SimNet net_;
  LocationService locations_;
  std::unique_ptr<ServerBus> bus_a_;
  std::unique_ptr<ServerBus> bus_b_;
  std::unique_ptr<PostOffice> po_a_;
  std::unique_ptr<PostOffice> po_b_;
  NodeInfo node_info_a_;
  NodeInfo node_info_b_;
};

util::ByteSpan body(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

TEST_F(PostOfficeTest, LocalDelivery) {
  po_a_->open_mailbox(AgentId("alice"));
  locations_.register_agent(AgentId("alice"), node_info_a_);
  ASSERT_TRUE(po_a_->send(AgentId("bob"), AgentId("alice"), body("hi")).ok());
  auto mail = po_a_->read(AgentId("alice"), 1s);
  ASSERT_TRUE(mail.has_value());
  EXPECT_EQ(mail->from, AgentId("bob"));
  EXPECT_EQ(std::string(mail->body.begin(), mail->body.end()), "hi");
}

TEST_F(PostOfficeTest, RemoteDelivery) {
  po_b_->open_mailbox(AgentId("bob"));
  locations_.register_agent(AgentId("bob"), node_info_b_);
  ASSERT_TRUE(
      po_a_->send(AgentId("alice"), AgentId("bob"), body("remote")).ok());
  auto mail = po_b_->read(AgentId("bob"), 2s);
  ASSERT_TRUE(mail.has_value());
  EXPECT_EQ(std::string(mail->body.begin(), mail->body.end()), "remote");
}

TEST_F(PostOfficeTest, ParkedUntilReceiverAppears) {
  // Receiver not yet registered: mail is parked and retried (persistent
  // semantics), then delivered once the agent settles.
  ASSERT_TRUE(
      po_a_->send(AgentId("alice"), AgentId("late"), body("wait for me")).ok());
  std::this_thread::sleep_for(100ms);
  po_b_->open_mailbox(AgentId("late"));
  locations_.register_agent(AgentId("late"), node_info_b_);
  auto mail = po_b_->read(AgentId("late"), 2s);
  ASSERT_TRUE(mail.has_value());
  EXPECT_EQ(std::string(mail->body.begin(), mail->body.end()), "wait for me");
}

TEST_F(PostOfficeTest, ForwardingAfterMove) {
  // Mail routed to server-a, but the agent has already moved to server-b:
  // a's PostOffice must forward it (paper: messages in transmission are
  // forwarded in support of migration).
  po_a_->open_mailbox(AgentId("mover"));
  locations_.register_agent(AgentId("mover"), node_info_a_);
  ASSERT_TRUE(
      po_b_->send(AgentId("sender"), AgentId("mover"), body("chase")).ok());
  // Let it land at a, then move the agent.
  auto first = po_a_->read(AgentId("mover"), 1s);
  ASSERT_TRUE(first.has_value());

  // Now simulate the move: mailbox drained and reopened at b.
  auto pending = po_a_->drain_mailbox(AgentId("mover"));
  po_b_->open_mailbox(AgentId("mover"));
  po_b_->restore_mailbox(AgentId("mover"), std::move(pending));
  locations_.register_agent(AgentId("mover"), node_info_b_);

  // Mail sent with the stale location must be forwarded by a.
  ASSERT_TRUE(
      po_b_->send(AgentId("sender"), AgentId("mover"), body("after-move")).ok());
  auto mail = po_b_->read(AgentId("mover"), 2s);
  ASSERT_TRUE(mail.has_value());
  EXPECT_EQ(std::string(mail->body.begin(), mail->body.end()), "after-move");
}

TEST_F(PostOfficeTest, MailboxMigratesWithContents) {
  po_a_->open_mailbox(AgentId("m"));
  locations_.register_agent(AgentId("m"), node_info_a_);
  ASSERT_TRUE(po_a_->send(AgentId("s"), AgentId("m"), body("one")).ok());
  ASSERT_TRUE(po_a_->send(AgentId("s"), AgentId("m"), body("two")).ok());
  std::this_thread::sleep_for(50ms);

  auto pending = po_a_->drain_mailbox(AgentId("m"));
  EXPECT_EQ(pending.size(), 2u);
  po_b_->restore_mailbox(AgentId("m"), std::move(pending));
  auto one = po_b_->read(AgentId("m"), 1s);
  auto two = po_b_->read(AgentId("m"), 1s);
  ASSERT_TRUE(one && two);
  EXPECT_EQ(std::string(one->body.begin(), one->body.end()), "one");
  EXPECT_EQ(std::string(two->body.begin(), two->body.end()), "two");
}

TEST_F(PostOfficeTest, TtlExpiryCountsDeadLetters) {
  PostOfficeConfig config;
  config.delivery_ttl = 100ms;
  config.retry_interval = 20ms;
  auto node_c = net_.add_node("c");
  auto bus_c = make_bus(*node_c);
  PostOffice po_c(*bus_c, locations_, "server-c", config);
  ASSERT_TRUE(po_c.send(AgentId("s"), AgentId("nobody"), body("lost")).ok());
  std::this_thread::sleep_for(300ms);
  EXPECT_EQ(po_c.dead_letters(), 1u);
  po_c.stop();
  bus_c->stop();
}

TEST_F(PostOfficeTest, ReadFromUnknownMailbox) {
  EXPECT_FALSE(po_a_->read(AgentId("ghost"), 10ms).has_value());
}

TEST_F(PostOfficeTest, CloseMailboxDropsFurtherReads) {
  po_a_->open_mailbox(AgentId("x"));
  po_a_->close_mailbox(AgentId("x"));
  EXPECT_FALSE(po_a_->read(AgentId("x"), 10ms).has_value());
}

TEST_F(PostOfficeTest, SendAfterStopRejected) {
  auto node_d = net_.add_node("d");
  auto bus_d = make_bus(*node_d);
  PostOffice po_d(*bus_d, locations_, "server-d");
  po_d.stop();
  EXPECT_FALSE(po_d.send(AgentId("a"), AgentId("b"), body("x")).ok());
  bus_d->stop();
}

}  // namespace
}  // namespace naplet::agent
