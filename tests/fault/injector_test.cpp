#include "fault/fault.hpp"

#include <gtest/gtest.h>

namespace naplet::fault {
namespace {

// Each test arms its own plan; always leave the singleton disarmed with the
// default wall clock so tests cannot leak state into one another.
class InjectorTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Injector::instance().disarm();
    Injector::instance().set_time_source(nullptr);
  }
};

TEST(FaultGrammarTest, RuleRoundTrips) {
  for (const char* text : {
           "ctrl.suspend_ack.pre_send@#1:drop",
           "rudp.retransmit@#2x3:delay:40",
           "redirector.handoff.accept@#1:kill",
           "session.resume.replay@#1:dup",
           "rudp.send@#7:error",
           "rudp.send@#3x2:flip",
           "rudp.sack@#1:drop",
           "rudp.fast_retx@#1:drop",
           "rudp.fec@#2:flip",
           "ctrl.suspend.on_recv@t250:drop",
           "rudp.retransmit@t100x4:delay:5",
       }) {
    auto rule = Rule::parse(text);
    ASSERT_TRUE(rule.ok()) << text << ": " << rule.status().to_string();
    EXPECT_EQ(rule->to_string(), text);
  }
}

TEST(FaultGrammarTest, PlanRoundTrips) {
  const std::string text =
      "rudp.send@#4:drop;ctrl.suspend.pre_send@#1:dup;"
      "rudp.retransmit@#1x2:delay:10";
  auto plan = Plan::parse(text);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan->rules.size(), 3u);
  EXPECT_EQ(plan->to_string(), text);
}

TEST(FaultGrammarTest, RejectsMalformedRules) {
  EXPECT_FALSE(Rule::parse("no-at-sign").ok());
  EXPECT_FALSE(Rule::parse("@#1:drop").ok());
  EXPECT_FALSE(Rule::parse("site@1:drop").ok());      // missing # or t
  EXPECT_FALSE(Rule::parse("site@#0:drop").ok());     // hit is 1-based
  EXPECT_FALSE(Rule::parse("site@#1x0:drop").ok());   // empty window
  EXPECT_FALSE(Rule::parse("site@#1:explode").ok());  // unknown action
  EXPECT_FALSE(Rule::parse("site@#1:delay").ok());    // delay needs ms
  EXPECT_FALSE(Rule::parse("site@#1:drop:9").ok());   // only delay takes ms
  EXPECT_FALSE(Rule::parse("site@#banana:drop").ok());
}

TEST_F(InjectorTest, UnarmedSitesAreSilent) {
  ASSERT_FALSE(armed());
  EXPECT_FALSE(hit("rudp.send"));
  // Nothing was recorded: free hit() short-circuits before the registry.
  Injector::instance().arm(Plan{});
  EXPECT_EQ(Injector::instance().hit_count("rudp.send"), 0u);
}

TEST_F(InjectorTest, HitTriggerFiresOnExactWindow) {
  auto plan = Plan::parse("x@#2x2:drop");
  ASSERT_TRUE(plan.ok());
  Injector::instance().arm(*plan);
  EXPECT_EQ(hit("x").action, Action::kNone);  // hit 1
  EXPECT_EQ(hit("x").action, Action::kDrop);  // hit 2
  EXPECT_EQ(hit("x").action, Action::kDrop);  // hit 3
  EXPECT_EQ(hit("x").action, Action::kNone);  // hit 4
  EXPECT_EQ(Injector::instance().hit_count("x"), 4u);
  EXPECT_EQ(Injector::instance().hit_count("y"), 0u);
}

TEST_F(InjectorTest, FirstMatchingRuleWins) {
  auto plan = Plan::parse("x@#1:error;x@#1:drop");
  ASSERT_TRUE(plan.ok());
  Injector::instance().arm(*plan);
  EXPECT_EQ(hit("x").action, Action::kError);
}

TEST_F(InjectorTest, TimeTriggerUsesInstalledClock) {
  double now_ms = 0;
  Injector::instance().set_time_source([&now_ms] { return now_ms; });
  auto plan = Plan::parse("x@t100:error");
  ASSERT_TRUE(plan.ok());
  Injector::instance().arm(*plan);

  now_ms = 50;
  EXPECT_EQ(hit("x").action, Action::kNone);
  now_ms = 150;
  EXPECT_EQ(hit("x").action, Action::kError);
  now_ms = 200;
  EXPECT_EQ(hit("x").action, Action::kNone);  // count=1, already fired

  const auto times = Injector::instance().hit_times_ms("x");
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 50);
  EXPECT_EQ(times[1], 150);
  EXPECT_EQ(times[2], 200);
}

TEST_F(InjectorTest, ObservationModeRecordsWithoutFaults) {
  Injector::instance().arm(Plan{});  // empty plan: observation only
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(hit("probe"));
  EXPECT_EQ(Injector::instance().hit_count("probe"), 5u);
  EXPECT_EQ(Injector::instance().hit_times_ms("probe").size(), 5u);
}

TEST_F(InjectorTest, ArmResetsCountersAndTrace) {
  auto plan = Plan::parse("x@#1:drop");
  ASSERT_TRUE(plan.ok());
  Injector::instance().arm(*plan);
  EXPECT_EQ(hit("x").action, Action::kDrop);
  observe_transition(1, true, 0, 0, 0);
  EXPECT_EQ(Injector::instance().transitions().size(), 1u);

  Injector::instance().arm(*plan);  // re-arm: everything resets
  EXPECT_EQ(Injector::instance().hit_count("x"), 0u);
  EXPECT_TRUE(Injector::instance().transitions().empty());
  EXPECT_EQ(hit("x").action, Action::kDrop);  // rule window restarts too
}

TEST_F(InjectorTest, DisarmStopsRecording) {
  Injector::instance().arm(Plan{});
  EXPECT_FALSE(hit("x"));
  Injector::instance().disarm();
  EXPECT_FALSE(armed());
  EXPECT_FALSE(hit("x"));
  Injector::instance().arm(Plan{});
  EXPECT_EQ(Injector::instance().hit_count("x"), 0u);
}

}  // namespace
}  // namespace naplet::fault
