// Satellite scenario: a suspend/resume cycle whose suspend handshake
// starts while the client<->server link is partitioned. The partition
// heals mid-handshake; the rudp layer's capped backoff must carry the
// SUSPEND exchange across the heal, the migration then proceeds, and the
// frames buffered by the suspend drain must be replayed exactly once —
// judged by the delivery ledger, not by eyeballing.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/test_realm.hpp"
#include "fault/oracle.hpp"

namespace naplet::nsock::testing {
namespace {

TEST(PartitionHealTest, SuspendSurvivesPartitionHealingMidHandshake) {
  SimRealm realm(3, /*security=*/false, /*link_latency=*/1ms,
                 [](NodeConfig& config) {
                   config.server.rudp_config.retransmit_interval = 15ms;
                   config.server.rudp_config.max_attempts = 40;
                   config.server.rudp_config.jitter_seed = 77;
                 });
  const auto cli = realm.pseudo_agent("heal-cli", 0);
  const auto srv = realm.pseudo_agent("heal-srv", 1);
  auto conn = make_connection(realm, cli, 0, srv, 1);
  ASSERT_TRUE(conn.client && conn.server);
  const std::uint64_t conn_id = conn.client->conn_id();

  fault::DeliveryLedger ledger;
  constexpr std::uint64_t kRev = 1;

  // Three reverse messages left undrained: they must ride the suspension
  // buffer across the partition and the hop.
  for (int i = 0; i < 3; ++i) {
    const std::string body = "buffered" + std::to_string(i);
    ASSERT_TRUE(conn.server->send(span(body), 2s).ok());
    ledger.record_sent(kRev, span(body));
  }
  std::this_thread::sleep_for(30ms);  // let them reach the client's stream

  realm.net().set_partition("node0", "node1", true);

  // Heal the partition squarely inside the suspend handshake's retry
  // window: the first SUS datagrams die in the partition, the backed-off
  // retransmits land after the heal.
  std::thread healer([&realm] {
    std::this_thread::sleep_for(120ms);
    realm.net().set_partition("node0", "node1", false);
  });

  realm.locations().begin_migration(cli);
  const auto prepared = realm.ctrl(0).prepare_migration(cli);
  healer.join();
  ASSERT_TRUE(prepared.ok()) << prepared.to_string();

  const util::Bytes sessions = realm.ctrl(0).export_sessions(cli);
  ASSERT_TRUE(realm.ctrl(2)
                  .import_sessions(cli, util::ByteSpan(sessions.data(),
                                                       sessions.size()))
                  .ok());
  realm.locations().register_agent(cli, realm.server(2).node_info());
  ASSERT_TRUE(realm.ctrl(2).complete_migration(cli).ok());

  SessionPtr client2 = realm.ctrl(2).session_by_id(conn_id);
  ASSERT_TRUE(client2);
  ASSERT_TRUE(fault::await_established(*client2, 8s).ok());
  ASSERT_TRUE(fault::await_established(*conn.server, 8s).ok());

  // The partition must actually have cost datagrams, and the heal must
  // leave no partition standing — straight off the fabric counters the
  // controller now surfaces.
  const auto counters = realm.net().counters();
  EXPECT_GT(counters.datagrams_dropped, 0u);
  EXPECT_EQ(counters.partition_events, 1u);
  EXPECT_EQ(counters.partitions_active, 0u);
  const auto stats = realm.ctrl(2).stats();
  EXPECT_EQ(stats.net_partition_events, 1u);
  EXPECT_GT(stats.net_datagrams_dropped, 0u);
  EXPECT_NE(stats.to_string().find("net{dropped="), std::string::npos)
      << stats.to_string();

  // Exactly-once replay of the buffered frames, in order, then live
  // traffic both ways on the resumed connection.
  int from_buffer = 0;
  for (int i = 0; i < 3; ++i) {
    auto got = client2->recv(2s);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    from_buffer += got->from_buffer ? 1 : 0;
    ledger.record_delivered(kRev, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }
  EXPECT_GE(from_buffer, 1);
  // No fourth frame may appear: that would be a duplicate replay.
  EXPECT_FALSE(client2->recv(300ms).ok());

  const std::string post = "post-heal";
  ASSERT_TRUE(conn.server->send(span(post), 2s).ok());
  ledger.record_sent(kRev, span(post));
  auto got = client2->recv(2s);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  ledger.record_delivered(kRev, got->seq,
                          util::ByteSpan(got->body.data(), got->body.size()));
  ASSERT_TRUE(client2->send(span("fwd-ok"), 2s).ok());
  ASSERT_TRUE(conn.server->recv(2s).ok());

  const auto verdict = ledger.check(/*require_complete=*/true);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
}

}  // namespace
}  // namespace naplet::nsock::testing
