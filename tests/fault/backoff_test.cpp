// Satellite coverage for the capped, jittered rudp retransmit backoff.
// The schedule itself is pure (ReliableChannel::backoff_base); the live
// retransmit behavior is observed through the fault injector's observation
// mode — every retransmit attempt hits "rudp.retransmit" and records a
// fault-clock timestamp, so the test reads the actual schedule instead of
// instrumenting the channel.
#include <gtest/gtest.h>

#include <chrono>

#include "fault/fault.hpp"
#include "net/rudp.hpp"
#include "net/sim.hpp"

namespace naplet::net {
namespace {

using namespace std::chrono_literals;

TEST(BackoffTest, BaseScheduleIsExponentialAndCapped) {
  RudpConfig config;
  config.retransmit_interval = 10ms;
  config.backoff_multiplier = 2.0;
  // Default cap: 4x the base interval.
  EXPECT_EQ(ReliableChannel::backoff_base(config, 0), 10ms);
  EXPECT_EQ(ReliableChannel::backoff_base(config, 1), 20ms);
  EXPECT_EQ(ReliableChannel::backoff_base(config, 2), 40ms);
  EXPECT_EQ(ReliableChannel::backoff_base(config, 3), 40ms);
  EXPECT_EQ(ReliableChannel::backoff_base(config, 100), 40ms);

  config.max_retransmit_interval = 25ms;
  EXPECT_EQ(ReliableChannel::backoff_base(config, 0), 10ms);
  EXPECT_EQ(ReliableChannel::backoff_base(config, 1), 20ms);
  EXPECT_EQ(ReliableChannel::backoff_base(config, 2), 25ms);
  EXPECT_EQ(ReliableChannel::backoff_base(config, 1000), 25ms);
}

TEST(BackoffTest, MultiplierOneKeepsFixedInterval) {
  RudpConfig config;
  config.retransmit_interval = 15ms;
  config.backoff_multiplier = 1.0;
  EXPECT_EQ(ReliableChannel::backoff_base(config, 0), 15ms);
  EXPECT_EQ(ReliableChannel::backoff_base(config, 7), 15ms);
}

class BackoffFaultClockTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::instance().disarm(); }
};

TEST_F(BackoffFaultClockTest, RetransmitGapsFollowBackoffSchedule) {
  SimNet net(7);
  auto sender = net.add_node("bo-a");
  auto sink = net.add_node("bo-b");
  auto sock = sender->bind_datagram(0);
  ASSERT_TRUE(sock.ok());
  // A bound-but-mute datagram socket: packets arrive, no rudp ACK ever
  // comes back, so the channel walks its whole retransmit schedule.
  auto mute = sink->bind_datagram(0);
  ASSERT_TRUE(mute.ok());
  const Endpoint dest = (*mute)->local_endpoint();

  RudpConfig config;
  config.retransmit_interval = 20ms;
  config.backoff_multiplier = 2.0;  // 20, 40, 80 (cap) ...
  config.max_attempts = 4;
  config.retransmit_jitter = 0.0;  // exact schedule for this test
  config.jitter_seed = 1;
  ReliableChannel channel(std::move(*sock), config);

  fault::Injector::instance().arm(fault::Plan{});  // observation mode
  const std::uint8_t byte = 0x5A;
  const auto status = channel.send(dest, util::ByteSpan(&byte, 1));
  fault::Injector::instance().disarm();
  EXPECT_EQ(status.code(), util::StatusCode::kTimeout);
  EXPECT_EQ(channel.retransmissions(), 3u);

  auto& injector = fault::Injector::instance();
  EXPECT_EQ(injector.hit_count("rudp.send"), 1u);
  const auto first = injector.hit_times_ms("rudp.send");
  const auto retx = injector.hit_times_ms("rudp.retransmit");
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(retx.size(), 3u);

  // Gap k reflects backoff_base(k): 20, 40, 80 ms. Sleeps only overshoot,
  // so assert a tight lower bound and a loose upper one, and that the
  // schedule actually grows.
  const double gaps[] = {retx[0] - first[0], retx[1] - retx[0],
                         retx[2] - retx[1]};
  EXPECT_GE(gaps[0], 19.0);
  EXPECT_GE(gaps[1], 39.0);
  EXPECT_GE(gaps[2], 79.0);
  EXPECT_LT(gaps[0], 200.0);
  EXPECT_GT(gaps[1], gaps[0]);
  EXPECT_GT(gaps[2], gaps[1]);
}

TEST_F(BackoffFaultClockTest, JitterStaysInsideConfiguredBand) {
  SimNet net(11);
  auto sender = net.add_node("bo-c");
  auto sink = net.add_node("bo-d");
  auto sock = sender->bind_datagram(0);
  auto mute = sink->bind_datagram(0);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(mute.ok());

  RudpConfig config;
  config.retransmit_interval = 20ms;
  config.backoff_multiplier = 1.0;  // isolate the jitter factor
  config.max_attempts = 6;
  config.retransmit_jitter = 0.4;  // waits in [12, 28) ms
  config.jitter_seed = 99;         // reproducible draw sequence
  ReliableChannel channel(std::move(*sock), config);

  fault::Injector::instance().arm(fault::Plan{});
  const std::uint8_t byte = 0x5A;
  const auto status =
      channel.send((*mute)->local_endpoint(), util::ByteSpan(&byte, 1));
  fault::Injector::instance().disarm();
  EXPECT_EQ(status.code(), util::StatusCode::kTimeout);

  const auto first = fault::Injector::instance().hit_times_ms("rudp.send");
  const auto retx =
      fault::Injector::instance().hit_times_ms("rudp.retransmit");
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(retx.size(), 5u);
  double prev = first[0];
  for (const double t : retx) {
    const double gap = t - prev;
    prev = t;
    EXPECT_GE(gap, 11.0);   // >= (1 - 0.4) * 20ms, minus clock slack
    EXPECT_LT(gap, 150.0);  // << a pathological stall
  }
}

TEST_F(BackoffFaultClockTest, DroppedFirstSendRecoversViaRetransmit) {
  SimNet net(13);
  auto a = net.add_node("bo-e");
  auto b = net.add_node("bo-f");
  auto sock_a = a->bind_datagram(0);
  auto sock_b = b->bind_datagram(0);
  ASSERT_TRUE(sock_a.ok());
  ASSERT_TRUE(sock_b.ok());

  RudpConfig config;
  config.retransmit_interval = 10ms;
  config.max_attempts = 10;
  config.jitter_seed = 5;
  ReliableChannel chan_a(std::move(*sock_a), config);
  ReliableChannel chan_b(std::move(*sock_b), config);

  auto plan = fault::Plan::parse("rudp.send@#1:drop");
  ASSERT_TRUE(plan.ok());
  fault::Injector::instance().arm(*plan);
  const std::uint8_t byte = 0x42;
  const auto status =
      chan_a.send(chan_b.local_endpoint(), util::ByteSpan(&byte, 1));
  fault::Injector::instance().disarm();

  ASSERT_TRUE(status.ok()) << status.to_string();
  EXPECT_GE(chan_a.retransmissions(), 1u);
  auto got = chan_b.recv(1s);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->payload.size(), 1u);
  EXPECT_EQ(got->payload[0], 0x42);
}

TEST_F(BackoffFaultClockTest, ErrorRuleFailsTheSend) {
  SimNet net(17);
  auto a = net.add_node("bo-g");
  auto sock = a->bind_datagram(0);
  ASSERT_TRUE(sock.ok());
  ReliableChannel channel(std::move(*sock), RudpConfig{});

  auto plan = fault::Plan::parse("rudp.send@#1:error");
  ASSERT_TRUE(plan.ok());
  fault::Injector::instance().arm(*plan);
  const std::uint8_t byte = 0;
  const auto status = channel.send(Endpoint{"bo-g", 1}, util::ByteSpan(&byte, 1));
  fault::Injector::instance().disarm();
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace naplet::net
