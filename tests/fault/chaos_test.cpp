// End-to-end coverage of the chaos harness: generated schedules inside the
// survivable envelope must pass, the same seed must reproduce bit-for-bit,
// and the deliberately planted exactly-once regression must be caught by
// the delivery ledger and delta-debugged back to the single planted rule.
#include "fault/chaos.hpp"

#include <gtest/gtest.h>

#include <string>

#include "fault/fault.hpp"

namespace naplet::fault {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { Injector::instance().disarm(); }
};

TEST_F(ChaosTest, GenerateCaseIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 7331ull}) {
    const ChaosCase a = generate_case(seed, /*light=*/true);
    const ChaosCase b = generate_case(seed, /*light=*/true);
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.plan.to_string(), b.plan.to_string());
    EXPECT_EQ(a.forward_msgs, b.forward_msgs);
    EXPECT_FALSE(a.plan.rules.empty());
  }
}

TEST_F(ChaosTest, DifferentSeedsDiverge) {
  // Not a hard guarantee seed-by-seed, but across a small window the
  // generator must not collapse to one schedule.
  const std::string first = generate_case(100, true).plan.to_string();
  bool diverged = false;
  for (std::uint64_t seed = 101; seed <= 110 && !diverged; ++seed) {
    diverged = generate_case(seed, true).plan.to_string() != first;
  }
  EXPECT_TRUE(diverged);
}

TEST_F(ChaosTest, FixedSeedSweepPasses) {
  for (std::uint64_t seed = 42; seed < 47; ++seed) {
    const ChaosCase chaos_case = generate_case(seed, /*light=*/true);
    const ChaosResult result = run_case(chaos_case);
    EXPECT_TRUE(result.pass) << result.line(chaos_case);
  }
}

TEST_F(ChaosTest, SameSeedReplaysBitForBit) {
  const ChaosCase chaos_case = generate_case(1234, /*light=*/true);
  const std::string once = run_case(chaos_case).line(chaos_case);
  const std::string twice = run_case(chaos_case).line(chaos_case);
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("verdict=PASS"), std::string::npos) << once;
}

TEST_F(ChaosTest, PlantedDuplicateReplayIsCaughtAndMinimized) {
  // Single-migration scenario keeps reverse frames parked in the client's
  // suspension buffer, which is exactly where the planted fault duplicates.
  ChaosCase chaos_case;
  chaos_case.seed = 7;
  chaos_case.scenario = Scenario::kSingleMigration;
  chaos_case.forward_msgs = 4;
  chaos_case.reverse_msgs = 3;
  chaos_case.plan.seed = 7;
  // Noise the delta-debugger must strip away again.
  auto noise = Rule::parse("rudp.send@#3:drop");
  ASSERT_TRUE(noise.ok());
  chaos_case.plan.rules.push_back(*noise);
  chaos_case.plan.rules.push_back(planted_duplicate_replay_rule());

  const ChaosResult result = run_case(chaos_case);
  ASSERT_FALSE(result.pass);
  EXPECT_NE(result.failure.find("duplicate"), std::string::npos)
      << result.failure;

  int reruns = 0;
  const Plan minimal = minimize_plan(chaos_case, &reruns);
  ASSERT_LE(minimal.rules.size(), 2u);
  ASSERT_FALSE(minimal.rules.empty());
  bool has_planted = false;
  for (const Rule& rule : minimal.rules) {
    has_planted |= rule.site == "session.resume.replay" &&
                   rule.action == Action::kDuplicate;
  }
  EXPECT_TRUE(has_planted) << minimal.to_string();
  EXPECT_GE(reruns, 1);
}

TEST_F(ChaosTest, KnownSitesCoverTheWovenSurface) {
  const auto sites = known_sites();
  const auto has = [&](const char* site) {
    for (const auto& s : sites) {
      if (s == site) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("rudp.send"));
  EXPECT_TRUE(has("rudp.retransmit"));
  EXPECT_TRUE(has("redirector.handoff.accept"));
  EXPECT_TRUE(has("session.resume.replay"));
  EXPECT_TRUE(has("ctrl.suspend_ack.pre_send"));
  EXPECT_TRUE(has("ctrl.sus_res.on_recv"));
  // Every generated rule must target a woven site, or a plan could name a
  // site that never fires and silently test nothing.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const Rule& rule : generate_case(seed, true).plan.rules) {
      EXPECT_TRUE(has(rule.site.c_str())) << rule.site;
    }
  }
}

}  // namespace
}  // namespace naplet::fault
