#include "fault/oracle.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/state.hpp"

namespace naplet::fault {
namespace {

util::ByteSpan span_of(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

TEST(DeliveryLedgerTest, ExactlyOnceInOrderPasses) {
  DeliveryLedger ledger;
  const std::string msgs[] = {"alpha", "bravo", "charlie"};
  for (const auto& m : msgs) ledger.record_sent(0, span_of(m));
  std::uint64_t seq = 10;
  for (const auto& m : msgs) ledger.record_delivered(0, seq += 2, span_of(m));
  EXPECT_TRUE(ledger.check(/*require_complete=*/true).ok());
  EXPECT_EQ(ledger.sent_count(0), 3u);
  EXPECT_EQ(ledger.delivered_count(0), 3u);
}

TEST(DeliveryLedgerTest, CatchesDuplicateDelivery) {
  DeliveryLedger ledger;
  ledger.record_sent(7, span_of("only"));
  ledger.record_delivered(7, 1, span_of("only"));
  ledger.record_delivered(7, 2, span_of("only"));
  const auto status = ledger.check(true);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.to_string().find("duplicate delivery"), std::string::npos)
      << status.to_string();
}

TEST(DeliveryLedgerTest, CatchesNonIncreasingSeq) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("a"));
  ledger.record_sent(0, span_of("b"));
  ledger.record_delivered(0, 5, span_of("a"));
  ledger.record_delivered(0, 5, span_of("b"));  // replayed frame seq
  EXPECT_FALSE(ledger.check(true).ok());
}

TEST(DeliveryLedgerTest, CatchesContentCorruption) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("payload"));
  ledger.record_delivered(0, 1, span_of("pAyload"));
  const auto status = ledger.check(true);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.to_string().find("does not match"), std::string::npos)
      << status.to_string();
}

TEST(DeliveryLedgerTest, CatchesReordering) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("first"));
  ledger.record_sent(0, span_of("second"));
  // Both frames arrive, swapped: seqs increase but contents mismatch.
  ledger.record_delivered(0, 1, span_of("second"));
  ledger.record_delivered(0, 2, span_of("first"));
  EXPECT_FALSE(ledger.check(true).ok());
}

TEST(DeliveryLedgerTest, PrefixPassesOnlyWhenIncompleteAllowed) {
  DeliveryLedger ledger;
  ledger.record_sent(3, span_of("kept"));
  ledger.record_sent(3, span_of("lost"));
  ledger.record_delivered(3, 1, span_of("kept"));
  EXPECT_FALSE(ledger.check(/*require_complete=*/true).ok());
  EXPECT_TRUE(ledger.check(/*require_complete=*/false).ok());
}

TEST(DeliveryLedgerTest, StreamsAreIndependent) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("fwd"));
  ledger.record_delivered(0, 1, span_of("fwd"));
  ledger.record_sent(1, span_of("rev"));
  ledger.record_delivered(1, 1, span_of("rev"));
  EXPECT_TRUE(ledger.check(true).ok());
}

TransitionRecord legal(nsock::ConnState from, nsock::ConnEvent event) {
  const auto to = nsock::transition(from, event);
  EXPECT_TRUE(to.has_value())
      << "expected a golden-table edge from " << nsock::to_string(from);
  return TransitionRecord{1, true, static_cast<std::uint8_t>(from),
                          static_cast<std::uint8_t>(event),
                          static_cast<std::uint8_t>(to.value_or(from))};
}

// Cross-connection causal-cut oracle (ISSUE 9): global send stamps order
// every record_sent across streams; a cut is consistent iff no stream's
// included send was produced after another stream's excluded one.

TEST(ConsistentCutTest, AllIncludedOrAllExcludedPasses) {
  DeliveryLedger ledger;
  // Interleaved production across two streams.
  ledger.record_sent(0, span_of("a0"));  // stamp 1
  ledger.record_sent(1, span_of("b0"));  // stamp 2
  ledger.record_sent(0, span_of("a1"));  // stamp 3
  ledger.record_sent(1, span_of("b1"));  // stamp 4
  const DeliveryLedger::CutPoint everything[] = {{0, 2}, {1, 2}};
  EXPECT_TRUE(ledger.check_consistent_cut(everything).ok());
  const DeliveryLedger::CutPoint nothing[] = {{0, 0}, {1, 0}};
  EXPECT_TRUE(ledger.check_consistent_cut(nothing).ok());
}

TEST(ConsistentCutTest, PrefixCutAlongProductionOrderPasses) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("a0"));  // stamp 1
  ledger.record_sent(0, span_of("a1"));  // stamp 2
  ledger.record_sent(1, span_of("b0"));  // stamp 3
  ledger.record_sent(1, span_of("b1"));  // stamp 4
  // Cut after stamp 2: stream 0 fully in, stream 1 fully out.
  const DeliveryLedger::CutPoint cut[] = {{0, 2}, {1, 0}};
  EXPECT_TRUE(ledger.check_consistent_cut(cut).ok());
}

TEST(ConsistentCutTest, CatchesSendSlippingPastAnotherStreamsCut) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("a0"));  // stamp 1
  ledger.record_sent(1, span_of("b0"));  // stamp 2
  ledger.record_sent(0, span_of("a1"));  // stamp 3, after b0
  // Stream 1 excludes b0 (stamp 2) but stream 0 includes a1 (stamp 3):
  // a message produced AFTER the excluded one is inside the cut.
  const DeliveryLedger::CutPoint cut[] = {{0, 2}, {1, 0}};
  const util::Status st = ledger.check_consistent_cut(cut);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.to_string().find("inconsistent group cut"),
            std::string::npos);
}

TEST(ConsistentCutTest, MarkBeyondSentAndUnknownStreamsAreBenign) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("a0"));
  // seq_mark past the recorded sends clamps; an unseen stream is skipped.
  const DeliveryLedger::CutPoint cut[] = {{0, 99}, {42, 7}};
  EXPECT_TRUE(ledger.check_consistent_cut(cut).ok());
}

TEST(FsmTraceTest, GoldenTableTransitionsPass) {
  const TransitionRecord trace[] = {
      legal(nsock::ConnState::kEstablished, nsock::ConnEvent::kAppSuspend),
      legal(nsock::ConnState::kSusSent, nsock::ConnEvent::kRecvSusAck),
      legal(nsock::ConnState::kSusAcked, nsock::ConnEvent::kExecSuspended),
      legal(nsock::ConnState::kSuspended, nsock::ConnEvent::kAppResume),
  };
  EXPECT_TRUE(check_fsm_trace(trace).ok());
}

TEST(FsmTraceTest, RejectsTransitionNotInTable) {
  // kClosed has no kRecvSusAck edge in the golden table.
  const TransitionRecord trace[] = {TransitionRecord{
      1, false, static_cast<std::uint8_t>(nsock::ConnState::kClosed),
      static_cast<std::uint8_t>(nsock::ConnEvent::kRecvSusAck), 0}};
  EXPECT_FALSE(check_fsm_trace(trace).ok());
}

TEST(FsmTraceTest, RejectsWrongDestination) {
  TransitionRecord record =
      legal(nsock::ConnState::kEstablished, nsock::ConnEvent::kAppSuspend);
  record.to = static_cast<std::uint8_t>(nsock::ConnState::kClosed);
  const TransitionRecord trace[] = {record};
  EXPECT_FALSE(check_fsm_trace(trace).ok());
}

TEST(FsmTraceTest, RejectsOutOfRangeRecords) {
  const TransitionRecord trace[] = {
      TransitionRecord{1, true, 200, 0, 0},
  };
  EXPECT_FALSE(check_fsm_trace(trace).ok());
}

}  // namespace
}  // namespace naplet::fault
