#include "fault/oracle.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/state.hpp"

namespace naplet::fault {
namespace {

util::ByteSpan span_of(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

TEST(DeliveryLedgerTest, ExactlyOnceInOrderPasses) {
  DeliveryLedger ledger;
  const std::string msgs[] = {"alpha", "bravo", "charlie"};
  for (const auto& m : msgs) ledger.record_sent(0, span_of(m));
  std::uint64_t seq = 10;
  for (const auto& m : msgs) ledger.record_delivered(0, seq += 2, span_of(m));
  EXPECT_TRUE(ledger.check(/*require_complete=*/true).ok());
  EXPECT_EQ(ledger.sent_count(0), 3u);
  EXPECT_EQ(ledger.delivered_count(0), 3u);
}

TEST(DeliveryLedgerTest, CatchesDuplicateDelivery) {
  DeliveryLedger ledger;
  ledger.record_sent(7, span_of("only"));
  ledger.record_delivered(7, 1, span_of("only"));
  ledger.record_delivered(7, 2, span_of("only"));
  const auto status = ledger.check(true);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.to_string().find("duplicate delivery"), std::string::npos)
      << status.to_string();
}

TEST(DeliveryLedgerTest, CatchesNonIncreasingSeq) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("a"));
  ledger.record_sent(0, span_of("b"));
  ledger.record_delivered(0, 5, span_of("a"));
  ledger.record_delivered(0, 5, span_of("b"));  // replayed frame seq
  EXPECT_FALSE(ledger.check(true).ok());
}

TEST(DeliveryLedgerTest, CatchesContentCorruption) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("payload"));
  ledger.record_delivered(0, 1, span_of("pAyload"));
  const auto status = ledger.check(true);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.to_string().find("does not match"), std::string::npos)
      << status.to_string();
}

TEST(DeliveryLedgerTest, CatchesReordering) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("first"));
  ledger.record_sent(0, span_of("second"));
  // Both frames arrive, swapped: seqs increase but contents mismatch.
  ledger.record_delivered(0, 1, span_of("second"));
  ledger.record_delivered(0, 2, span_of("first"));
  EXPECT_FALSE(ledger.check(true).ok());
}

TEST(DeliveryLedgerTest, PrefixPassesOnlyWhenIncompleteAllowed) {
  DeliveryLedger ledger;
  ledger.record_sent(3, span_of("kept"));
  ledger.record_sent(3, span_of("lost"));
  ledger.record_delivered(3, 1, span_of("kept"));
  EXPECT_FALSE(ledger.check(/*require_complete=*/true).ok());
  EXPECT_TRUE(ledger.check(/*require_complete=*/false).ok());
}

TEST(DeliveryLedgerTest, StreamsAreIndependent) {
  DeliveryLedger ledger;
  ledger.record_sent(0, span_of("fwd"));
  ledger.record_delivered(0, 1, span_of("fwd"));
  ledger.record_sent(1, span_of("rev"));
  ledger.record_delivered(1, 1, span_of("rev"));
  EXPECT_TRUE(ledger.check(true).ok());
}

TransitionRecord legal(nsock::ConnState from, nsock::ConnEvent event) {
  const auto to = nsock::transition(from, event);
  EXPECT_TRUE(to.has_value())
      << "expected a golden-table edge from " << nsock::to_string(from);
  return TransitionRecord{1, true, static_cast<std::uint8_t>(from),
                          static_cast<std::uint8_t>(event),
                          static_cast<std::uint8_t>(to.value_or(from))};
}

TEST(FsmTraceTest, GoldenTableTransitionsPass) {
  const TransitionRecord trace[] = {
      legal(nsock::ConnState::kEstablished, nsock::ConnEvent::kAppSuspend),
      legal(nsock::ConnState::kSusSent, nsock::ConnEvent::kRecvSusAck),
      legal(nsock::ConnState::kSusAcked, nsock::ConnEvent::kExecSuspended),
      legal(nsock::ConnState::kSuspended, nsock::ConnEvent::kAppResume),
  };
  EXPECT_TRUE(check_fsm_trace(trace).ok());
}

TEST(FsmTraceTest, RejectsTransitionNotInTable) {
  // kClosed has no kRecvSusAck edge in the golden table.
  const TransitionRecord trace[] = {TransitionRecord{
      1, false, static_cast<std::uint8_t>(nsock::ConnState::kClosed),
      static_cast<std::uint8_t>(nsock::ConnEvent::kRecvSusAck), 0}};
  EXPECT_FALSE(check_fsm_trace(trace).ok());
}

TEST(FsmTraceTest, RejectsWrongDestination) {
  TransitionRecord record =
      legal(nsock::ConnState::kEstablished, nsock::ConnEvent::kAppSuspend);
  record.to = static_cast<std::uint8_t>(nsock::ConnState::kClosed);
  const TransitionRecord trace[] = {record};
  EXPECT_FALSE(check_fsm_trace(trace).ok());
}

TEST(FsmTraceTest, RejectsOutOfRangeRecords) {
  const TransitionRecord trace[] = {
      TransitionRecord{1, true, 200, 0, 0},
  };
  EXPECT_FALSE(check_fsm_trace(trace).ok());
}

}  // namespace
}  // namespace naplet::fault
