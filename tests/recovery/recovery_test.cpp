// Crash-tolerant control-plane integration tests: a controller is killed
// (Realm::remove_node — no protocol goodbye) and stood up again under the
// same name; with durability on, recover() replays the journal and the
// peer's migration completes across the restart. Also covers the satellite
// guarantees: lease eviction, abort_session waking blocked waiters,
// epoch admission, the probe timeout, and deadline-bounded rudp sends.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <thread>

#include "core/runtime.hpp"
#include "core/test_realm.hpp"
#include "fault/chaos.hpp"
#include "net/rudp.hpp"
#include "net/sim.hpp"

namespace naplet::nsock {
namespace {

namespace fs = std::filesystem;
using namespace naplet::nsock::testing;

std::string scratch_dir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("naplet-recovery-test-" + tag + "-" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  return dir;
}

/// Config for the crash-restart realms: short timeouts so the expected
/// failures are quick, resume retries + rollback + leases on when
/// `recovery`, plus a journal for the node that will be killed.
NodeConfig restart_config(bool recovery, const std::string& durable_dir) {
  NodeConfig config;
  config.controller.security = false;
  config.server.rudp_config.retransmit_interval =
      std::chrono::milliseconds(15);
  config.server.rudp_config.max_attempts = 40;
  config.controller.ctrl_response_timeout = 1s;
  config.controller.drain_timeout = 1s;
  if (recovery) {
    config.controller.failure_recovery.enabled = true;
    config.controller.failure_recovery.probe_interval = 500ms;
    config.controller.failure_recovery.probe_timeout = 200ms;
    config.controller.failure_recovery.miss_threshold = 1000;
    config.controller.suspend_rollback = true;
    config.controller.resume_max_attempts = 25;
    config.controller.resume_retry_backoff = 50ms;
    config.controller.resume_retry_cap = 400ms;
    config.controller.resume_timeout = 8s;
    config.controller.redirector_leases.enabled = true;
    config.controller.redirector_leases.ttl = 3s;
    if (!durable_dir.empty()) {
      config.controller.durability.enabled = true;
      config.controller.durability.dir = durable_dir;
      config.controller.durability.compact_every = 8;
    }
  } else {
    config.controller.resume_max_attempts = 1;
    config.controller.resume_timeout = 2s;
  }
  return config;
}

/// Three-node realm where node1 (the server host) can be crash-restarted.
struct RestartRealm {
  explicit RestartRealm(bool recovery, const std::string& tag)
      : recovery_(recovery), dir_(scratch_dir(tag)), net_(/*seed=*/1) {
    net_.set_default_link(net::LinkConfig{.latency = 1ms});
    for (int i = 0; i < 3; ++i) {
      const std::string name = "node" + std::to_string(i);
      realm_.add_node(name, net_.add_node(name),
                      restart_config(recovery_, i == 1 ? dir_ : ""));
    }
    EXPECT_TRUE(realm_.start().ok());
  }
  ~RestartRealm() {
    realm_.stop();
    fs::remove_all(dir_);
  }

  SocketController& ctrl(int i) {
    return realm_.node("node" + std::to_string(i)).controller();
  }
  agent::AgentServer& server(int i) {
    return realm_.node("node" + std::to_string(i)).server();
  }

  /// Kill node1 and stand it up again; with recovery on, replay the journal
  /// and re-register `owner` there (the docking system's restart duty).
  util::Status crash_restart_node1(const agent::AgentId& owner) {
    realm_.remove_node("node1");
    auto& node = realm_.add_node("node1", net_.add_node("node1"),
                                 restart_config(recovery_, dir_));
    NAPLET_RETURN_IF_ERROR(node.start());
    if (recovery_) {
      NAPLET_RETURN_IF_ERROR(node.controller().recover());
    }
    realm_.locations().register_agent(owner, node.server().node_info());
    return util::OkStatus();
  }

  util::Status migrate(const agent::AgentId& id, int from, int to) {
    realm_.locations().begin_migration(id);
    NAPLET_RETURN_IF_ERROR(ctrl(from).prepare_migration(id));
    const util::Bytes sessions = ctrl(from).export_sessions(id);
    NAPLET_RETURN_IF_ERROR(ctrl(to).import_sessions(
        id, util::ByteSpan(sessions.data(), sessions.size())));
    realm_.locations().register_agent(id, server(to).node_info());
    return ctrl(to).complete_migration(id);
  }

  bool recovery_;
  std::string dir_;
  net::SimNet net_;
  Realm realm_;
};

TEST(Recovery, RestartedControllerServesResumeFromJournal) {
  RestartRealm realm(/*recovery=*/true, "resume");
  const agent::AgentId cli("cli");
  const agent::AgentId srv("srv");
  realm.realm_.locations().register_agent(cli, realm.server(0).node_info());
  realm.realm_.locations().register_agent(srv, realm.server(1).node_info());
  ASSERT_TRUE(realm.ctrl(1).listen(srv).ok());
  auto client = realm.ctrl(0).connect(cli, srv);
  ASSERT_TRUE(client.ok()) << client.status().to_string();
  auto server = realm.ctrl(1).accept(srv, 5s);
  ASSERT_TRUE(server.ok());
  const std::uint64_t conn = (*client)->conn_id();

  // Traffic both ways; the reverse frames will ride the suspension buffer
  // through the journal and across the restart.
  ASSERT_TRUE((*client)->send(span("fwd"), 1s).ok());
  EXPECT_EQ(text((*server)->recv(1s)->body), "fwd");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*server)->send(span("rev" + std::to_string(i)), 1s).ok());
  }
  std::this_thread::sleep_for(30ms);

  // Clean suspension (journaled at node1), then kill node1 BEFORE the
  // client's migration resumes — the restarted controller must serve the
  // RESUME purely from its journal.
  realm.realm_.locations().begin_migration(cli);
  ASSERT_TRUE(realm.ctrl(0).prepare_migration(cli).ok());
  const util::Bytes blob = realm.ctrl(0).export_sessions(cli);
  ASSERT_TRUE(realm.ctrl(2)
                  .import_sessions(cli,
                                   util::ByteSpan(blob.data(), blob.size()))
                  .ok());
  realm.realm_.locations().register_agent(cli, realm.server(2).node_info());

  ASSERT_TRUE(realm.crash_restart_node1(srv).ok());
  EXPECT_EQ(realm.ctrl(1).sessions_recovered(), 1u);
  EXPECT_GE(realm.ctrl(1).epoch(), 2u);  // incarnation bumped past disk

  ASSERT_TRUE(realm.ctrl(2).complete_migration(cli).ok());

  SessionPtr moved = realm.ctrl(2).session_by_id(conn);
  SessionPtr recovered = realm.ctrl(1).session_by_id(conn);
  ASSERT_TRUE(moved);
  ASSERT_TRUE(recovered);

  // Pre-crash reverse frames arrive exactly once, in order, then live
  // traffic flows both ways across the recovered pair.
  for (int i = 0; i < 3; ++i) {
    auto got = moved->recv(5s);
    ASSERT_TRUE(got.ok()) << i << ": " << got.status().to_string();
    EXPECT_EQ(text(got->body), "rev" + std::to_string(i));
  }
  ASSERT_TRUE(moved->send(span("post"), 2s).ok());
  EXPECT_EQ(text(recovered->recv(2s)->body), "post");
  ASSERT_TRUE(recovered->send(span("echo"), 2s).ok());
  EXPECT_EQ(text(moved->recv(2s)->body), "echo");
}

TEST(Recovery, DisabledRecoveryFailsCleanlyAndAborts) {
  RestartRealm realm(/*recovery=*/false, "disabled");
  const agent::AgentId cli("cli");
  const agent::AgentId srv("srv");
  realm.realm_.locations().register_agent(cli, realm.server(0).node_info());
  realm.realm_.locations().register_agent(srv, realm.server(1).node_info());
  ASSERT_TRUE(realm.ctrl(1).listen(srv).ok());
  auto client = realm.ctrl(0).connect(cli, srv);
  ASSERT_TRUE(client.ok());
  auto server = realm.ctrl(1).accept(srv, 5s);
  ASSERT_TRUE(server.ok());
  const std::uint64_t conn = (*client)->conn_id();

  realm.realm_.locations().begin_migration(cli);
  ASSERT_TRUE(realm.ctrl(0).prepare_migration(cli).ok());
  const util::Bytes blob = realm.ctrl(0).export_sessions(cli);
  ASSERT_TRUE(realm.ctrl(2)
                  .import_sessions(cli,
                                   util::ByteSpan(blob.data(), blob.size()))
                  .ok());
  realm.realm_.locations().register_agent(cli, realm.server(2).node_info());

  // Restart WITHOUT journal replay: the new incarnation knows nothing.
  ASSERT_TRUE(realm.crash_restart_node1(srv).ok());
  EXPECT_EQ(realm.ctrl(1).sessions_recovered(), 0u);

  // The paper's single-shot resume must fail with a bounded error (the
  // restarted controller answers "unknown connection" until the resume
  // deadline), never hang.
  const auto t0 = util::RealClock::instance().now_us();
  util::Status resume = realm.ctrl(2).complete_migration(cli);
  const auto elapsed_ms =
      (util::RealClock::instance().now_us() - t0) / 1000;
  EXPECT_FALSE(resume.ok());
  EXPECT_LT(elapsed_ms, 6000) << resume.to_string();

  // And the surviving half-open session is abortable: blocked waiters wake
  // with ABORTED rather than waiting out their full I/O timeouts.
  SessionPtr leftover = realm.ctrl(2).session_by_id(conn);
  ASSERT_TRUE(leftover);
  realm.ctrl(2).abort(leftover);
  EXPECT_EQ(leftover->state(), ConnState::kClosed);
  auto st = leftover->send(span("x"), 10s);
  EXPECT_EQ(st.code(), util::StatusCode::kAborted);
}

TEST(Recovery, RecoverWithoutDurabilityIsFailedPrecondition) {
  SimRealm realm(1, /*security=*/false);
  EXPECT_EQ(realm.ctrl(0).recover().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(Recovery, SuspendRollbackReestablishesWhenPeerNeverAnswers) {
  // The SUS handshake dies (peer's control plane unreachable) while the
  // data stream stays healthy: with suspend_rollback the session returns
  // to ESTABLISHED and application traffic keeps flowing.
  SimRealm realm(2, /*security=*/false, {}, [](NodeConfig& config) {
    config.controller.ctrl_response_timeout = 500ms;
    config.controller.suspend_rollback = true;
    config.server.rudp_config.retransmit_interval =
        std::chrono::milliseconds(15);
    config.server.rudp_config.max_attempts = 6;
  });
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  // Drop control datagrams only — the TCP data stream stays up.
  realm.net().set_partition("node0", "node1", true);
  util::Status st = realm.ctrl(0).prepare_migration(alice);
  realm.net().set_partition("node0", "node1", false);
  EXPECT_EQ(st.code(), util::StatusCode::kTimeout);
  EXPECT_NE(st.message().find("rolled back"), std::string::npos)
      << st.to_string();
  EXPECT_EQ(conn.client->state(), ConnState::kEstablished);

  // Writers unfroze with the rollback.
  ASSERT_TRUE(conn.client->send(span("after rollback"), 2s).ok());
  EXPECT_EQ(text(conn.server->recv(2s)->body), "after rollback");
}

TEST(Epoch, AdmissionIsMonotonicHighWater) {
  Session session(1, 1, true, agent::AgentId("a"), agent::AgentId("b"));
  EXPECT_EQ(session.peer_epoch(), 0u);
  EXPECT_TRUE(session.admit_peer_epoch(0));  // unfenced sender, always in
  EXPECT_TRUE(session.admit_peer_epoch(3));
  EXPECT_EQ(session.peer_epoch(), 3u);
  EXPECT_TRUE(session.admit_peer_epoch(3));   // same incarnation
  EXPECT_FALSE(session.admit_peer_epoch(2));  // pre-crash leftover: fenced
  EXPECT_TRUE(session.admit_peer_epoch(0));   // unfenced still admitted
  EXPECT_TRUE(session.admit_peer_epoch(7));
  EXPECT_EQ(session.peer_epoch(), 7u);
}

TEST(Leases, ExpiredMappingEvictedWhileRefreshedOneSurvives) {
  SimRealm realm(2, /*security=*/false, {}, [](NodeConfig& config) {
    config.controller.redirector_leases.enabled = true;
    config.controller.redirector_leases.ttl = 400ms;
  });
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  Redirector* redirector = realm.ctrl(1).redirector();
  ASSERT_NE(redirector, nullptr);
  EXPECT_TRUE(redirector->lease_live(conn.server->conn_id()));

  // A mapping whose owner died and never refreshes (the pre-crash
  // leftover a lease exists to kill).
  redirector->register_lease(/*conn_id=*/9999);
  EXPECT_TRUE(redirector->lease_live(9999));

  // Past the TTL: the dead mapping is swept; the live session's lease
  // keeps being refreshed by the repair loop.
  std::this_thread::sleep_for(1200ms);
  EXPECT_FALSE(redirector->lease_live(9999));
  EXPECT_GE(redirector->leases_expired(), 1u);
  EXPECT_TRUE(redirector->lease_live(conn.server->conn_id()));
}

TEST(Abort, BlockedSendRecvAndResumeWaitersWakeAborted) {
  SimRealm realm(2, /*security=*/false);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);
  ASSERT_TRUE(conn.client && conn.server);

  // A reader blocked with a long deadline...
  util::Status recv_status = util::OkStatus();
  std::thread reader([&] {
    auto got = conn.client->recv(30s);
    recv_status = got.status();
  });
  // ...and a writer blocked behind a mid-suspension session (writes gate
  // on can_transfer, so SUS_SENT parks the sender).
  ASSERT_TRUE(conn.client->advance(ConnEvent::kAppSuspend).ok());
  (void)conn.client->freeze_writes_and_mark();
  util::Status send_status = util::OkStatus();
  std::thread writer([&] {
    send_status = conn.client->send(span("stuck"), 30s);
  });
  std::this_thread::sleep_for(100ms);

  const auto t0 = util::RealClock::instance().now_us();
  realm.ctrl(0).abort(realm.ctrl(0).session_by_id(conn.client->conn_id()));
  reader.join();
  writer.join();
  const auto woke_ms = (util::RealClock::instance().now_us() - t0) / 1000;

  EXPECT_EQ(recv_status.code(), util::StatusCode::kAborted)
      << recv_status.to_string();
  EXPECT_EQ(send_status.code(), util::StatusCode::kAborted)
      << send_status.to_string();
  EXPECT_LT(woke_ms, 2000);  // woke on the abort, not the 30s deadlines
  EXPECT_EQ(conn.client->state(), ConnState::kClosed);
}

TEST(ProbeTimeout, HeartbeatRoundIsBoundedByProbeTimeout) {
  // With the dedicated probe deadline, a fully dead peer is declared dead
  // in a handful of probe intervals — not after inheriting the 5s control
  // timeout per probe.
  SimRealm realm(2, /*security=*/false, {}, [](NodeConfig& config) {
    config.controller.failure_recovery.enabled = true;
    config.controller.failure_recovery.probe_interval = 100ms;
    config.controller.failure_recovery.probe_timeout = 150ms;
    config.controller.failure_recovery.miss_threshold = 2;
    config.server.rudp_config.retransmit_interval =
        std::chrono::milliseconds(20);
    config.server.rudp_config.max_attempts = 50;  // >> probe_timeout budget
  });
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  ConnPair conn = make_connection(realm, alice, 0, bob, 1);

  realm.net().set_partition("node0", "node1", true);
  realm.net().sever_streams("node0", "node1");
  ASSERT_TRUE(conn.client->wait_state(
      [](ConnState s) { return s == ConnState::kClosed; }, 5s));
  EXPECT_GE(realm.ctrl(0).peers_declared_dead(), 1u);
}

TEST(Rudp, SendMaxWaitBoundsBlockingTime) {
  net::SimNet net(/*seed=*/3);
  auto a = net.add_node("a");
  net.add_node("void");  // exists but nothing listens

  net::RudpConfig config;
  config.retransmit_interval = std::chrono::milliseconds(25);
  config.max_attempts = 200;  // unbounded retry budget: seconds of blocking
  auto dgram = a->bind_datagram(7);
  ASSERT_TRUE(dgram.ok());
  net::ReliableChannel channel(std::move(*dgram), config);

  const auto t0 = util::RealClock::instance().now_us();
  auto st = channel.send(net::Endpoint{"void", 9}, span("hello"),
                         /*max_wait=*/300ms);
  const auto elapsed_ms = (util::RealClock::instance().now_us() - t0) / 1000;
  EXPECT_EQ(st.code(), util::StatusCode::kTimeout);
  EXPECT_LT(elapsed_ms, 1500) << "max_wait did not bound the send";
  EXPECT_GE(elapsed_ms, 250);  // but it did wait close to the deadline
}

// Pinned-seed crash-restart chaos: the full kill/restart choreography with
// every oracle armed, reproducible from the seed alone. One scenario per
// test so a failure names its scenario.
TEST(CrashChaos, SuspendCrashRecoversExactlyOnce) {
  const auto result = fault::run_case(fault::make_crash_case(
      5, fault::Scenario::kCrashSuspend, /*light=*/true, /*recovery=*/true));
  EXPECT_TRUE(result.pass) << result.failure;
}

TEST(CrashChaos, ResumeCrashRecoversExactlyOnce) {
  const auto result = fault::run_case(fault::make_crash_case(
      5, fault::Scenario::kCrashResume, /*light=*/true, /*recovery=*/true));
  EXPECT_TRUE(result.pass) << result.failure;
}

TEST(CrashChaos, DoubleMigrationAcrossCrashRecoversExactlyOnce) {
  const auto result = fault::run_case(fault::make_crash_case(
      5, fault::Scenario::kCrashDouble, /*light=*/true, /*recovery=*/true));
  EXPECT_TRUE(result.pass) << result.failure;
}

TEST(CrashChaos, WithoutRecoveryTheSameCrashesFailCleanly) {
  for (const auto scenario :
       {fault::Scenario::kCrashSuspend, fault::Scenario::kCrashResume,
        fault::Scenario::kCrashDouble}) {
    const auto result = fault::run_case(fault::make_crash_case(
        5, scenario, /*light=*/true, /*recovery=*/false));
    EXPECT_TRUE(result.pass)
        << fault::to_string(scenario) << ": " << result.failure;
  }
}

}  // namespace
}  // namespace naplet::nsock
