// Durability-layer unit tests: CRC, journal append/replay, torn-tail and
// bit-flip tolerance, snapshot atomicity, and the DurableStore's
// epoch-bumping recovery with degrade-to-last-valid-prefix semantics.
#include "recovery/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "recovery/snapshot.hpp"

namespace naplet::recovery {
namespace {

namespace fs = std::filesystem;

util::Bytes bytes(const std::string& s) {
  return util::Bytes(s.begin(), s.end());
}

std::string text(const util::Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Fresh scratch directory per test, removed on teardown.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            ("naplet-journal-test-" + std::string(info->name()) + "-" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  static util::Bytes read_file(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return util::Bytes((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void write_file(const std::string& p, const util::Bytes& data) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }

  std::string dir_;
};

TEST_F(JournalTest, Crc32KnownVector) {
  const std::string check = "123456789";
  EXPECT_EQ(crc32(util::ByteSpan(
                reinterpret_cast<const std::uint8_t*>(check.data()),
                check.size())),
            0xCBF43926u);
  EXPECT_EQ(crc32(util::ByteSpan{}), 0u);
}

TEST_F(JournalTest, AppendReplayRoundTrip) {
  const std::string p = path("journal.nplj");
  auto journal = Journal::open(p, /*epoch=*/7);
  ASSERT_TRUE(journal.ok()) << journal.status().to_string();
  ASSERT_TRUE(
      (*journal)
          ->append({CommitPoint::kConnectEstablished, 11, bytes("alpha")})
          .ok());
  ASSERT_TRUE(
      (*journal)->append({CommitPoint::kDrainComplete, 11, bytes("beta")})
          .ok());
  ASSERT_TRUE((*journal)->append({CommitPoint::kClosed, 12, {}}).ok());
  EXPECT_EQ((*journal)->appended(), 3u);

  auto replay = Journal::replay(p);
  ASSERT_TRUE(replay.ok()) << replay.status().to_string();
  EXPECT_EQ(replay->epoch, 7u);
  EXPECT_FALSE(replay->truncated);
  ASSERT_EQ(replay->records.size(), 3u);
  EXPECT_EQ(replay->records[0].point, CommitPoint::kConnectEstablished);
  EXPECT_EQ(replay->records[0].conn_id, 11u);
  EXPECT_EQ(text(replay->records[0].payload), "alpha");
  EXPECT_EQ(replay->records[1].point, CommitPoint::kDrainComplete);
  EXPECT_EQ(text(replay->records[1].payload), "beta");
  EXPECT_EQ(replay->records[2].point, CommitPoint::kClosed);
  EXPECT_TRUE(replay->records[2].payload.empty());
}

TEST_F(JournalTest, ReplayMissingFileIsNotFound) {
  auto replay = Journal::replay(path("nope.nplj"));
  EXPECT_EQ(replay.status().code(), util::StatusCode::kNotFound);
}

TEST_F(JournalTest, TornTailKeepsValidPrefix) {
  const std::string p = path("journal.nplj");
  {
    auto journal = Journal::open(p, 1);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)
                      ->append({CommitPoint::kSuspendCommitted,
                                static_cast<std::uint64_t>(i),
                                bytes("blob" + std::to_string(i))})
                      .ok());
    }
  }
  // A crash mid-append: the last record loses its tail bytes.
  util::Bytes data = read_file(p);
  data.resize(data.size() - 3);
  write_file(p, data);

  auto replay = Journal::replay(p);
  ASSERT_TRUE(replay.ok()) << replay.status().to_string();
  EXPECT_TRUE(replay->truncated);
  EXPECT_NE(replay->note.find("torn"), std::string::npos) << replay->note;
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(text(replay->records[1].payload), "blob1");
}

TEST_F(JournalTest, BitFlippedRecordStopsReplayAtCrc) {
  const std::string p = path("journal.nplj");
  {
    auto journal = Journal::open(p, 1);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*journal)
                      ->append({CommitPoint::kImported,
                                static_cast<std::uint64_t>(i),
                                bytes("payload" + std::to_string(i))})
                      .ok());
    }
  }
  // Flip one payload bit inside the LAST record (well past the two intact
  // ones): everything before it must survive.
  util::Bytes data = read_file(p);
  data[data.size() - 6] ^= 0x40;
  write_file(p, data);

  auto replay = Journal::replay(p);
  ASSERT_TRUE(replay.ok()) << replay.status().to_string();
  EXPECT_TRUE(replay->truncated);
  EXPECT_NE(replay->note.find("CRC"), std::string::npos) << replay->note;
  ASSERT_EQ(replay->records.size(), 2u);
}

TEST_F(JournalTest, CorruptHeaderIsProtocolError) {
  const std::string p = path("journal.nplj");
  {
    auto journal = Journal::open(p, 1);
    ASSERT_TRUE(journal.ok());
  }
  util::Bytes data = read_file(p);
  data[1] ^= 0xFF;  // inside the magic
  write_file(p, data);
  EXPECT_EQ(Journal::replay(p).status().code(),
            util::StatusCode::kProtocolError);
}

TEST_F(JournalTest, SnapshotRoundTripAndAtomicReplace) {
  const std::string p = path("snapshot.npls");
  SnapshotData first;
  first.epoch = 3;
  first.sessions[1] = bytes("one");
  first.sessions[2] = bytes("two");
  ASSERT_TRUE(Snapshot::write(p, first).ok());

  SnapshotData second;
  second.epoch = 4;
  second.sessions[2] = bytes("two'");
  ASSERT_TRUE(Snapshot::write(p, second).ok());  // atomic replace

  auto got = Snapshot::read(p);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(got->epoch, 4u);
  ASSERT_EQ(got->sessions.size(), 1u);
  EXPECT_EQ(text(got->sessions[2]), "two'");
}

TEST_F(JournalTest, SnapshotCorruptionIsProtocolError) {
  const std::string p = path("snapshot.npls");
  SnapshotData data;
  data.epoch = 1;
  data.sessions[9] = bytes("nine");
  ASSERT_TRUE(Snapshot::write(p, data).ok());
  util::Bytes raw = read_file(p);
  raw[raw.size() / 2] ^= 0x01;
  write_file(p, raw);
  EXPECT_EQ(Snapshot::read(p).status().code(),
            util::StatusCode::kProtocolError);
  EXPECT_EQ(Snapshot::read(path("absent.npls")).status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(JournalTest, StoreEpochBumpsAcrossReopen) {
  {
    DurableStore store({dir_, 64});
    ASSERT_TRUE(store.open().ok());
    EXPECT_EQ(store.epoch(), 1u);  // nothing on disk: max(0) + 1
    ASSERT_TRUE(store
                    .record(CommitPoint::kConnectEstablished, 5,
                            util::ByteSpan(bytes("s5").data(), 2))
                    .ok());
    ASSERT_TRUE(store
                    .record(CommitPoint::kConnectEstablished, 6,
                            util::ByteSpan(bytes("s6").data(), 2))
                    .ok());
  }
  {
    DurableStore store({dir_, 64});
    ASSERT_TRUE(store.open().ok());
    EXPECT_EQ(store.epoch(), 2u);
    EXPECT_FALSE(store.degraded());
    auto live = store.recovered();
    ASSERT_EQ(live.size(), 2u);
    EXPECT_EQ(text(live[5]), "s5");
    // A removal commit point erases the connection from the durable set.
    ASSERT_TRUE(store.record(CommitPoint::kClosed, 5, {}).ok());
  }
  {
    DurableStore store({dir_, 64});
    ASSERT_TRUE(store.open().ok());
    EXPECT_EQ(store.epoch(), 3u);
    auto live = store.recovered();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live.count(6), 1u);
  }
}

TEST_F(JournalTest, StoreCompactsEveryN) {
  DurableStore store({dir_, /*compact_every=*/4});
  ASSERT_TRUE(store.open().ok());
  const auto initial = store.compactions();  // open() itself compacts once
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(store
                    .record(CommitPoint::kResumeCommitted, 1,
                            util::ByteSpan(bytes("v" + std::to_string(i))
                                               .data(),
                                           2))
                    .ok());
  }
  EXPECT_EQ(store.compactions(), initial + 2);
  EXPECT_EQ(store.records_written(), 9u);

  DurableStore reopened({dir_, 4});
  ASSERT_TRUE(reopened.open().ok());
  auto live = reopened.recovered();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(text(live[1]), "v8");  // last write wins through compactions
}

// The ISSUE's corruption-tolerance case: a bit-flipped journal CRC (or a
// torn tail) must degrade recovery to the last valid prefix — snapshot
// plus intact journal head — never fail it outright.
TEST_F(JournalTest, StoreDegradesToLastValidPrefixOnJournalCorruption) {
  {
    DurableStore store({dir_, 64});
    ASSERT_TRUE(store.open().ok());
    for (std::uint64_t id = 1; id <= 3; ++id) {
      ASSERT_TRUE(store
                      .record(CommitPoint::kSuspendCommitted, id,
                              util::ByteSpan(
                                  bytes("conn" + std::to_string(id)).data(),
                                  5))
                      .ok());
    }
  }
  const std::string jp = dir_ + "/journal.nplj";
  util::Bytes raw = read_file(jp);
  raw[raw.size() - 2] ^= 0x10;  // corrupt the last record's CRC bytes
  write_file(jp, raw);

  DurableStore store({dir_, 64});
  ASSERT_TRUE(store.open().ok());
  EXPECT_TRUE(store.degraded());
  EXPECT_NE(store.degraded_note().find("CRC"), std::string::npos)
      << store.degraded_note();
  auto live = store.recovered();
  ASSERT_EQ(live.size(), 2u);  // conn3's record was the corrupt one
  EXPECT_EQ(live.count(1), 1u);
  EXPECT_EQ(live.count(2), 1u);
  EXPECT_EQ(store.epoch(), 2u);  // still bumps past the damaged incarnation
}

TEST_F(JournalTest, StoreDegradesToJournalWhenSnapshotCorrupt) {
  {
    DurableStore store({dir_, 64});
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(store
                    .record(CommitPoint::kConnectEstablished, 8,
                            util::ByteSpan(bytes("s8").data(), 2))
                    .ok());
    ASSERT_TRUE(store.compact().ok());  // fold into the snapshot
    // Journal now holds the post-compaction delta only.
    ASSERT_TRUE(store
                    .record(CommitPoint::kConnectEstablished, 9,
                            util::ByteSpan(bytes("s9").data(), 2))
                    .ok());
  }
  const std::string sp = dir_ + "/snapshot.npls";
  util::Bytes raw = read_file(sp);
  raw[raw.size() / 2] ^= 0x04;
  write_file(sp, raw);

  DurableStore store({dir_, 64});
  ASSERT_TRUE(store.open().ok());
  EXPECT_TRUE(store.degraded());
  EXPECT_NE(store.degraded_note().find("snapshot"), std::string::npos);
  // The snapshot's contents (conn 8) are lost; the journal delta survives.
  auto live = store.recovered();
  EXPECT_EQ(live.count(9), 1u);
  EXPECT_EQ(live.count(8), 0u);
}

// ---------------------------------------------------------------------------
// Two-phase group suspend records (ISSUE 9): prepare parks a manifest,
// commit folds it atomically, abort discards it, and a DANGLING prepare
// rolls the whole group FORWARD on replay — the prepare is only written
// after the barrier, when every peer has sealed, so it is the decision
// record.

GroupManifest two_member_manifest() {
  GroupManifest manifest;
  manifest.members.push_back({21, bytes("m21")});
  manifest.members.push_back({22, bytes("m22")});
  return manifest;
}

util::Status record_prepare(DurableStore& store, std::uint64_t group_id,
                            const GroupManifest& manifest) {
  const util::Bytes blob = manifest.encode();
  return store.record(CommitPoint::kGroupPrepare, group_id,
                      util::ByteSpan(blob.data(), blob.size()));
}

TEST_F(JournalTest, GroupManifestRoundTrip) {
  const util::Bytes blob = two_member_manifest().encode();
  auto decoded = GroupManifest::decode(util::ByteSpan(blob.data(),
                                                      blob.size()));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded->members.size(), 2u);
  EXPECT_EQ(decoded->members[0].conn_id, 21u);
  EXPECT_EQ(text(decoded->members[0].blob), "m21");
  EXPECT_EQ(decoded->members[1].conn_id, 22u);
  EXPECT_EQ(text(decoded->members[1].blob), "m22");
}

TEST_F(JournalTest, GroupPrepareCommitFoldsAllMembers) {
  {
    DurableStore store({dir_, 64});
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(record_prepare(store, 501, two_member_manifest()).ok());
    EXPECT_EQ(store.pending_group(), 501u);
    // Parked, not live: the members must not leak out before the commit.
    EXPECT_EQ(store.recovered().count(21), 0u);
    ASSERT_TRUE(store.record(CommitPoint::kGroupCommit, 501, {}).ok());
    EXPECT_EQ(store.pending_group(), 0u);
  }
  DurableStore reopened({dir_, 64});
  ASSERT_TRUE(reopened.open().ok());
  auto live = reopened.recovered();
  EXPECT_EQ(text(live[21]), "m21");
  EXPECT_EQ(text(live[22]), "m22");
}

TEST_F(JournalTest, DanglingGroupPrepareRollsForward) {
  {
    DurableStore store({dir_, 64});
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(record_prepare(store, 502, two_member_manifest()).ok());
    // Crash here: no commit, no abort.
  }
  DurableStore reopened({dir_, 64});
  ASSERT_TRUE(reopened.open().ok());
  auto live = reopened.recovered();
  EXPECT_EQ(text(live[21]), "m21");
  EXPECT_EQ(text(live[22]), "m22");
  EXPECT_EQ(reopened.pending_group(), 0u);
}

TEST_F(JournalTest, GroupAbortDiscardsManifestAcrossReopen) {
  {
    DurableStore store({dir_, 64});
    ASSERT_TRUE(store.open().ok());
    ASSERT_TRUE(record_prepare(store, 503, two_member_manifest()).ok());
    store.abort_group(503);
    EXPECT_EQ(store.pending_group(), 0u);
  }
  DurableStore reopened({dir_, 64});
  ASSERT_TRUE(reopened.open().ok());
  // The abort record outweighs the prepare: nothing rolls forward.
  EXPECT_TRUE(reopened.recovered().empty());
}

TEST_F(JournalTest, AbortGroupIgnoresUnrelatedGroup) {
  DurableStore store({dir_, 64});
  ASSERT_TRUE(store.open().ok());
  ASSERT_TRUE(record_prepare(store, 504, two_member_manifest()).ok());
  store.abort_group(999);  // not the pending group
  EXPECT_EQ(store.pending_group(), 504u);
}

TEST_F(JournalTest, CompactionDeferredWhileGroupPending) {
  DurableStore store({dir_, /*compact_every=*/2});
  ASSERT_TRUE(store.open().ok());
  const std::uint64_t baseline = store.compactions();  // open() compacts once
  ASSERT_TRUE(record_prepare(store, 505, two_member_manifest()).ok());
  // Enough appends to trip compact_every twice over; the pending group
  // must hold compaction back so the snapshot can never split the pair.
  for (std::uint64_t conn = 30; conn < 34; ++conn) {
    ASSERT_TRUE(store
                    .record(CommitPoint::kConnectEstablished, conn,
                            util::ByteSpan(bytes("x").data(), 1))
                    .ok());
  }
  EXPECT_EQ(store.compactions(), baseline);
  ASSERT_TRUE(store.record(CommitPoint::kGroupCommit, 505, {}).ok());
  ASSERT_TRUE(store
                  .record(CommitPoint::kConnectEstablished, 40,
                          util::ByteSpan(bytes("y").data(), 1))
                  .ok());
  EXPECT_GT(store.compactions(), baseline);
  // The compacted snapshot carries the folded group members.
  DurableStore reopened({dir_, 2});
  ASSERT_TRUE(reopened.open().ok());
  EXPECT_EQ(text(reopened.recovered()[21]), "m21");
}

}  // namespace
}  // namespace naplet::recovery
