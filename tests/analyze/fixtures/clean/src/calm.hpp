// Clean fixture for the naplet-analyze gate tests: exercises every idiom
// the analyzer understands (ranked mutexes, guarded members, fault sites,
// cached instruments, counted enums) with zero defects. The gate test
// asserts the analyzer reports nothing here.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace calm {

enum class LockRank : std::uint32_t {
  kUnranked = 0,
  kPool = 10,
};

class Pool {
 public:
  Pool();
  void fill();
  [[nodiscard]] int level() const;

 private:
  mutable util::Mutex mu_{LockRank::kPool, "calm.pool"};
  int level_ NAPLET_GUARDED_BY(mu_) = 0;
  int capacity_ NAPLET_NOT_GUARDED("set at construction, immutable") = 64;
  obs::Counter& fills_;
  // Suppressed on purpose: the gate test asserts this surfaces in the
  // JSON `suppressed` count without failing the run.
  util::Mutex scratch_mu_;  // analyze-ignore(mutex-unranked)
};

inline constexpr std::string_view kFaultSites[] = {
    "calm.pool.fill",
};

enum class CalmEvent : std::uint8_t { kRise, kFall };
inline constexpr int kCalmEventCount = 2;

const char* transition(CalmEvent ev);

}  // namespace calm
