// Clean fixture bodies. Scanned by the analyzer, never compiled.
#include "calm.hpp"

#include "fault/chaos.hpp"

namespace calm {

Pool::Pool() : fills_(obs::Registry::global().counter("calm.pool.fills")) {}

void Pool::fill() {
  const fault::Decision d = fault::hit("calm.pool.fill");
  if (d.drop()) return;
  util::MutexLock lock(mu_);
  ++level_;
  fills_.add(1);
}

int Pool::level() const {
  util::MutexLock lock(mu_);
  return level_;
}

const char* transition(CalmEvent ev) {
  switch (ev) {
    case CalmEvent::kRise: return "rise";
    case CalmEvent::kFall: return "fall";
  }
  return "?";
}

}  // namespace calm
