// Planted-defect fixture bench reader. Scanned by the analyzer, never
// compiled.
#include "obs/metrics.hpp"

namespace fx {

// PLANTED(metric-unregistered): nothing in src/ registers this name.
double read_mystery() {
  auto& c = obs::Registry::global().counter("fx.mystery.total");
  return static_cast<double>(c.value());
}

}  // namespace fx
