// Planted-defect fixture bodies. Scanned by the analyzer, never compiled.
#include "fx.hpp"

#include "fault/chaos.hpp"

namespace fx {

void Widget::poke() {
  util::MutexLock lock(mu_);
  const fault::Decision d = fault::hit("fx.widget.poke");
  if (d.drop()) return;
  ++counter_;
}

int Widget::peek() const {
  util::MutexLock lock(mu_);
  return counter_;
}

// PLANTED(fault-site-unknown): woven but absent from kFaultSites.
void probe() { (void)fault::hit("fx.rogue.site"); }

// PLANTED(lock-order-inversion): rebalance holds the leaf-ranked mutex
// (rank 20) and, two calls deep — a chain no test executes — acquires the
// outer mutex (rank 10). No single function shows both locks.
void rebalance() {
  util::MutexLock lock(g_leaf_mu);
  audit_pools();
}

void audit_pools() { touch_outer(); }

void touch_outer() { util::MutexLock lock(g_outer_mu); }

// PLANTED(fsm-incomplete): FxEvent is a counted enum and kPause is never
// handled.
const char* transition(FxEvent ev) {
  switch (ev) {
    case FxEvent::kGo: return "go";
    case FxEvent::kStop: return "stop";
    default: return "?";
  }
}

}  // namespace fx
