// Planted-defect fixture for the naplet-analyze gate tests. Every defect
// below is deliberate; the gate test asserts the exact finding set. This
// file is scanned by the analyzer, never compiled.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace fx {

// Fixture-local rank order (the analyzer reads whatever LockRank enum the
// scanned tree defines).
enum class LockRank : std::uint32_t {
  kUnranked = 0,
  kFxOuter = 10,
  kFxLeaf = 20,
};

// PLANTED(rank-table-mismatch / rank-table-stale / rank-table-missing):
// DESIGN.md documents kFxLeaf = 24 and a retired kFxGone, and omits
// kUnranked.

inline util::Mutex g_leaf_mu{LockRank::kFxLeaf, "fx.leaf"};
inline util::Mutex g_outer_mu{LockRank::kFxOuter, "fx.outer"};

class Widget {
 public:
  void poke();
  [[nodiscard]] int peek() const;

 private:
  mutable util::Mutex mu_{LockRank::kFxOuter, "fx.widget"};
  // PLANTED(mutex-unranked): bare mutex, no rank anywhere.
  util::Mutex scratch_mu_;
  int counter_ NAPLET_GUARDED_BY(mu_) = 0;
  // PLANTED(unguarded-member): mutable state in a mutex-owning class with
  // no annotation.
  int hits_ = 0;
  // PLANTED(guarded-by-unknown): ghost_mu_ is not a member of Widget.
  int tagged_ NAPLET_GUARDED_BY(ghost_mu_) = 0;
};

// PLANTED(fault-site-duplicate, fault-site-stale): fx.widget.poke listed
// twice; fx.retired.site is never woven.
inline constexpr std::string_view kFaultSites[] = {
    "fx.widget.poke",
    "fx.widget.poke",
    "fx.retired.site",
};

enum class FxEvent : std::uint8_t { kGo, kStop, kPause };
inline constexpr int kFxEventCount = 3;

// PLANTED(enum-count-mismatch): three enumerators, count says two.
enum class FxPhase : std::uint8_t { kOne, kTwo, kThree };
inline constexpr int kFxPhaseCount = 2;

const char* transition(FxEvent ev);

void rebalance();
void audit_pools();
void touch_outer();

}  // namespace fx
