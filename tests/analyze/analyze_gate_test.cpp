// End-to-end tests for the naplet-analyze static-analysis gate.
//
// The analyzer binaries are driven exactly the way ci/check.sh drives
// them — as subprocesses over fixture trees — so these tests pin down the
// full contract: finding set, compact format, exit codes, baseline
// filtering, and suppression comments.
//
//  * fixtures/planted/  carries thirteen deliberate defects, including a
//    lock-rank inversion reachable only through a two-hop call chain that
//    no test executes — the case runtime rank checking can never see.
//  * fixtures/clean/    exercises every idiom with zero defects (plus one
//    deliberately suppressed finding).
//  * the real tree must stay at zero findings with an empty baseline.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

#ifndef NAPLET_ANALYZE_BIN
#error "NAPLET_ANALYZE_BIN must be defined by the build"
#endif
#ifndef NAPLET_REGISTRY_CHECK_BIN
#error "NAPLET_REGISTRY_CHECK_BIN must be defined by the build"
#endif
#ifndef NAPLET_ANALYZE_TEST_DIR
#error "NAPLET_ANALYZE_TEST_DIR must be defined by the build"
#endif
#ifndef NAPLET_REPO_ROOT
#error "NAPLET_REPO_ROOT must be defined by the build"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run(const std::string& cmd) {
  RunResult result;
  std::FILE* pipe = ::popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixture(const std::string& name) {
  return std::string(NAPLET_ANALYZE_TEST_DIR) + "/fixtures/" + name;
}

std::string golden(const std::string& name) {
  return std::string(NAPLET_ANALYZE_TEST_DIR) + "/golden/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(AnalyzeGate, PlantedFixtureMatchesGoldenFindings) {
  const RunResult r = run(std::string(NAPLET_ANALYZE_BIN) + " --root " +
                          fixture("planted") + " --compact");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(lines_of(r.output), lines_of(slurp(golden("planted.compact"))));
}

TEST(AnalyzeGate, PlantedFixtureCoversEveryDefectClass) {
  // The gate's reason to exist: each planted defect class is detected.
  const RunResult r = run(std::string(NAPLET_ANALYZE_BIN) + " --root " +
                          fixture("planted") + " --compact");
  EXPECT_EQ(r.exit_code, 1);
  for (const char* kind :
       {"lock-rank-inversion", "mutex-unranked", "unguarded-member",
        "guarded-by-unknown", "fault-site-duplicate", "fault-site-stale",
        "fault-site-unknown", "metric-unregistered", "enum-count-mismatch",
        "fsm-incomplete", "rank-table-mismatch", "rank-table-missing",
        "rank-table-stale"}) {
    EXPECT_NE(r.output.find(kind), std::string::npos)
        << "missing finding kind: " << kind << "\n"
        << r.output;
  }
}

TEST(AnalyzeGate, InversionReportsTheUntestedCallChain) {
  // The planted inversion spans three functions; no single frame holds
  // both locks. The finding must spell out the inter-procedural chain.
  const RunResult r = run(std::string(NAPLET_ANALYZE_BIN) + " --root " +
                          fixture("planted") + " --compact");
  EXPECT_NE(r.output.find("rebalance -> audit_pools -> touch_outer"),
            std::string::npos)
      << r.output;
}

TEST(AnalyzeGate, CleanFixtureHasNoFindings) {
  const RunResult r = run(std::string(NAPLET_ANALYZE_BIN) + " --root " +
                          fixture("clean") + " --compact");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(AnalyzeGate, SuppressionCommentFiltersButIsCounted) {
  // fixtures/clean plants one mutex-unranked defect behind an
  // `analyze-ignore(mutex-unranked)` comment: the run passes, and the
  // JSON accounting still shows the suppression.
  const std::string json_path =
      ::testing::TempDir() + "/clean_suppressed.json";
  const RunResult r = run(std::string(NAPLET_ANALYZE_BIN) + " --root " +
                          fixture("clean") + " --quiet --json " + json_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::string json = slurp(json_path);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos) << json;
}

TEST(AnalyzeGate, BaselineSilencesKnownFindings) {
  const RunResult r = run(std::string(NAPLET_ANALYZE_BIN) + " --root " +
                          fixture("planted") + " --baseline " +
                          golden("planted.baseline") + " --compact");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(AnalyzeGate, RegistryCheckFlagsOnlyRegistryFindings) {
  // The dependency-free binary runs pass 3 alone: registry defects fire,
  // lock/annotation defects don't.
  const RunResult r = run(std::string(NAPLET_REGISTRY_CHECK_BIN) +
                          " --root " + fixture("planted") + " --compact");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("fault-site-duplicate"), std::string::npos);
  EXPECT_NE(r.output.find("enum-count-mismatch"), std::string::npos);
  EXPECT_EQ(r.output.find("lock-rank-inversion"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("unguarded-member"), std::string::npos) << r.output;
}

TEST(AnalyzeGate, RealTreeIsCleanWithEmptyBaseline) {
  // The actual gate CI runs: the repository itself must stay at zero
  // findings without leaning on the baseline file.
  const RunResult r = run(std::string(NAPLET_ANALYZE_BIN) + " --root " +
                          std::string(NAPLET_REPO_ROOT) + " --compact");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(AnalyzeGate, MissingRootIsAUsageError) {
  const RunResult r = run(std::string(NAPLET_ANALYZE_BIN) +
                          " --root /nonexistent/fixture/tree --compact");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

}  // namespace
