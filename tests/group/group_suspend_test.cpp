// Controller-level group-suspend tests (ISSUE 9): the atomic whole-agent
// sweep behind ControllerConfig::group_suspend — happy-path migration of a
// multi-connection agent, abort_session racing an in-flight prepare
// (bounded barrier wake, full-group rollback), the single-connection
// suspend-rollback arc under concurrent send pressure, and the
// DrainCoordinator driving whole-agent group sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/test_realm.hpp"
#include "fault/fault.hpp"
#include "fault/oracle.hpp"
#include "swarm/drain.hpp"

namespace naplet::nsock {
namespace {

using namespace std::chrono_literals;
using testing::ConnPair;
using testing::SimRealm;
using testing::make_connection;
using testing::span;
using testing::text;

/// The group sweep plus recovery-grade patience (rollback resumes
/// acknowledged members through the redirector).
void group_config(NodeConfig& config) {
  config.controller.group_suspend = true;
  config.controller.group_prepare_timeout = 5s;
  config.controller.suspend_rollback = true;
  config.controller.ctrl_response_timeout = 1s;
  config.controller.drain_timeout = 1s;
  config.controller.resume_max_attempts = 10;
  config.controller.resume_retry_backoff = 50ms;
  config.controller.resume_retry_cap = 400ms;
  config.controller.resume_timeout = 8s;
  config.controller.redirector_leases.enabled = true;
  config.controller.redirector_leases.ttl = 3s;
}

class GroupSuspendTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::instance().disarm(); }
};

/// make_connection calls listen() each time; for multi-connection agents
/// the server agent listens once and the pairs attach to it.
ConnPair connect_pair(SimRealm& realm, const agent::AgentId& client,
                      int client_node, const agent::AgentId& server,
                      int server_node) {
  auto client_session = realm.ctrl(client_node).connect(client, server);
  EXPECT_TRUE(client_session.ok()) << client_session.status().to_string();
  auto server_session = realm.ctrl(server_node).accept(server, 5s);
  EXPECT_TRUE(server_session.ok()) << server_session.status().to_string();
  return ConnPair{client_session.ok() ? *client_session : nullptr,
                  server_session.ok() ? *server_session : nullptr};
}

TEST_F(GroupSuspendTest, AtomicSweepMigratesWholeAgent) {
  SimRealm realm(3, /*security=*/false, /*link_latency=*/{}, group_config);
  const agent::AgentId cli = realm.pseudo_agent("grp-cli", 0);
  const agent::AgentId srv = realm.pseudo_agent("grp-srv", 1);

  constexpr int kConns = 3;
  ASSERT_TRUE(realm.ctrl(1).listen(srv).ok());
  std::vector<ConnPair> conns;
  for (int i = 0; i < kConns; ++i) {
    conns.push_back(connect_pair(realm, cli, 0, srv, 1));
    ASSERT_NE(conns.back().client, nullptr);
    ASSERT_NE(conns.back().server, nullptr);
  }
  for (int i = 0; i < kConns; ++i) {
    const std::string body = "pre" + std::to_string(i);
    ASSERT_TRUE(conns[i].client->send(span(body), 2s).ok());
    auto got = conns[i].server->recv(2s);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(text(got->body), body);
  }

  ASSERT_TRUE(realm.migrate_pseudo_agent(cli, 0, 2).ok());
  EXPECT_EQ(realm.ctrl(0).group_rollbacks(), 0u);

  // Every member re-established on the destination; data still flows.
  for (int i = 0; i < kConns; ++i) {
    SessionPtr moved = realm.ctrl(2).session_by_id(conns[i].client->conn_id());
    ASSERT_NE(moved, nullptr);
    ASSERT_TRUE(fault::await_established(*moved, 8s).ok());
    const std::string body = "post" + std::to_string(i);
    ASSERT_TRUE(moved->send(span(body), 2s).ok());
    auto got = conns[i].server->recv(2s);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    EXPECT_EQ(text(got->body), body);
  }
  EXPECT_EQ(realm.ctrl(0).group_coordinator().active(), 0u);
}

TEST_F(GroupSuspendTest, AbortRacingPrepareWakesBarrierBounded) {
  SimRealm realm(3, /*security=*/false, /*link_latency=*/{}, group_config);
  const agent::AgentId cli = realm.pseudo_agent("abr-cli", 0);
  const agent::AgentId srv = realm.pseudo_agent("abr-srv", 1);
  ASSERT_TRUE(realm.ctrl(1).listen(srv).ok());
  ConnPair a = connect_pair(realm, cli, 0, srv, 1);
  ConnPair b = connect_pair(realm, cli, 0, srv, 1);
  ASSERT_NE(a.client, nullptr);
  ASSERT_NE(b.client, nullptr);

  // Drop every SUS: the prepare workers park waiting for acks that will
  // never come, so only the abort can release the barrier.
  auto plan = fault::Plan::parse("ctrl.suspend.pre_send@#1x1000:drop");
  ASSERT_TRUE(plan.ok());
  fault::Injector::instance().arm(*plan);

  std::thread aborter([&] {
    std::this_thread::sleep_for(150ms);
    realm.ctrl(0).abort(a.client);
  });
  const auto start = std::chrono::steady_clock::now();
  const util::Status st = realm.ctrl(0).prepare_migration(cli);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  aborter.join();
  fault::Injector::instance().disarm();

  // ISSUE 9 satellite 2: the aborted member vetoes the group and every
  // parked waiter wakes well under the 2 s bound — no deadlocked barrier.
  EXPECT_FALSE(st.ok());
  EXPECT_LT(elapsed, 2s);
  EXPECT_GE(realm.ctrl(0).group_rollbacks(), 1u);
  EXPECT_EQ(realm.ctrl(0).group_coordinator().active(), 0u);

  // The surviving member rolls back to ESTABLISHED and still carries data.
  ASSERT_TRUE(fault::await_established(*b.client, 5s).ok());
  ASSERT_TRUE(b.client->send(span("after-rollback"), 2s).ok());
  auto got = b.server->recv(2s);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(text(got->body), "after-rollback");
}

TEST_F(GroupSuspendTest, SingleConnRollbackUnderSendPressure) {
  // ISSUE 9 satellite 3: the kSusSent --kSuspendAbort--> kEstablished arc
  // on the plain (non-group) path, with senders blocked mid-handshake.
  SimRealm realm(2, /*security=*/false, /*link_latency=*/{},
                 [](NodeConfig& config) {
                   config.controller.suspend_rollback = true;
                   config.controller.ctrl_response_timeout = 300ms;
                   config.controller.drain_timeout = 1s;
                 });
  const agent::AgentId cli = realm.pseudo_agent("one-cli", 0);
  const agent::AgentId srv = realm.pseudo_agent("one-srv", 1);
  ConnPair conn = make_connection(realm, cli, 0, srv, 1);
  ASSERT_NE(conn.client, nullptr);

  fault::DeliveryLedger ledger;
  constexpr int kMsgs = 20;
  std::atomic<int> sent_ok{0};
  std::thread sender([&] {
    for (int i = 0; i < kMsgs; ++i) {
      const std::string body = "p" + std::to_string(i);
      // Generous timeout: sends issued while the suspend holds the write
      // freeze must block, then wake and complete once it rolls back.
      if (!conn.client->send(span(body), 10s).ok()) return;
      ledger.record_sent(0, span(body));
      sent_ok.fetch_add(1);
      std::this_thread::sleep_for(1ms);
    }
  });
  std::this_thread::sleep_for(5ms);

  auto plan = fault::Plan::parse("ctrl.suspend.pre_send@#1x1000:drop");
  ASSERT_TRUE(plan.ok());
  fault::Injector::instance().arm(*plan);
  const util::Status st = realm.ctrl(0).prepare_migration(cli);
  fault::Injector::instance().disarm();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kTimeout);

  // Senders wake, the stream stays usable, and delivery is exactly-once.
  ASSERT_TRUE(fault::await_established(*conn.client, 5s).ok());
  sender.join();
  EXPECT_EQ(sent_ok.load(), kMsgs);
  for (int i = 0; i < kMsgs; ++i) {
    auto got = conn.server->recv(2s);
    ASSERT_TRUE(got.ok()) << got.status().to_string();
    ledger.record_delivered(0, got->seq,
                            util::ByteSpan(got->body.data(),
                                           got->body.size()));
  }
  EXPECT_TRUE(ledger.check(/*require_complete=*/true).ok());
}

TEST_F(GroupSuspendTest, DrainCoordinatorSweepsAgentGroups) {
  // The swarm drain wired to the group path: each agent's connections
  // suspend behind one barrier per prepare_migration call.
  SimRealm realm(3, /*security=*/false, /*link_latency=*/{}, group_config);
  const agent::AgentId ant = realm.pseudo_agent("drain-ant", 0);
  const agent::AgentId bee = realm.pseudo_agent("drain-bee", 0);
  const agent::AgentId srv = realm.pseudo_agent("drain-srv", 1);

  ASSERT_TRUE(realm.ctrl(1).listen(srv).ok());
  std::vector<ConnPair> conns;
  for (const auto& id : {ant, bee}) {
    for (int i = 0; i < 2; ++i) {
      conns.push_back(connect_pair(realm, id, 0, srv, 1));
      ASSERT_NE(conns.back().client, nullptr);
    }
  }

  swarm::DrainCoordinator drain(
      swarm::DrainConfig{},
      [&](const agent::AgentId& id, std::function<void(util::Status)> done) {
        done(realm.ctrl(0).prepare_migration(id));
      });
  drain.drain({ant, bee});
  ASSERT_TRUE(drain.wait(20s));
  const swarm::DrainReport report = drain.report();
  EXPECT_EQ(report.agents, 2u);
  EXPECT_EQ(report.suspended, 2u);
  EXPECT_EQ(report.stragglers, 0u);
  for (const ConnPair& conn : conns) {
    EXPECT_EQ(conn.client->state(), ConnState::kSuspended);
  }

  // Drained agents complete their hops like any suspended group.
  ASSERT_TRUE(realm.migrate_pseudo_agent(ant, 0, 2).ok());
  ASSERT_TRUE(realm.migrate_pseudo_agent(bee, 0, 2).ok());
  for (const ConnPair& conn : conns) {
    SessionPtr moved = realm.ctrl(2).session_by_id(conn.client->conn_id());
    ASSERT_NE(moved, nullptr);
    EXPECT_TRUE(fault::await_established(*moved, 8s).ok());
  }
}

}  // namespace
}  // namespace naplet::nsock
