// GroupBarrier + GroupSuspendCoordinator unit tests: the checkpoint
// barrier trips only when every member arrives, the first failure wins and
// wakes everyone, a coordinator timeout fails the barrier so late arrivers
// bail instead of parking, and cancel_member (the abort_session hook)
// vetoes the right group.
#include "group/barrier.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "group/coordinator.hpp"

namespace naplet::group {
namespace {

using namespace std::chrono_literals;

TEST(GroupBarrier, TripsWhenEveryMemberArrives) {
  GroupBarrier barrier(7, 3);
  EXPECT_EQ(barrier.group_id(), 7u);
  EXPECT_EQ(barrier.member_count(), 3u);
  EXPECT_TRUE(barrier.arrive());
  EXPECT_TRUE(barrier.arrive());
  std::thread last([&] {
    std::this_thread::sleep_for(20ms);
    EXPECT_TRUE(barrier.arrive());
  });
  EXPECT_TRUE(barrier.await_prepared(2s));
  last.join();
  EXPECT_FALSE(barrier.cancelled());
}

TEST(GroupBarrier, FirstFailureWinsAndWakesWaiters) {
  GroupBarrier barrier(8, 2);
  EXPECT_TRUE(barrier.arrive());
  std::thread failer([&] {
    std::this_thread::sleep_for(20ms);
    barrier.fail("peer refused");
    barrier.fail("second reason loses");
  });
  EXPECT_FALSE(barrier.await_prepared(2s));
  failer.join();
  EXPECT_TRUE(barrier.cancelled());
  EXPECT_EQ(barrier.failure(), "peer refused");
  // A member arriving after the veto must not park its stream.
  EXPECT_FALSE(barrier.arrive());
}

TEST(GroupBarrier, AwaitTimeoutFailsTheBarrier) {
  GroupBarrier barrier(9, 2);
  EXPECT_TRUE(barrier.arrive());
  EXPECT_FALSE(barrier.await_prepared(50ms));
  EXPECT_TRUE(barrier.cancelled());
  EXPECT_EQ(barrier.failure(), "prepare barrier timed out");
  EXPECT_FALSE(barrier.arrive());
}

TEST(GroupBarrier, FailAfterTripIsIgnored) {
  GroupBarrier barrier(10, 1);
  EXPECT_TRUE(barrier.arrive());
  barrier.fail("too late: cut already taken");
  EXPECT_FALSE(barrier.cancelled());
  EXPECT_TRUE(barrier.await_prepared(1s));
}

TEST(GroupBarrier, VerdictRoundTrip) {
  GroupBarrier barrier(11, 1);
  EXPECT_EQ(barrier.await_verdict(10ms), std::nullopt);
  std::thread resolver([&] {
    std::this_thread::sleep_for(20ms);
    barrier.resolve(Verdict::kCommit);
  });
  EXPECT_EQ(barrier.await_verdict(2s), Verdict::kCommit);
  resolver.join();
  // The verdict is sticky for later observers.
  EXPECT_EQ(barrier.await_verdict(0ms), Verdict::kCommit);
}

TEST(GroupCoordinator, OneGroupPerAgent) {
  GroupSuspendCoordinator coordinator;
  auto first = coordinator.begin("ant", 100, {1, 2});
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(coordinator.begin("ant", 101, {3}), nullptr);
  EXPECT_EQ(coordinator.active(), 1u);
  EXPECT_EQ(coordinator.find("ant"), first);
  coordinator.end("ant");
  EXPECT_EQ(coordinator.active(), 0u);
  EXPECT_EQ(coordinator.find("ant"), nullptr);
  EXPECT_NE(coordinator.begin("ant", 102, {1, 2}), nullptr);
}

TEST(GroupCoordinator, CancelMemberVetoesItsGroup) {
  GroupSuspendCoordinator coordinator;
  auto ant = coordinator.begin("ant", 200, {1, 2});
  auto bee = coordinator.begin("bee", 201, {3, 4});
  ASSERT_NE(ant, nullptr);
  ASSERT_NE(bee, nullptr);

  EXPECT_FALSE(coordinator.cancel_member(99, "not a member"));
  EXPECT_TRUE(coordinator.cancel_member(2, "conn aborted"));
  EXPECT_TRUE(ant->cancelled());
  EXPECT_NE(ant->failure().find("conn aborted"), std::string::npos);
  EXPECT_FALSE(bee->cancelled());

  // Members are released on end(): the id no longer maps to a group.
  coordinator.end("ant");
  EXPECT_FALSE(coordinator.cancel_member(1, "stale"));
}

}  // namespace
}  // namespace naplet::group
