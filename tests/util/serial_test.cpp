#include "util/serial.hpp"

#include <gtest/gtest.h>

namespace naplet::util {
namespace {

struct Inner {
  std::uint32_t x = 0;
  std::string tag;
  void persist(Archive& ar) {
    ar.field(x);
    ar.field(tag);
  }
  friend bool operator==(const Inner&, const Inner&) = default;
};

struct Outer {
  std::uint64_t id = 0;
  double weight = 0;
  bool flag = false;
  std::vector<std::uint32_t> values;
  std::vector<Inner> inners;
  std::map<std::string, std::uint64_t> counters;
  Bytes blob;
  void persist(Archive& ar) {
    ar.field(id);
    ar.field(weight);
    ar.field(flag);
    ar.field(values);
    ar.field(inners);
    ar.field(counters);
    ar.field(blob);
  }
  friend bool operator==(const Outer&, const Outer&) = default;
};

TEST(Archive, RoundTripComposite) {
  Outer original;
  original.id = 0xDEADBEEFCAFEULL;
  original.weight = -2.5;
  original.flag = true;
  original.values = {1, 2, 3, 4000000000u};
  original.inners = {{7, "seven"}, {8, "eight"}};
  original.counters = {{"a", 1}, {"b", 2}};
  original.blob = {0x00, 0xFF, 0x10};

  const Bytes encoded = Archive::encode(original);
  Outer decoded;
  ASSERT_TRUE(Archive::decode(ByteSpan(encoded.data(), encoded.size()),
                              decoded)
                  .ok());
  EXPECT_EQ(decoded, original);
}

TEST(Archive, EmptyContainers) {
  Outer original;
  const Bytes encoded = Archive::encode(original);
  Outer decoded;
  decoded.values = {9, 9};  // must be cleared by decode
  ASSERT_TRUE(Archive::decode(ByteSpan(encoded.data(), encoded.size()),
                              decoded)
                  .ok());
  EXPECT_EQ(decoded, original);
}

TEST(Archive, TruncatedInputFails) {
  Outer original;
  original.values = {1, 2, 3};
  Bytes encoded = Archive::encode(original);
  encoded.resize(encoded.size() / 2);
  Outer decoded;
  EXPECT_FALSE(Archive::decode(ByteSpan(encoded.data(), encoded.size()),
                               decoded)
                   .ok());
}

TEST(Archive, TrailingBytesFail) {
  Outer original;
  Bytes encoded = Archive::encode(original);
  encoded.push_back(0);
  Outer decoded;
  auto status =
      Archive::decode(ByteSpan(encoded.data(), encoded.size()), decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kProtocolError);
}

TEST(Archive, HugeContainerCountRejected) {
  // A corrupt length prefix must not cause a giant allocation.
  BytesWriter w;
  w.u32(0xFFFFFFFF);
  Bytes encoded = std::move(w).take();
  Archive ar(ByteSpan(encoded.data(), encoded.size()));
  std::vector<std::uint32_t> v;
  ar.field(v);
  EXPECT_FALSE(ar.ok());
}

TEST(Archive, ModeFlags) {
  Archive writing;
  EXPECT_TRUE(writing.is_writing());
  EXPECT_FALSE(writing.is_reading());
  Bytes buf;
  Archive reading((ByteSpan(buf.data(), buf.size())));
  EXPECT_TRUE(reading.is_reading());
}

TEST(Archive, MapOrderIndependence) {
  std::map<std::string, std::uint64_t> m = {{"z", 26}, {"a", 1}, {"m", 13}};
  Archive w;
  w.field(m);
  Bytes encoded = std::move(w).take_bytes();
  std::map<std::string, std::uint64_t> decoded;
  Archive r((ByteSpan(encoded.data(), encoded.size())));
  r.field(decoded);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded, m);
}

TEST(Archive, NestedVectorsOfStructs) {
  std::vector<Inner> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = Inner{static_cast<std::uint32_t>(i), std::to_string(i)};
  }
  Archive w;
  w.field(v);
  Bytes encoded = std::move(w).take_bytes();
  std::vector<Inner> decoded;
  Archive r((ByteSpan(encoded.data(), encoded.size())));
  r.field(decoded);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(decoded, v);
}

}  // namespace
}  // namespace naplet::util
