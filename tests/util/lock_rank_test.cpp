// Tests for the debug-build lock-rank validator (util/lock_rank.hpp) and
// its integration with util::Mutex. The death tests document the exact
// failure mode: a deliberate rank inversion aborts the process with both
// acquisition stacks instead of deadlocking at some later, racier moment.
#include "util/lock_rank.hpp"

#include <gtest/gtest.h>

#include "util/sync.hpp"

namespace naplet::util {
namespace {

TEST(LockRank, InOrderAcquisitionIsClean) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "validator off (NDEBUG)";
  Mutex outer(LockRank::kController, "test.outer");
  Mutex inner(LockRank::kSessionWrite, "test.inner");
  const std::size_t base = lock_rank::held_count();
  {
    MutexLock a(outer);
    EXPECT_EQ(lock_rank::held_count(), base + 1);
    {
      MutexLock b(inner);
      EXPECT_EQ(lock_rank::held_count(), base + 2);
    }
    EXPECT_EQ(lock_rank::held_count(), base + 1);
  }
  EXPECT_EQ(lock_rank::held_count(), base);
}

TEST(LockRank, LockCouplingReleasesOuterFirst) {
  // The session send path releases write_mu_ before write_io_mu_ is
  // released; the validator must handle out-of-LIFO-order releases.
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "validator off (NDEBUG)";
  Mutex outer(LockRank::kSessionWrite, "test.write");
  Mutex inner(LockRank::kSessionWriteIo, "test.write_io");
  const std::size_t base = lock_rank::held_count();
  UniqueMutexLock a(outer);
  UniqueMutexLock b(inner);
  EXPECT_EQ(lock_rank::held_count(), base + 2);
  a.unlock();  // outer released while inner stays held
  EXPECT_EQ(lock_rank::held_count(), base + 1);
  b.unlock();
  EXPECT_EQ(lock_rank::held_count(), base);
}

TEST(LockRank, TryLockIsRecordedButUnchecked) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "validator off (NDEBUG)";
  Mutex inner(LockRank::kSessionStream, "test.stream");
  Mutex outer(LockRank::kController, "test.controller");
  const std::size_t base = lock_rank::held_count();
  MutexLock hold(inner);
  // try_lock against rank order must not abort: it cannot deadlock.
  ASSERT_TRUE(outer.try_lock());
  EXPECT_EQ(lock_rank::held_count(), base + 2);
  outer.unlock();
  EXPECT_EQ(lock_rank::held_count(), base + 1);
}

TEST(LockRank, UnrankedMutexesAreInvisible) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "validator off (NDEBUG)";
  Mutex plain;  // no rank: static analysis only
  const std::size_t base = lock_rank::held_count();
  MutexLock lock(plain);
  EXPECT_EQ(lock_rank::held_count(), base);
}

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, InversionAbortsWithBothStacks) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "validator off (NDEBUG)";
  EXPECT_DEATH(
      {
        Mutex inner(LockRank::kSessionWrite, "session.write");
        Mutex outer(LockRank::kController, "controller");
        MutexLock a(inner);
        MutexLock b(outer);  // controller(10) after session.write(20): abort
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, SameRankAbortsToo) {
  // Two locks of equal rank can deadlock against each other; the hierarchy
  // requires strictly increasing ranks.
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "validator off (NDEBUG)";
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kSessionBuffer, "buf.a");
        Mutex b(LockRank::kSessionBuffer, "buf.b");
        MutexLock la(a);
        MutexLock lb(b);
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  if (!lock_rank_checks_enabled()) GTEST_SKIP() << "validator off (NDEBUG)";
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kController, "controller");
        mu.lock();
        mu.lock();  // self-deadlock on a non-recursive mutex
      },
      "lock rank inversion");
}

}  // namespace
}  // namespace naplet::util
