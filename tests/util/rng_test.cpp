#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace naplet::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-5.0, 5.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  constexpr int kSamples = 200000;
  constexpr double kMean = 42.0;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double d = rng.exponential(kMean);
    EXPECT_GE(d, 0.0);
    sum += d;
  }
  const double sample_mean = sum / kSamples;
  EXPECT_NEAR(sample_mean, kMean, kMean * 0.02);
}

TEST(Rng, ExponentialDegenerateMean) {
  Rng rng(15);
  EXPECT_EQ(rng.exponential(0), 0.0);
  EXPECT_EQ(rng.exponential(-3), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, UniformityOfLowBits) {
  // SplitMix64 output should have balanced low bits.
  Rng rng(19);
  int ones = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ones += static_cast<int>(rng.next_u64() & 1);
  }
  EXPECT_NEAR(static_cast<double>(ones) / kSamples, 0.5, 0.01);
}

}  // namespace
}  // namespace naplet::util
