#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace naplet::util {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(to_hex(ByteSpan(data.data(), data.size())), "0001abcdefff");
  auto back = from_hex("0001abcdefff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex({}), "");
  auto empty = from_hex("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(Hex, UppercaseAccepted) {
  auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(to_hex(ByteSpan(v->data(), v->size())), "deadbeef");
}

TEST(Hex, OddLengthRejected) {
  EXPECT_FALSE(from_hex("abc").ok());
  EXPECT_EQ(from_hex("abc").status().code(), StatusCode::kInvalidArgument);
}

TEST(Hex, NonHexRejected) {
  EXPECT_FALSE(from_hex("zz").ok());
  EXPECT_FALSE(from_hex("0g").ok());
}

TEST(ConstantTimeEqual, Basics) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(equal_constant_time(ByteSpan(a.data(), a.size()),
                                  ByteSpan(b.data(), b.size())));
  EXPECT_FALSE(equal_constant_time(ByteSpan(a.data(), a.size()),
                                   ByteSpan(c.data(), c.size())));
  EXPECT_FALSE(equal_constant_time(ByteSpan(a.data(), a.size()),
                                   ByteSpan(d.data(), d.size())));
  EXPECT_TRUE(equal_constant_time({}, {}));
}

TEST(BytesWriter, NetworkByteOrder) {
  BytesWriter w;
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  const Bytes& out = w.data();
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(out[0], 0x12);
  EXPECT_EQ(out[1], 0x34);
  EXPECT_EQ(out[2], 0xDE);
  EXPECT_EQ(out[5], 0xEF);
  EXPECT_EQ(out[6], 0x01);
  EXPECT_EQ(out[13], 0x08);
}

TEST(BytesRoundTrip, AllPrimitives) {
  BytesWriter w;
  w.u8(0xAB);
  w.u16(65535);
  w.u32(4000000000u);
  w.u64(0xFFFFFFFFFFFFFFFFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.bytes(Bytes{9, 8, 7});

  BytesReader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(*r.u8(), 0xAB);
  EXPECT_EQ(*r.u16(), 65535);
  EXPECT_EQ(*r.u32(), 4000000000u);
  EXPECT_EQ(*r.u64(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(*r.i64(), -42);
  EXPECT_DOUBLE_EQ(*r.f64(), 3.14159);
  EXPECT_TRUE(*r.boolean());
  EXPECT_FALSE(*r.boolean());
  EXPECT_EQ(*r.str(), "hello");
  EXPECT_EQ(*r.bytes(), (Bytes{9, 8, 7}));
  EXPECT_TRUE(r.empty());
}

TEST(BytesReader, UnderflowIsError) {
  const Bytes data = {1, 2};
  BytesReader r(ByteSpan(data.data(), data.size()));
  auto v = r.u32();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
  // Position unchanged after failed read.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(*r.u16(), 0x0102);
}

TEST(BytesReader, LengthPrefixedUnderflow) {
  BytesWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.raw("abc", 3);
  BytesReader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_FALSE(r.bytes().ok());
}

TEST(BytesReader, SkipAndPosition) {
  const Bytes data = {1, 2, 3, 4, 5};
  BytesReader r(ByteSpan(data.data(), data.size()));
  EXPECT_TRUE(r.skip(2).ok());
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(*r.u8(), 3);
  EXPECT_FALSE(r.skip(10).ok());
}

TEST(BytesWriter, PatchU32) {
  BytesWriter w;
  w.u32(0);  // placeholder
  w.str("payload");
  w.patch_u32(0, static_cast<std::uint32_t>(w.size()));
  BytesReader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(*r.u32(), w.size());
}

TEST(BytesWriter, EmptyStringAndBytes) {
  BytesWriter w;
  w.str("");
  w.bytes({});
  BytesReader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(*r.str(), "");
  EXPECT_TRUE(r.bytes()->empty());
  EXPECT_TRUE(r.empty());
}

class U64RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U64RoundTrip, Exact) {
  BytesWriter w;
  w.u64(GetParam());
  BytesReader r(ByteSpan(w.data().data(), w.data().size()));
  EXPECT_EQ(*r.u64(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, U64RoundTrip,
    ::testing::Values(0ULL, 1ULL, 0xFFULL, 0x100ULL, 0xFFFFFFFFULL,
                      0x100000000ULL, 0x7FFFFFFFFFFFFFFFULL,
                      0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace naplet::util
