#include "util/status.hpp"

#include <gtest/gtest.h>

namespace naplet::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("agent x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "agent x");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: agent x");
}

TEST(Status, EqualityIsByCode) {
  EXPECT_EQ(Timeout("a"), Timeout("b"));
  EXPECT_FALSE(Timeout("a") == NotFound("a"));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kProtocolError); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(InvalidArgument("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOr, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v(std::string("hello"));
  EXPECT_EQ(v->size(), 5u);
}

util::Status fails() { return Timeout("inner"); }
util::Status propagates() {
  NAPLET_RETURN_IF_ERROR(fails());
  return OkStatus();
}

TEST(ReturnIfError, Propagates) {
  EXPECT_EQ(propagates().code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace naplet::util
