#include "util/clock.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace naplet::util {
namespace {

using namespace std::chrono_literals;

TEST(RealClock, Monotonic) {
  RealClock& clock = RealClock::instance();
  const std::int64_t a = clock.now_us();
  const std::int64_t b = clock.now_us();
  EXPECT_LE(a, b);
}

TEST(RealClock, SleepAdvances) {
  RealClock& clock = RealClock::instance();
  const std::int64_t before = clock.now_us();
  clock.sleep_for(5ms);
  EXPECT_GE(clock.now_us() - before, 4000);
}

TEST(VirtualClock, StartsAtGivenTime) {
  VirtualClock clock(1000);
  EXPECT_EQ(clock.now_us(), 1000);
}

TEST(VirtualClock, AdvanceMovesTime) {
  VirtualClock clock;
  clock.advance(us(500));
  EXPECT_EQ(clock.now_us(), 500);
  clock.advance(ms(2));
  EXPECT_EQ(clock.now_us(), 2500);
}

TEST(VirtualClock, SleeperWokenByAdvance) {
  VirtualClock clock;
  std::thread sleeper([&] { clock.sleep_for(ms(10)); });
  // Wait for the sleeper to park.
  while (clock.sleeper_count() == 0) std::this_thread::sleep_for(1ms);
  clock.advance(ms(5));
  std::this_thread::sleep_for(5ms);
  EXPECT_EQ(clock.sleeper_count(), 1);  // not yet due
  clock.advance(ms(5));
  sleeper.join();
  EXPECT_EQ(clock.sleeper_count(), 0);
}

TEST(Stopwatch, MeasuresVirtualTime) {
  VirtualClock clock;
  Stopwatch sw(clock);
  clock.advance(ms(7));
  EXPECT_EQ(sw.elapsed_us(), 7000);
  EXPECT_DOUBLE_EQ(sw.elapsed_ms(), 7.0);
  sw.reset();
  EXPECT_EQ(sw.elapsed_us(), 0);
}

}  // namespace
}  // namespace naplet::util
