#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace naplet::util {
namespace {

using namespace std::chrono_literals;

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  auto v = q.pop_for(10ms);
  EXPECT_FALSE(v.has_value());
}

TEST(BlockingQueue, TryPopNonBlocking) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(5);
  EXPECT_EQ(*q.try_pop(), 5);
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));  // rejected after close
  EXPECT_EQ(*q.pop(), 1);   // drained
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CloseWakesBlockedPopper) {
  BlockingQueue<int> q;
  std::thread t([&] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(20ms);
  q.close();
  t.join();
}

TEST(BlockingQueue, CrossThreadDelivery) {
  BlockingQueue<int> q;
  constexpr int kCount = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) q.push(i);
  });
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(*q.pop(), i);
  }
  producer.join();
}

TEST(BlockingQueue, MultipleProducersAllItemsArrive) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) q.push(i);
    });
  }
  int received = 0;
  while (received < 4 * kPerProducer) {
    if (q.pop_for(1s)) ++received;
  }
  EXPECT_EQ(received, 4 * kPerProducer);
  for (auto& t : producers) t.join();
}

TEST(Event, SetReleasesWaiter) {
  Event e;
  std::atomic<bool> woke{false};
  std::thread t([&] {
    e.wait();
    woke = true;
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(woke.load());
  e.set();
  t.join();
  EXPECT_TRUE(woke.load());
}

TEST(Event, SetBeforeWaitIsSticky) {
  Event e;
  e.set();
  EXPECT_TRUE(e.wait_for(0ms));
  EXPECT_TRUE(e.is_set());
}

TEST(Event, ResetClears) {
  Event e;
  e.set();
  e.reset();
  EXPECT_FALSE(e.is_set());
  EXPECT_FALSE(e.wait_for(5ms));
}

TEST(Event, WaitForTimesOut) {
  Event e;
  EXPECT_FALSE(e.wait_for(10ms));
}

TEST(WaitableCell, GetSet) {
  WaitableCell<int> cell(1);
  EXPECT_EQ(cell.get(), 1);
  cell.set(2);
  EXPECT_EQ(cell.get(), 2);
}

TEST(WaitableCell, WaitForPredicate) {
  WaitableCell<int> cell(0);
  std::thread t([&] {
    std::this_thread::sleep_for(20ms);
    cell.set(42);
  });
  auto v = cell.wait_for([](int x) { return x == 42; }, 2s);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  t.join();
}

TEST(WaitableCell, WaitForTimesOut) {
  WaitableCell<int> cell(0);
  EXPECT_FALSE(cell.wait_for([](int x) { return x == 1; }, 10ms).has_value());
}

TEST(WaitableCell, UpdateAppliesMutationAndWakes) {
  WaitableCell<std::vector<int>> cell({});
  std::thread t([&] {
    std::this_thread::sleep_for(10ms);
    cell.update([](std::vector<int>& v) { v.push_back(9); });
  });
  auto v = cell.wait_for([](const std::vector<int>& v2) { return !v2.empty(); },
                         2s);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at(0), 9);
  t.join();
}

}  // namespace
}  // namespace naplet::util
