// Wire-codec coverage for the sliding-window rudp packet format: encode /
// decode round trips for every packet type, CRC rejection of single-bit
// corruption anywhere in the frame, SACK-range coalescing, and serial
// sequence arithmetic across the 2^64 wraparound.
#include <gtest/gtest.h>

#include <cstdint>

#include "net/rudp_wire.hpp"

namespace naplet::net::wire {
namespace {

util::Bytes payload_of(std::initializer_list<std::uint8_t> bytes) {
  return util::Bytes(bytes);
}

TEST(RudpWireTest, DataRoundTrip) {
  Packet in;
  in.type = PacketType::kData;
  in.seq = 0x0123456789ABCDEFULL;
  in.flow_id = 42;
  in.flow_start = 0x0123456789ABCDE0ULL;
  in.flags = kFlagFecMember;
  in.fec_base = 0x0123456789ABCDECULL;
  in.payload = payload_of({0xDE, 0xAD, 0xBE, 0xEF});

  const util::Bytes frame = encode(in);
  auto out = decode(util::ByteSpan(frame.data(), frame.size()));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, PacketType::kData);
  EXPECT_EQ(out->seq, in.seq);
  EXPECT_EQ(out->flow_id, in.flow_id);
  EXPECT_EQ(out->flow_start, in.flow_start);
  EXPECT_TRUE(out->fec_member());
  EXPECT_EQ(out->fec_base, in.fec_base);
  EXPECT_EQ(out->payload, in.payload);
  EXPECT_TRUE(out->sacks.empty());
}

TEST(RudpWireTest, AckWithSacksRoundTrip) {
  Packet in;
  in.type = PacketType::kAck;
  in.seq = 99;  // cumulative ack
  in.flow_id = 7;
  in.sacks = {SackRange{101, 103}, SackRange{107, 107}};

  const util::Bytes frame = encode(in);
  auto out = decode(util::ByteSpan(frame.data(), frame.size()));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, PacketType::kAck);
  EXPECT_EQ(out->seq, 99u);
  ASSERT_EQ(out->sacks.size(), 2u);
  EXPECT_EQ(out->sacks[0], (SackRange{101, 103}));
  EXPECT_EQ(out->sacks[1], (SackRange{107, 107}));
  EXPECT_TRUE(out->payload.empty());
}

TEST(RudpWireTest, ParityRoundTrip) {
  Packet in;
  in.type = PacketType::kParity;
  in.seq = 12;
  in.fec_base = 12;
  in.fec_k = 4;
  in.payload = payload_of({0x00, 0x00, 0x00, 0x01, 0x5A});

  const util::Bytes frame = encode(in);
  auto out = decode(util::ByteSpan(frame.data(), frame.size()));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, PacketType::kParity);
  EXPECT_EQ(out->fec_k, 4u);
  EXPECT_EQ(out->fec_base, 12u);
  EXPECT_EQ(out->payload, in.payload);
}

TEST(RudpWireTest, EveryBitFlipIsRejected) {
  Packet in;
  in.type = PacketType::kData;
  in.seq = 5;
  in.flow_id = 1;
  in.flow_start = 1;
  in.payload = payload_of({0x11, 0x22, 0x33});
  const util::Bytes frame = encode(in);

  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      util::Bytes corrupt = frame;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(
          decode(util::ByteSpan(corrupt.data(), corrupt.size())).has_value())
          << "flip survived at byte " << byte << " bit " << bit;
    }
  }
}

TEST(RudpWireTest, GarbageAndTruncationRejected) {
  EXPECT_FALSE(decode(util::ByteSpan()).has_value());
  const util::Bytes junk = payload_of({1, 2, 3, 4, 5, 6, 7});
  EXPECT_FALSE(decode(util::ByteSpan(junk.data(), junk.size())).has_value());

  Packet in;
  in.type = PacketType::kData;
  in.seq = 1;
  const util::Bytes frame = encode(in);
  // Any truncation breaks the CRC trailer.
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_FALSE(decode(util::ByteSpan(frame.data(), n)).has_value());
  }
}

TEST(RudpWireTest, SackCoalescingMergesAdjacentAndDuplicates) {
  // 5,6,7 coalesce; 9 stands alone; duplicates collapse.
  auto ranges = build_sacks({7, 5, 9, 6, 5, 7}, 5);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (SackRange{5, 7}));
  EXPECT_EQ(ranges[1], (SackRange{9, 9}));
}

TEST(RudpWireTest, SackCapKeepsRangesNearestBase) {
  // Six isolated seqs -> capped at kMaxSackRanges, nearest base first.
  auto ranges = build_sacks({2, 4, 6, 8, 10, 12}, 1);
  ASSERT_EQ(ranges.size(), kMaxSackRanges);
  EXPECT_EQ(ranges[0], (SackRange{2, 2}));
  EXPECT_EQ(ranges[3], (SackRange{8, 8}));
}

TEST(RudpWireTest, SerialComparisonSurvivesWraparound) {
  const std::uint64_t near_max = ~0ULL - 1;  // 2^64 - 2
  EXPECT_TRUE(seq_lt(near_max, near_max + 1));
  EXPECT_TRUE(seq_lt(near_max + 1, near_max + 2));  // wraps through 0
  EXPECT_TRUE(seq_lt(near_max, 3));                 // across the wrap
  EXPECT_FALSE(seq_lt(3, near_max));
  EXPECT_TRUE(seq_le(near_max + 2, near_max + 2));
}

TEST(RudpWireTest, SackCoalescingAcrossWraparound) {
  const std::uint64_t near_max = ~0ULL - 1;  // 2^64 - 2
  // Seqs straddling the wrap: 2^64-2, 2^64-1, 0, 1 form ONE range.
  auto ranges = build_sacks({0, near_max, 1, near_max + 1}, near_max);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, near_max);
  EXPECT_EQ(ranges[0].last, 1u);
}

TEST(RudpWireTest, DecodeRejectsTrailingBytes) {
  Packet in;
  in.type = PacketType::kAck;
  in.seq = 1;
  util::Bytes frame = encode(in);
  // Append bytes AND fix up a valid CRC over the longer frame by
  // re-encoding is impossible here, so just verify padding breaks it.
  frame.push_back(0x00);
  EXPECT_FALSE(decode(util::ByteSpan(frame.data(), frame.size())).has_value());
}

}  // namespace
}  // namespace naplet::net::wire
