#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "net/frame.hpp"

namespace naplet::net {
namespace {

using namespace std::chrono_literals;

class TcpTest : public ::testing::Test {
 protected:
  std::shared_ptr<TcpNetwork> network_ = std::make_shared<TcpNetwork>();
};

TEST_F(TcpTest, ListenAutoAssignsPort) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT((*listener)->local_endpoint().port, 0);
  EXPECT_EQ((*listener)->local_endpoint().host, "127.0.0.1");
}

TEST_F(TcpTest, ConnectAcceptRoundTrip) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  const Endpoint dest = (*listener)->local_endpoint();

  auto client = network_->connect(dest, 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());

  const util::Bytes msg = {'h', 'i'};
  ASSERT_TRUE((*client)->write_all(util::ByteSpan(msg.data(), msg.size())).ok());
  std::uint8_t buf[16];
  auto n = (*server)->read_some(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(buf[0], 'h');
}

TEST_F(TcpTest, VectoredWriteArrivesContiguous) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = network_->connect((*listener)->local_endpoint(), 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());

  const util::Bytes p1 = {'a', 'b'}, p2 = {'c'}, p3 = {'d', 'e', 'f'};
  const util::ByteSpan parts[3] = {util::ByteSpan(p1.data(), p1.size()),
                                   util::ByteSpan(p2.data(), p2.size()),
                                   util::ByteSpan(p3.data(), p3.size())};
  ASSERT_TRUE((*client)
                  ->write_all_vectored(std::span<const util::ByteSpan>(parts))
                  .ok());
  std::uint8_t buf[16];
  std::size_t got = 0;
  while (got < 6) {
    auto n = (*server)->read_some(buf + got, sizeof buf - got);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    got += *n;
  }
  EXPECT_EQ(std::string(buf, buf + 6), "abcdef");
}

TEST_F(TcpTest, ConnectRefusedFailsFast) {
  // Port 1 on loopback is almost certainly closed.
  auto client = network_->connect(Endpoint{"127.0.0.1", 1}, 500ms);
  EXPECT_FALSE(client.ok());
}

TEST_F(TcpTest, BadAddressRejected) {
  auto client = network_->connect(Endpoint{"not-an-ip", 80}, 100ms);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(TcpTest, AcceptTimesOut) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  auto conn = (*listener)->accept(50ms);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), util::StatusCode::kTimeout);
}

TEST_F(TcpTest, ReadTimesOut) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = network_->connect((*listener)->local_endpoint(), 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());
  std::uint8_t buf[8];
  auto n = (*server)->read_some_for(buf, sizeof buf, 50ms);
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), util::StatusCode::kTimeout);
}

TEST_F(TcpTest, PeerCloseYieldsZeroRead) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = network_->connect((*listener)->local_endpoint(), 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());
  (*client)->close();
  std::uint8_t buf[8];
  auto n = (*server)->read_some(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

TEST_F(TcpTest, CloseUnblocksAccept) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  std::thread closer([&] {
    std::this_thread::sleep_for(30ms);
    (*listener)->close();
  });
  auto conn = (*listener)->accept(std::nullopt);
  EXPECT_FALSE(conn.ok());
  closer.join();
}

TEST_F(TcpTest, DrainPendingReturnsBufferedBytes) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = network_->connect((*listener)->local_endpoint(), 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());

  const util::Bytes msg = {1, 2, 3, 4};
  ASSERT_TRUE((*client)->write_all(util::ByteSpan(msg.data(), msg.size())).ok());
  // Give the kernel a moment to deliver on loopback.
  std::this_thread::sleep_for(20ms);
  auto drained = (*server)->drain_pending();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(*drained, msg);
  // A second drain finds nothing.
  auto again = (*server)->drain_pending();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST_F(TcpTest, UdpSendRecv) {
  auto a = network_->bind_datagram(0);
  auto b = network_->bind_datagram(0);
  ASSERT_TRUE(a.ok() && b.ok());
  const util::Bytes msg = {9, 9, 9};
  ASSERT_TRUE(
      (*a)->send_to((*b)->local_endpoint(), util::ByteSpan(msg.data(), msg.size()))
          .ok());
  auto pkt = (*b)->recv_for(1s);
  ASSERT_TRUE(pkt.ok());
  EXPECT_EQ(pkt->data, msg);
  EXPECT_EQ(pkt->from.port, (*a)->local_endpoint().port);
}

TEST_F(TcpTest, UdpRecvTimesOut) {
  auto a = network_->bind_datagram(0);
  ASSERT_TRUE(a.ok());
  auto pkt = (*a)->recv_for(50ms);
  EXPECT_FALSE(pkt.ok());
  EXPECT_EQ(pkt.status().code(), util::StatusCode::kTimeout);
}

TEST_F(TcpTest, EndpointsReported) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = network_->connect((*listener)->local_endpoint(), 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*client)->remote_endpoint().port,
            (*listener)->local_endpoint().port);
  EXPECT_EQ((*client)->local_endpoint().port,
            (*server)->remote_endpoint().port);
}

TEST_F(TcpTest, FramesOverRealSockets) {
  auto listener = network_->listen(0);
  ASSERT_TRUE(listener.ok());
  auto client = network_->connect((*listener)->local_endpoint(), 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());
  for (int i = 0; i < 50; ++i) {
    util::BytesWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(write_frame(**client,
                            util::ByteSpan(w.data().data(), w.data().size()))
                    .ok());
    auto got = read_frame(**server);
    ASSERT_TRUE(got.ok());
    util::BytesReader r(util::ByteSpan(got->data(), got->size()));
    EXPECT_EQ(*r.u32(), static_cast<std::uint32_t>(i));
  }
}

}  // namespace
}  // namespace naplet::net
