#include "net/rudp.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "net/sim.hpp"
#include "net/tcp.hpp"

namespace naplet::net {
namespace {

using namespace std::chrono_literals;

std::unique_ptr<ReliableChannel> make_channel(Network& network,
                                              std::uint16_t port,
                                              RudpConfig config = {}) {
  auto dgram = network.bind_datagram(port);
  EXPECT_TRUE(dgram.ok());
  return std::make_unique<ReliableChannel>(std::move(*dgram), config);
}

TEST(Rudp, DeliversOverLossyLink) {
  // 30% datagram loss in both directions; retransmission must still get
  // every message through, exactly once, in order of ACK completion.
  SimNet net(/*seed=*/5);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.set_link("a", "b", LinkConfig{.datagram_loss = 0.3});
  net.set_link("b", "a", LinkConfig{.datagram_loss = 0.3});

  RudpConfig config;
  config.retransmit_interval = 20ms;
  config.max_attempts = 50;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*b, 7, config);

  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    util::BytesWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(w.data().data(), w.data().size()))
                    .ok())
        << "message " << i;
  }

  // Sequential blocking sends mean in-order delivery despite loss.
  for (int i = 0; i < kMessages; ++i) {
    auto msg = cb->recv(2s);
    ASSERT_TRUE(msg.has_value()) << "message " << i;
    util::BytesReader r(util::ByteSpan(msg->payload.data(),
                                       msg->payload.size()));
    EXPECT_EQ(*r.u32(), static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(cb->recv(50ms).has_value());  // nothing extra (no duplicates)
  EXPECT_GT(ca->retransmissions(), 0u);      // loss actually exercised
}

TEST(Rudp, DuplicateSuppressionCountsDrops) {
  SimNet net(/*seed=*/11);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  // Lossy ACK path: data arrives, ACKs get lost, sender retransmits, and
  // the receiver must drop the duplicates.
  net.set_link("b", "a", LinkConfig{.datagram_loss = 0.7});

  RudpConfig config;
  config.retransmit_interval = 15ms;
  config.max_attempts = 100;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*b, 7, config);

  for (int i = 0; i < 10; ++i) {
    util::BytesWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(w.data().data(), w.data().size()))
                    .ok());
  }
  int received = 0;
  while (cb->recv(100ms).has_value()) ++received;
  EXPECT_EQ(received, 10);
  EXPECT_GT(cb->duplicates_dropped(), 0u);
}

TEST(Rudp, SendFailsAfterMaxAttempts) {
  SimNet net;
  auto a = net.add_node("a");
  net.add_node("b");
  net.set_link("a", "b", LinkConfig{.datagram_loss = 1.0});

  RudpConfig config;
  config.retransmit_interval = 5ms;
  config.max_attempts = 3;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*net.add_node("b"), 7, config);

  const util::Bytes msg = {1};
  auto status = ca->send(Endpoint{"b", 7},
                         util::ByteSpan(msg.data(), msg.size()));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kTimeout);
  (void)cb;
}

TEST(Rudp, BidirectionalConcurrentSends) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto ca = make_channel(*a, 7);
  auto cb = make_channel(*b, 7);

  constexpr int kEach = 30;
  std::thread sender_a([&] {
    for (int i = 0; i < kEach; ++i) {
      util::BytesWriter w;
      w.str("from-a");
      ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                           util::ByteSpan(w.data().data(), w.data().size()))
                      .ok());
    }
  });
  std::thread sender_b([&] {
    for (int i = 0; i < kEach; ++i) {
      util::BytesWriter w;
      w.str("from-b");
      ASSERT_TRUE(cb->send(Endpoint{"a", 7},
                           util::ByteSpan(w.data().data(), w.data().size()))
                      .ok());
    }
  });
  int got_a = 0, got_b = 0;
  for (int i = 0; i < kEach; ++i) {
    if (ca->recv(2s)) ++got_a;
    if (cb->recv(2s)) ++got_b;
  }
  sender_a.join();
  sender_b.join();
  EXPECT_EQ(got_a, kEach);
  EXPECT_EQ(got_b, kEach);
}

TEST(Rudp, CloseUnblocksSender) {
  SimNet net;
  auto a = net.add_node("a");
  net.add_node("b");  // no receiver channel: sends will stall
  RudpConfig config;
  config.retransmit_interval = 50ms;
  config.max_attempts = 1000;
  auto ca = make_channel(*a, 7, config);

  std::thread closer([&] {
    std::this_thread::sleep_for(50ms);
    ca->close();
  });
  const util::Bytes msg = {1};
  auto status = ca->send(Endpoint{"b", 7},
                         util::ByteSpan(msg.data(), msg.size()));
  EXPECT_FALSE(status.ok());
  closer.join();
}

TEST(Rudp, GarbagePacketsIgnored) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto cb = make_channel(*b, 7);

  auto raw = a->bind_datagram(9);
  ASSERT_TRUE(raw.ok());
  const util::Bytes junk = {0xde, 0xad};
  ASSERT_TRUE((*raw)->send_to(Endpoint{"b", 7},
                              util::ByteSpan(junk.data(), junk.size()))
                  .ok());
  EXPECT_FALSE(cb->recv(50ms).has_value());

  // Channel still functional afterwards.
  auto ca = make_channel(*a, 7);
  const util::Bytes msg = {1};
  EXPECT_TRUE(ca->send(Endpoint{"b", 7},
                       util::ByteSpan(msg.data(), msg.size()))
                  .ok());
  EXPECT_TRUE(cb->recv(1s).has_value());
}

TEST(Rudp, WorksOverRealUdp) {
  auto network = std::make_shared<TcpNetwork>();
  auto ca = make_channel(*network, 0);
  auto cb = make_channel(*network, 0);
  const util::Bytes msg = {'o', 'k'};
  ASSERT_TRUE(ca->send(cb->local_endpoint(),
                       util::ByteSpan(msg.data(), msg.size()))
                  .ok());
  auto got = cb->recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg);
}

TEST(Rudp, MessagesSentCounter) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto ca = make_channel(*a, 7);
  auto cb = make_channel(*b, 7);
  const util::Bytes msg = {1};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(msg.data(), msg.size()))
                    .ok());
  }
  EXPECT_EQ(ca->messages_sent(), 5u);
  (void)cb;
}

}  // namespace
}  // namespace naplet::net
