#include "net/rudp.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "fault/fault.hpp"
#include "net/sim.hpp"
#include "net/tcp.hpp"

namespace naplet::net {
namespace {

using namespace std::chrono_literals;

std::unique_ptr<ReliableChannel> make_channel(Network& network,
                                              std::uint16_t port,
                                              RudpConfig config = {}) {
  auto dgram = network.bind_datagram(port);
  EXPECT_TRUE(dgram.ok());
  return std::make_unique<ReliableChannel>(std::move(*dgram), config);
}

TEST(Rudp, DeliversOverLossyLink) {
  // 30% datagram loss in both directions; retransmission must still get
  // every message through, exactly once, in order of ACK completion.
  SimNet net(/*seed=*/5);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.set_link("a", "b", LinkConfig{.datagram_loss = 0.3});
  net.set_link("b", "a", LinkConfig{.datagram_loss = 0.3});

  RudpConfig config;
  config.retransmit_interval = 20ms;
  config.max_attempts = 50;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*b, 7, config);

  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    util::BytesWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(w.data().data(), w.data().size()))
                    .ok())
        << "message " << i;
  }

  // Sequential blocking sends mean in-order delivery despite loss.
  for (int i = 0; i < kMessages; ++i) {
    auto msg = cb->recv(2s);
    ASSERT_TRUE(msg.has_value()) << "message " << i;
    util::BytesReader r(util::ByteSpan(msg->payload.data(),
                                       msg->payload.size()));
    EXPECT_EQ(*r.u32(), static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(cb->recv(50ms).has_value());  // nothing extra (no duplicates)
  EXPECT_GT(ca->retransmissions(), 0u);      // loss actually exercised
}

TEST(Rudp, DuplicateSuppressionCountsDrops) {
  SimNet net(/*seed=*/11);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  // Lossy ACK path: data arrives, ACKs get lost, sender retransmits, and
  // the receiver must drop the duplicates.
  net.set_link("b", "a", LinkConfig{.datagram_loss = 0.7});

  RudpConfig config;
  config.retransmit_interval = 15ms;
  config.max_attempts = 100;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*b, 7, config);

  for (int i = 0; i < 10; ++i) {
    util::BytesWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(w.data().data(), w.data().size()))
                    .ok());
  }
  int received = 0;
  while (cb->recv(100ms).has_value()) ++received;
  EXPECT_EQ(received, 10);
  EXPECT_GT(cb->duplicates_dropped(), 0u);
}

TEST(Rudp, SendFailsAfterMaxAttempts) {
  SimNet net;
  auto a = net.add_node("a");
  net.add_node("b");
  net.set_link("a", "b", LinkConfig{.datagram_loss = 1.0});

  RudpConfig config;
  config.retransmit_interval = 5ms;
  config.max_attempts = 3;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*net.add_node("b"), 7, config);

  const util::Bytes msg = {1};
  auto status = ca->send(Endpoint{"b", 7},
                         util::ByteSpan(msg.data(), msg.size()));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kTimeout);
  (void)cb;
}

TEST(Rudp, BidirectionalConcurrentSends) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto ca = make_channel(*a, 7);
  auto cb = make_channel(*b, 7);

  constexpr int kEach = 30;
  std::thread sender_a([&] {
    for (int i = 0; i < kEach; ++i) {
      util::BytesWriter w;
      w.str("from-a");
      ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                           util::ByteSpan(w.data().data(), w.data().size()))
                      .ok());
    }
  });
  std::thread sender_b([&] {
    for (int i = 0; i < kEach; ++i) {
      util::BytesWriter w;
      w.str("from-b");
      ASSERT_TRUE(cb->send(Endpoint{"a", 7},
                           util::ByteSpan(w.data().data(), w.data().size()))
                      .ok());
    }
  });
  int got_a = 0, got_b = 0;
  for (int i = 0; i < kEach; ++i) {
    if (ca->recv(2s)) ++got_a;
    if (cb->recv(2s)) ++got_b;
  }
  sender_a.join();
  sender_b.join();
  EXPECT_EQ(got_a, kEach);
  EXPECT_EQ(got_b, kEach);
}

TEST(Rudp, CloseUnblocksSender) {
  SimNet net;
  auto a = net.add_node("a");
  net.add_node("b");  // no receiver channel: sends will stall
  RudpConfig config;
  config.retransmit_interval = 50ms;
  config.max_attempts = 1000;
  auto ca = make_channel(*a, 7, config);

  std::thread closer([&] {
    std::this_thread::sleep_for(50ms);
    ca->close();
  });
  const util::Bytes msg = {1};
  auto status = ca->send(Endpoint{"b", 7},
                         util::ByteSpan(msg.data(), msg.size()));
  EXPECT_FALSE(status.ok());
  closer.join();
}

TEST(Rudp, GarbagePacketsIgnored) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto cb = make_channel(*b, 7);

  auto raw = a->bind_datagram(9);
  ASSERT_TRUE(raw.ok());
  const util::Bytes junk = {0xde, 0xad};
  ASSERT_TRUE((*raw)->send_to(Endpoint{"b", 7},
                              util::ByteSpan(junk.data(), junk.size()))
                  .ok());
  EXPECT_FALSE(cb->recv(50ms).has_value());

  // Channel still functional afterwards.
  auto ca = make_channel(*a, 7);
  const util::Bytes msg = {1};
  EXPECT_TRUE(ca->send(Endpoint{"b", 7},
                       util::ByteSpan(msg.data(), msg.size()))
                  .ok());
  EXPECT_TRUE(cb->recv(1s).has_value());
}

TEST(Rudp, WorksOverRealUdp) {
  auto network = std::make_shared<TcpNetwork>();
  auto ca = make_channel(*network, 0);
  auto cb = make_channel(*network, 0);
  const util::Bytes msg = {'o', 'k'};
  ASSERT_TRUE(ca->send(cb->local_endpoint(),
                       util::ByteSpan(msg.data(), msg.size()))
                  .ok());
  auto got = cb->recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg);
}

TEST(Rudp, MessagesSentCounter) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto ca = make_channel(*a, 7);
  auto cb = make_channel(*b, 7);
  const util::Bytes msg = {1};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(msg.data(), msg.size()))
                    .ok());
  }
  EXPECT_EQ(ca->messages_sent(), 5u);
  (void)cb;
}

TEST(Rudp, WindowFullBackpressure) {
  SimNet net;
  auto a = net.add_node("a");
  auto sink = net.add_node("b");
  // Bound but mute: packets arrive, no ACK ever comes back, so the single
  // window slot stays occupied by the first send.
  auto mute = sink->bind_datagram(7);
  ASSERT_TRUE(mute.ok());

  RudpConfig config;
  config.window_packets = 1;
  config.retransmit_interval = 1s;  // slot held for the whole test
  config.max_attempts = 10;
  auto ca = make_channel(*a, 7, config);

  const util::Bytes msg = {1};
  std::thread occupant([&] {
    // Blocks in the ACK wait, holding the only window slot, until close().
    (void)ca->send(Endpoint{"b", 7}, util::ByteSpan(msg.data(), msg.size()));
  });
  std::this_thread::sleep_for(50ms);

  const auto t0 = std::chrono::steady_clock::now();
  auto status = ca->send(Endpoint{"b", 7},
                         util::ByteSpan(msg.data(), msg.size()), 100ms);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(status.code(), util::StatusCode::kTimeout);
  EXPECT_LT(waited, 800ms);  // bounded by max_wait, not the retransmit timer

  ca->close();
  occupant.join();
}

TEST(Rudp, AckBeatsCloseUnderRace) {
  // PR-2 flake guard: a send whose ACK already arrived must report Ok even
  // when the channel is concurrently closing. Raced repeatedly; the
  // invariant checked is "Ok implies delivered" and no crash/hang either
  // way the race lands.
  for (int i = 0; i < 25; ++i) {
    SimNet net(/*seed=*/100 + i);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    auto ca = make_channel(*a, 7);
    auto cb = make_channel(*b, 7);

    std::thread closer([&, i] {
      std::this_thread::sleep_for(std::chrono::microseconds((i * 37) % 300));
      ca->close();
    });
    const util::Bytes msg = {static_cast<std::uint8_t>(i)};
    auto status = ca->send(Endpoint{"b", 7},
                           util::ByteSpan(msg.data(), msg.size()));
    closer.join();
    if (status.ok()) {
      auto got = cb->recv(1s);
      ASSERT_TRUE(got.has_value()) << "iteration " << i;
      EXPECT_EQ(got->payload, msg);
    } else {
      EXPECT_EQ(status.code(), util::StatusCode::kCancelled);
    }
  }
}

TEST(Rudp, SequenceWraparoundEndToEnd) {
  // Flows starting six packets shy of 2^64 must wrap transparently: serial
  // arithmetic keeps ordering, dedup, and SACK ranges correct across 0.
  SimNet net(/*seed=*/23);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.set_link("a", "b", LinkConfig{.datagram_loss = 0.2});
  net.set_link("b", "a", LinkConfig{.datagram_loss = 0.2});

  RudpConfig config;
  config.retransmit_interval = 10ms;
  config.max_attempts = 50;
  config.initial_seq = ~0ULL - 5;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*b, 7, config);

  constexpr int kMessages = 20;  // crosses the wrap at message 6
  for (int i = 0; i < kMessages; ++i) {
    util::BytesWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(w.data().data(), w.data().size()))
                    .ok())
        << "message " << i;
  }
  for (int i = 0; i < kMessages; ++i) {
    auto msg = cb->recv(2s);
    ASSERT_TRUE(msg.has_value()) << "message " << i;
    util::BytesReader r(
        util::ByteSpan(msg->payload.data(), msg->payload.size()));
    EXPECT_EQ(*r.u32(), static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(cb->recv(50ms).has_value());
}

class RudpFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::instance().disarm(); }
};

TEST_F(RudpFaultTest, FecRepairsDropWithoutRetransmit) {
  SimNet net(/*seed=*/31);
  auto a = net.add_node("a");
  auto b = net.add_node("b");

  RudpConfig config;
  config.retransmit_interval = 5s;  // the timer must never be the fix
  config.max_attempts = 3;
  config.repair = LossRepair::kXorFec;
  config.fec_group = 4;
  config.fec_flush = 1ms;  // sequential sends degrade to per-packet parity
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*b, 7, config);

  auto plan = fault::Plan::parse("rudp.send@#2:drop");
  ASSERT_TRUE(plan.ok());
  fault::Injector::instance().arm(*plan);
  for (int i = 0; i < 3; ++i) {
    util::BytesWriter w;
    w.u32(static_cast<std::uint32_t>(i));
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(w.data().data(), w.data().size()))
                    .ok())
        << "message " << i;
  }
  fault::Injector::instance().disarm();

  for (int i = 0; i < 3; ++i) {
    auto msg = cb->recv(1s);
    ASSERT_TRUE(msg.has_value()) << "message " << i;
    util::BytesReader r(
        util::ByteSpan(msg->payload.data(), msg->payload.size()));
    EXPECT_EQ(*r.u32(), static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(ca->retransmissions(), 0u);  // parity repaired the drop
  EXPECT_GE(cb->fec_repairs(), 1u);
}

TEST_F(RudpFaultTest, FastRetransmitOnSackGapEvidence) {
  SimNet net(/*seed=*/37);
  auto a = net.add_node("a");
  auto b = net.add_node("b");

  RudpConfig config;
  config.retransmit_interval = 5s;  // only the gap detector can recover
  config.max_attempts = 5;
  config.fast_retx_dupacks = 2;
  config.window_packets = 8;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*b, 7, config);

  auto plan = fault::Plan::parse("rudp.send@#1:drop");
  ASSERT_TRUE(plan.ok());
  fault::Injector::instance().arm(*plan);

  util::Bytes first = {0xA0};
  std::thread blocked([&] {
    // Dropped on first transmission; completes only via fast retransmit.
    ASSERT_TRUE(ca->send(Endpoint{"b", 7},
                         util::ByteSpan(first.data(), first.size()))
                    .ok());
  });
  std::this_thread::sleep_for(20ms);  // pin the drop to the first packet

  // Two later packets arrive out of order at the receiver; each SACK names
  // the gap, and the second one crosses the dup-ack threshold.
  for (std::uint8_t v : {0xA1, 0xA2}) {
    const util::Bytes msg = {v};
    ASSERT_TRUE(
        ca->send(Endpoint{"b", 7}, util::ByteSpan(msg.data(), msg.size()))
            .ok());
  }
  blocked.join();
  fault::Injector::instance().disarm();

  EXPECT_EQ(ca->fast_retransmits(), 1u);
  EXPECT_EQ(ca->retransmissions(), 1u);  // the fast one; no timer firings
  EXPECT_GT(cb->sack_blocks_sent(), 0u);
  for (std::uint8_t v : {0xA0, 0xA1, 0xA2}) {  // in-order despite the drop
    auto msg = cb->recv(1s);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->payload.size(), 1u);
    EXPECT_EQ(msg->payload[0], v);
  }
}

TEST_F(RudpFaultTest, PacketDupRepairsSingleDrop) {
  SimNet net(/*seed=*/41);
  auto a = net.add_node("a");
  auto b = net.add_node("b");

  RudpConfig config;
  config.retransmit_interval = 5s;
  config.max_attempts = 3;
  config.repair = LossRepair::kPacketDup;
  auto ca = make_channel(*a, 7, config);
  auto cb = make_channel(*b, 7, config);

  // The fault site only sees the primary copy; the back-to-back duplicate
  // still goes out, so the send completes with zero retransmissions.
  auto plan = fault::Plan::parse("rudp.send@#1:drop");
  ASSERT_TRUE(plan.ok());
  fault::Injector::instance().arm(*plan);
  const util::Bytes msg = {0x7E};
  ASSERT_TRUE(
      ca->send(Endpoint{"b", 7}, util::ByteSpan(msg.data(), msg.size())).ok());
  fault::Injector::instance().disarm();

  EXPECT_EQ(ca->retransmissions(), 0u);
  auto got = cb->recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, msg);
}

}  // namespace
}  // namespace naplet::net
