#include "net/sim.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/clock.hpp"

namespace naplet::net {
namespace {

using namespace std::chrono_literals;

TEST(SimNet, ConnectAcceptRoundTrip) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto listener = b->listen(100);
  ASSERT_TRUE(listener.ok());
  auto client = a->connect(Endpoint{"b", 100}, 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());

  const util::Bytes msg = {5, 4, 3};
  ASSERT_TRUE(
      (*client)->write_all(util::ByteSpan(msg.data(), msg.size())).ok());
  std::uint8_t buf[8];
  auto n = (*server)->read_some(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(buf[2], 3);
}

TEST(SimNet, VectoredWriteArrivesContiguous) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto listener = b->listen(100);
  ASSERT_TRUE(listener.ok());
  auto client = a->connect(Endpoint{"b", 100}, 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());

  // Three discontiguous pieces, one gather-write: the receiver must see a
  // single contiguous byte sequence (and on Sim, a single chunk).
  const util::Bytes p1 = {1, 2}, p2 = {3}, p3 = {4, 5, 6};
  const util::ByteSpan parts[3] = {util::ByteSpan(p1.data(), p1.size()),
                                   util::ByteSpan(p2.data(), p2.size()),
                                   util::ByteSpan(p3.data(), p3.size())};
  ASSERT_TRUE((*client)
                  ->write_all_vectored(std::span<const util::ByteSpan>(parts))
                  .ok());
  std::uint8_t buf[16];
  auto n = (*server)->read_some(buf, sizeof buf);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 6u);
  for (std::uint8_t i = 0; i < 6; ++i) EXPECT_EQ(buf[i], i + 1);
}

TEST(SimNet, ConnectionRefusedWithoutListener) {
  SimNet net;
  auto a = net.add_node("a");
  net.add_node("b");
  auto client = a->connect(Endpoint{"b", 42}, 100ms);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), util::StatusCode::kUnavailable);
}

TEST(SimNet, PortCollisionRejected) {
  SimNet net;
  auto a = net.add_node("a");
  auto l1 = a->listen(5);
  ASSERT_TRUE(l1.ok());
  EXPECT_FALSE(a->listen(5).ok());
  // Releasing the port makes it reusable.
  (*l1)->close();
  EXPECT_TRUE(a->listen(5).ok());
}

TEST(SimNet, StreamLatencyDelaysDelivery) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.set_link("a", "b", LinkConfig{.latency = 50ms});
  auto listener = b->listen(1);
  ASSERT_TRUE(listener.ok());
  auto client = a->connect(Endpoint{"b", 1}, 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());

  const std::int64_t t0 = util::RealClock::instance().now_us();
  const util::Bytes msg = {1};
  ASSERT_TRUE(
      (*client)->write_all(util::ByteSpan(msg.data(), msg.size())).ok());
  std::uint8_t buf[1];
  auto n = (*server)->read_some(buf, 1);
  const std::int64_t elapsed = util::RealClock::instance().now_us() - t0;
  ASSERT_TRUE(n.ok());
  EXPECT_GE(elapsed, 45000);  // ~50 ms, minus scheduler slack
}

TEST(SimNet, DrainPendingOnlyReturnsArrivedBytes) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.set_link("a", "b", LinkConfig{.latency = 80ms});
  auto listener = b->listen(1);
  ASSERT_TRUE(listener.ok());
  auto client = a->connect(Endpoint{"b", 1}, 1s);
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(client.ok() && server.ok());

  const util::Bytes msg = {7};
  ASSERT_TRUE(
      (*client)->write_all(util::ByteSpan(msg.data(), msg.size())).ok());
  auto early = (*server)->drain_pending();
  ASSERT_TRUE(early.ok());
  EXPECT_TRUE(early->empty());  // still in flight
  std::this_thread::sleep_for(120ms);
  auto late = (*server)->drain_pending();
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(*late, msg);
}

TEST(SimNet, DatagramDeliveryAndLoss) {
  SimNet net(/*seed=*/1);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto da = a->bind_datagram(10);
  auto db = b->bind_datagram(10);
  ASSERT_TRUE(da.ok() && db.ok());

  // Lossless first.
  const util::Bytes msg = {1, 2};
  ASSERT_TRUE((*da)->send_to(Endpoint{"b", 10},
                             util::ByteSpan(msg.data(), msg.size()))
                  .ok());
  auto pkt = (*db)->recv_for(1s);
  ASSERT_TRUE(pkt.ok());
  EXPECT_EQ(pkt->data, msg);
  EXPECT_EQ(pkt->from.host, "a");

  // Total loss drops everything.
  net.set_link("a", "b", LinkConfig{.datagram_loss = 1.0});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*da)->send_to(Endpoint{"b", 10},
                               util::ByteSpan(msg.data(), msg.size()))
                    .ok());
  }
  EXPECT_FALSE((*db)->recv_for(50ms).ok());
  EXPECT_GE(net.datagrams_dropped(), 10u);
}

TEST(SimNet, PartialLossRateApproximatelyHonored) {
  SimNet net(/*seed=*/99);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.set_link("a", "b", LinkConfig{.datagram_loss = 0.5});
  auto da = a->bind_datagram(1);
  auto db = b->bind_datagram(1);
  ASSERT_TRUE(da.ok() && db.ok());

  constexpr int kSent = 400;
  const util::Bytes msg = {0};
  for (int i = 0; i < kSent; ++i) {
    ASSERT_TRUE((*da)->send_to(Endpoint{"b", 1},
                               util::ByteSpan(msg.data(), msg.size()))
                    .ok());
  }
  int received = 0;
  while ((*db)->recv_for(20ms).ok()) ++received;
  EXPECT_GT(received, kSent / 4);
  EXPECT_LT(received, 3 * kSent / 4);
}

TEST(SimNet, PartitionBlocksConnectAndDatagrams) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto listener = b->listen(1);
  auto db = b->bind_datagram(2);
  auto da = a->bind_datagram(2);
  ASSERT_TRUE(listener.ok() && db.ok() && da.ok());

  net.set_partition("a", "b", true);
  EXPECT_FALSE(a->connect(Endpoint{"b", 1}, 100ms).ok());
  const util::Bytes msg = {1};
  ASSERT_TRUE((*da)->send_to(Endpoint{"b", 2},
                             util::ByteSpan(msg.data(), msg.size()))
                  .ok());  // silent drop
  EXPECT_FALSE((*db)->recv_for(50ms).ok());

  net.set_partition("a", "b", false);
  EXPECT_TRUE(a->connect(Endpoint{"b", 1}, 1s).ok());
}

TEST(SimNet, SeverStreamsClosesEstablished) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto listener = b->listen(1);
  ASSERT_TRUE(listener.ok());
  auto client = a->connect(Endpoint{"b", 1}, 1s);
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(client.ok() && server.ok());

  net.sever_streams("a", "b");
  std::uint8_t buf[1];
  auto n = (*server)->read_some(buf, 1);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);  // closed
  EXPECT_FALSE((*client)->write_all(util::ByteSpan(buf, 1)).ok());
}

TEST(SimNet, SameNodeLoopback) {
  SimNet net;
  auto a = net.add_node("a");
  auto listener = a->listen(1);
  ASSERT_TRUE(listener.ok());
  auto client = a->connect(Endpoint{"a", 1}, 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.ok());
  const util::Bytes msg = {42};
  ASSERT_TRUE(
      (*client)->write_all(util::ByteSpan(msg.data(), msg.size())).ok());
  std::uint8_t buf[1];
  EXPECT_EQ(*(*server)->read_some(buf, 1), 1u);
}

TEST(SimNet, ListenerCloseCancelsAccept) {
  SimNet net;
  auto a = net.add_node("a");
  auto listener = a->listen(1);
  ASSERT_TRUE(listener.ok());
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    (*listener)->close();
  });
  auto conn = (*listener)->accept(std::nullopt);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), util::StatusCode::kCancelled);
  closer.join();
}

TEST(SimNet, BandwidthCapsThroughput) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  // 1 MB/s cap from a to b.
  net.set_link("a", "b", LinkConfig{.bytes_per_second = 1'000'000});
  auto listener = b->listen(1);
  ASSERT_TRUE(listener.ok());
  auto client = a->connect(Endpoint{"b", 1}, 1s);
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(client.ok() && server.ok());

  constexpr std::size_t kTotal = 300 * 1024;  // ~0.3 s at the cap
  const util::Bytes chunk(4096, 0x5A);
  const std::int64_t t0 = util::RealClock::instance().now_us();
  std::thread writer([&] {
    std::size_t sent = 0;
    while (sent < kTotal) {
      ASSERT_TRUE((*client)
                      ->write_all(util::ByteSpan(chunk.data(), chunk.size()))
                      .ok());
      sent += chunk.size();
    }
  });
  std::size_t received = 0;
  std::uint8_t buf[8192];
  while (received < kTotal) {
    auto n = (*server)->read_some(buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0u);
    received += *n;
  }
  writer.join();
  const double elapsed_s =
      static_cast<double>(util::RealClock::instance().now_us() - t0) / 1e6;
  const double mbps = static_cast<double>(received) / elapsed_s / 1e6;
  // Within a factor-ish of the 1 MB/s cap (scheduler slack allowed), and
  // definitely nowhere near unshaped in-memory speed.
  EXPECT_LT(mbps, 1.4);
  EXPECT_GT(mbps, 0.5);
}

TEST(SimNet, UnlimitedBandwidthByDefault) {
  SimNet net;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto listener = b->listen(1);
  ASSERT_TRUE(listener.ok());
  auto client = a->connect(Endpoint{"b", 1}, 1s);
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(client.ok() && server.ok());
  const util::Bytes big(1 << 20, 1);
  const std::int64_t t0 = util::RealClock::instance().now_us();
  ASSERT_TRUE((*client)->write_all(util::ByteSpan(big.data(), big.size())).ok());
  std::size_t received = 0;
  std::uint8_t buf[65536];
  while (received < big.size()) {
    auto n = (*server)->read_some(buf, sizeof buf);
    ASSERT_TRUE(n.ok());
    received += *n;
  }
  const double elapsed_s =
      static_cast<double>(util::RealClock::instance().now_us() - t0) / 1e6;
  EXPECT_LT(elapsed_s, 1.0);  // far faster than any modeled link
}

TEST(SimNet, AddNodeIdempotent) {
  SimNet net;
  auto a1 = net.add_node("a");
  auto a2 = net.add_node("a");
  EXPECT_EQ(a1.get(), a2.get());
}

}  // namespace
}  // namespace naplet::net
