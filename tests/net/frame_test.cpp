#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "net/sim.hpp"

namespace naplet::net {
namespace {

using namespace std::chrono_literals;

struct FramePair {
  SimNet net;
  StreamPtr client;
  StreamPtr server;

  FramePair() {
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    auto listener = b->listen(9000);
    EXPECT_TRUE(listener.ok());
    auto c = a->connect(Endpoint{"b", 9000}, 1s);
    EXPECT_TRUE(c.ok());
    client = std::move(*c);
    auto s = (*listener)->accept(1s);
    EXPECT_TRUE(s.ok());
    server = std::move(*s);
  }
};

TEST(Frame, RoundTrip) {
  FramePair pair;
  const util::Bytes payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(write_frame(*pair.client,
                          util::ByteSpan(payload.data(), payload.size()))
                  .ok());
  auto got = read_frame(*pair.server);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, payload);
}

TEST(Frame, EmptyPayload) {
  FramePair pair;
  ASSERT_TRUE(write_frame(*pair.client, {}).ok());
  auto got = read_frame(*pair.server);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(Frame, ManyFramesPreserveOrderAndBoundaries) {
  FramePair pair;
  for (std::uint32_t i = 0; i < 100; ++i) {
    util::BytesWriter w;
    w.u32(i);
    w.raw(std::string(i % 17, 'x').data(), i % 17);
    ASSERT_TRUE(write_frame(*pair.client,
                            util::ByteSpan(w.data().data(), w.data().size()))
                    .ok());
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    auto got = read_frame(*pair.server);
    ASSERT_TRUE(got.ok());
    util::BytesReader r(util::ByteSpan(got->data(), got->size()));
    EXPECT_EQ(*r.u32(), i);
    EXPECT_EQ(r.remaining(), i % 17);
  }
}

TEST(Frame, LargeFrame) {
  FramePair pair;
  util::Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::thread writer([&] {
    EXPECT_TRUE(
        write_frame(*pair.client, util::ByteSpan(big.data(), big.size())).ok());
  });
  auto got = read_frame(*pair.server);
  writer.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

TEST(Frame, OversizeRejectedAtWriter) {
  FramePair pair;
  util::Bytes big(kMaxFrameSize + 1);
  EXPECT_FALSE(
      write_frame(*pair.client, util::ByteSpan(big.data(), big.size())).ok());
}

TEST(Frame, CleanEofAtBoundaryIsUnavailable) {
  FramePair pair;
  pair.client->close();
  auto got = read_frame(*pair.server);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kUnavailable);
}

TEST(Frame, MidFrameEofIsIoError) {
  FramePair pair;
  // Write a length prefix promising 100 bytes, then only 3, then close.
  const std::uint8_t header[4] = {0, 0, 0, 100};
  ASSERT_TRUE(pair.client->write_all(util::ByteSpan(header, 4)).ok());
  const std::uint8_t partial[3] = {1, 2, 3};
  ASSERT_TRUE(pair.client->write_all(util::ByteSpan(partial, 3)).ok());
  pair.client->close();
  auto got = read_frame(*pair.server);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kIoError);
}

TEST(Frame, CorruptLengthPrefixRejected) {
  FramePair pair;
  const std::uint8_t header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(pair.client->write_all(util::ByteSpan(header, 4)).ok());
  auto got = read_frame(*pair.server);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), util::StatusCode::kProtocolError);
}

}  // namespace
}  // namespace naplet::net
