#include "swarm/location_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace naplet::swarm {
namespace {

using namespace std::chrono_literals;
using agent::AgentId;
using agent::LocationService;
using agent::NodeInfo;

NodeInfo node(const std::string& name) {
  NodeInfo info;
  info.server_name = name;
  info.control = {name, 1};
  info.redirector = {name, 2};
  info.migration = {name, 3};
  return info;
}

/// Counts every read that reaches the authority; the whole point of the
/// cache is keeping these numbers small.
class CountingLocationService : public LocationService {
 public:
  std::optional<NodeInfo> try_lookup(const AgentId& id) const override {
    ++reads_;
    return LocationService::try_lookup(id);
  }
  util::StatusOr<NodeInfo> lookup(const AgentId& id,
                                  util::Duration timeout) const override {
    ++reads_;
    return LocationService::lookup(id, timeout);
  }
  util::StatusOr<NodeInfo> lookup_server(
      const std::string& server_name) const override {
    ++reads_;
    return LocationService::lookup_server(server_name);
  }

  [[nodiscard]] std::uint64_t reads() const { return reads_; }

 private:
  mutable std::atomic<std::uint64_t> reads_{0};
};

class LocationCacheTest : public ::testing::Test {
 protected:
  LocationCacheTest() { config_.now_us = [this] { return now_us_; }; }

  CachingLocationService make_cache() {
    return CachingLocationService(backing_, config_, &registry_);
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const obs::Snapshot snap = registry_.snapshot();
    const obs::CounterSnapshot* c = snap.counter(name);
    return c == nullptr ? 0 : c->value;
  }

  std::int64_t now_us_ = 1'000'000;
  CountingLocationService backing_;
  LocationCacheConfig config_;
  obs::Registry registry_;
};

TEST_F(LocationCacheTest, HitWithinLeaseSkipsBacking) {
  backing_.register_agent(AgentId("a"), node("host-1"));
  CachingLocationService cache = make_cache();

  auto first = cache.try_lookup(AgentId("a"));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->server_name, "host-1");
  EXPECT_EQ(backing_.reads(), 1u);

  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(cache.try_lookup(AgentId("a")).has_value());
  }
  EXPECT_EQ(backing_.reads(), 1u);  // every repeat served from the lease
  EXPECT_EQ(counter("loc_cache_hits"), 10u);
  EXPECT_EQ(counter("loc_cache_misses"), 1u);
}

TEST_F(LocationCacheTest, LeaseExpiryForcesRefetch) {
  backing_.register_agent(AgentId("a"), node("host-1"));
  config_.positive_ttl = 500ms;
  CachingLocationService cache = make_cache();

  ASSERT_TRUE(cache.try_lookup(AgentId("a")).has_value());
  // Remote churn the cache can't see: the agent moves via another process.
  backing_.register_agent(AgentId("a"), node("host-2"));
  // Within the lease the stale answer is served (bounded staleness)...
  EXPECT_EQ(cache.try_lookup(AgentId("a"))->server_name, "host-1");
  // ...and past it the entry is re-fetched, never served beyond its lease.
  now_us_ += 500'001;
  EXPECT_EQ(cache.try_lookup(AgentId("a"))->server_name, "host-2");
  EXPECT_EQ(backing_.reads(), 2u);
  EXPECT_EQ(counter("loc_cache_stale"), 1u);
}

TEST_F(LocationCacheTest, NegativeCacheAbsorbsRepeatedMisses) {
  config_.negative_ttl = 50ms;
  CachingLocationService cache = make_cache();

  EXPECT_FALSE(cache.try_lookup(AgentId("ghost")).has_value());
  EXPECT_EQ(backing_.reads(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(cache.try_lookup(AgentId("ghost")).has_value());
  }
  EXPECT_EQ(backing_.reads(), 1u);  // "known absent" until the TTL
  EXPECT_EQ(counter("loc_cache_negative_hits"), 5u);

  now_us_ += 50'001;
  backing_.register_agent(AgentId("ghost"), node("host-9"));
  auto found = cache.try_lookup(AgentId("ghost"));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->server_name, "host-9");
}

TEST_F(LocationCacheTest, BlockingLookupBypassesNegativeCache) {
  CachingLocationService cache = make_cache();
  EXPECT_FALSE(cache.try_lookup(AgentId("late")).has_value());  // negative

  std::thread settler([&] {
    std::this_thread::sleep_for(30ms);
    backing_.register_agent(AgentId("late"), node("host-3"));
  });
  // A blocking lookup waits for the agent to APPEAR; a cached "absent"
  // from a moment ago must not short-circuit it.
  auto found = cache.lookup(AgentId("late"), 5s);
  settler.join();
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->server_name, "host-3");
}

TEST_F(LocationCacheTest, OwnWritesInvalidateImmediately) {
  backing_.register_agent(AgentId("a"), node("host-1"));
  CachingLocationService cache = make_cache();
  ASSERT_EQ(cache.try_lookup(AgentId("a"))->server_name, "host-1");

  // A write THROUGH the cache must never be masked by its own cache,
  // lease or not.
  cache.register_agent(AgentId("a"), node("host-2"));
  EXPECT_EQ(cache.try_lookup(AgentId("a"))->server_name, "host-2");
  EXPECT_TRUE(backing_.known(AgentId("a")));

  cache.begin_migration(AgentId("a"));
  EXPECT_FALSE(cache.try_lookup(AgentId("a")).has_value());
  EXPECT_TRUE(cache.known(AgentId("a")));  // in transit: known, not settled

  cache.end_migration(AgentId("a"));
  EXPECT_EQ(cache.try_lookup(AgentId("a"))->server_name, "host-2");

  cache.deregister_agent(AgentId("a"));
  EXPECT_FALSE(cache.try_lookup(AgentId("a")).has_value());
  EXPECT_FALSE(cache.known(AgentId("a")));
}

TEST_F(LocationCacheTest, ServerLookupsAreCachedToo) {
  backing_.register_server(node("alpha"));
  CachingLocationService cache = make_cache();

  ASSERT_TRUE(cache.lookup_server("alpha").ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(cache.lookup_server("alpha").ok());
  EXPECT_EQ(backing_.reads(), 1u);

  // Negative server entries too.
  EXPECT_FALSE(cache.lookup_server("missing").ok());
  EXPECT_FALSE(cache.lookup_server("missing").ok());
  EXPECT_EQ(backing_.reads(), 2u);

  // Write-through invalidation.
  cache.register_server(node("missing"));
  now_us_ += 50'001;  // step past any lingering negative lease
  EXPECT_TRUE(cache.lookup_server("missing").ok());

  cache.deregister_server("alpha");
  now_us_ += 500'001;
  EXPECT_FALSE(cache.lookup_server("alpha").ok());
}

TEST_F(LocationCacheTest, FlushDropsEveryLease) {
  backing_.register_agent(AgentId("a"), node("host-1"));
  CachingLocationService cache = make_cache();
  ASSERT_TRUE(cache.try_lookup(AgentId("a")).has_value());
  EXPECT_EQ(backing_.reads(), 1u);

  cache.flush();
  ASSERT_TRUE(cache.try_lookup(AgentId("a")).has_value());
  EXPECT_EQ(backing_.reads(), 2u);  // re-fetched after the flush
}

TEST_F(LocationCacheTest, SizeAndKnownConsultTheAuthority) {
  backing_.register_agent(AgentId("a"), node("host-1"));
  CachingLocationService cache = make_cache();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.known(AgentId("a")));
  backing_.register_agent(AgentId("b"), node("host-1"));
  EXPECT_EQ(cache.size(), 2u);  // size is authoritative, never cached
}

TEST_F(LocationCacheTest, SingleFlightCollapsesConcurrentMisses) {
  // A slow authority: the first fetch parks followers on the leader.
  class SlowBacking : public CountingLocationService {
   public:
    std::optional<NodeInfo> try_lookup(const AgentId& id) const override {
      std::this_thread::sleep_for(50ms);
      return CountingLocationService::try_lookup(id);
    }
  };
  SlowBacking slow;
  slow.register_agent(AgentId("hot"), node("host-1"));
  // Real clock here: the fake one isn't thread-safe.
  CachingLocationService cache(slow, LocationCacheConfig{}, &registry_);

  constexpr int kThreads = 8;
  std::atomic<int> found{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      if (cache.try_lookup(AgentId("hot")).has_value()) ++found;
    });
  }
  for (auto& r : readers) r.join();

  EXPECT_EQ(found.load(), kThreads);
  // One backing fetch total: everyone else coalesced behind the leader.
  EXPECT_EQ(slow.reads(), 1u);
  EXPECT_EQ(counter("loc_cache_misses"), 1u);
  EXPECT_GE(counter("loc_cache_coalesced"), 1u);
}

}  // namespace
}  // namespace naplet::swarm
