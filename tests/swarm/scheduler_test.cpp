#include "swarm/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "agent/itinerary.hpp"
#include "fault/fault.hpp"
#include "swarm/batch.hpp"

namespace naplet::swarm {
namespace {

using agent::AgentId;

AgentPlan plan_to(const std::string& name, const std::string& dest) {
  return AgentPlan{AgentId(name), dest};
}

/// Completes every stage synchronously; per-(stage, destination) failure
/// budgets make a stage fail its first N calls.
class InlineExecutor : public StageExecutor {
 public:
  void serialize(const MigrationBatch& batch, Done done) override {
    finish("serialize", batch, std::move(done));
  }
  void transfer(const MigrationBatch& batch, Done done) override {
    finish("transfer", batch, std::move(done));
  }
  void reactivate(const MigrationBatch& batch, Done done) override {
    finish("reactivate", batch, std::move(done));
  }

  void fail_next(const std::string& stage, const std::string& dest,
                 int times) {
    failures_[{stage, dest}] = times;
  }

  [[nodiscard]] int calls(const std::string& stage) const {
    auto it = calls_.find(stage);
    return it == calls_.end() ? 0 : it->second;
  }
  [[nodiscard]] const std::vector<std::string>& reactivated_dests() const {
    return reactivated_dests_;
  }

 private:
  void finish(const std::string& stage, const MigrationBatch& batch,
              Done done) {
    ++calls_[stage];
    if (stage == "reactivate") reactivated_dests_.push_back(batch.destination);
    auto it = failures_.find({stage, batch.destination});
    if (it != failures_.end() && it->second > 0) {
      --it->second;
      done(util::Unavailable("scripted " + stage + " failure"));
      return;
    }
    done(util::OkStatus());
  }

  std::map<std::pair<std::string, std::string>, int> failures_;
  std::map<std::string, int> calls_;
  std::vector<std::string> reactivated_dests_;
};

/// Parks every Done for the test to release one at a time — makes the
/// stage capacity limits directly observable.
class ManualExecutor : public StageExecutor {
 public:
  struct Call {
    MigrationBatch batch;
    Done done;
  };

  void serialize(const MigrationBatch& batch, Done done) override {
    serialize_calls.push_back(Call{batch, std::move(done)});
  }
  void transfer(const MigrationBatch& batch, Done done) override {
    transfer_calls.push_back(Call{batch, std::move(done)});
  }
  void reactivate(const MigrationBatch& batch, Done done) override {
    reactivate_calls.push_back(Call{batch, std::move(done)});
  }

  /// Complete the next parked call of `calls`; false when none is parked.
  /// The completion re-enters the scheduler, which may synchronously park
  /// more calls — index cursors (not iterators) keep that safe.
  bool release(std::vector<Call>& calls, std::size_t& cursor) {
    if (cursor >= calls.size()) return false;
    Done done = std::move(calls[cursor].done);
    ++cursor;
    done(util::OkStatus());
    return true;
  }

  std::vector<Call> serialize_calls;
  std::vector<Call> transfer_calls;
  std::vector<Call> reactivate_calls;
};

TEST(MigrationSchedulerPlan, GroupsByDestinationAndSplits) {
  InlineExecutor exec;
  SchedulerConfig config;
  config.max_batch = 2;
  MigrationScheduler sched(config, exec);

  const std::vector<AgentPlan> plans = {
      plan_to("a1", "east"), plan_to("b1", "west"), plan_to("a2", "east"),
      plan_to("a3", "east"), plan_to("b2", "west"),
  };
  const std::vector<MigrationBatch> batches = sched.plan(plans);

  ASSERT_EQ(batches.size(), 3u);
  // Destinations appear in first-appearance order; east (3 agents) splits
  // into 2 + 1, plan order preserved within each.
  EXPECT_EQ(batches[0].destination, "east");
  ASSERT_EQ(batches[0].agents.size(), 2u);
  EXPECT_EQ(batches[0].agents[0].name(), "a1");
  EXPECT_EQ(batches[0].agents[1].name(), "a2");
  EXPECT_EQ(batches[1].destination, "east");
  ASSERT_EQ(batches[1].agents.size(), 1u);
  EXPECT_EQ(batches[1].agents[0].name(), "a3");
  EXPECT_EQ(batches[2].destination, "west");
  ASSERT_EQ(batches[2].agents.size(), 2u);
  // Batch ids are dense from 1.
  EXPECT_EQ(batches[0].batch_id, 1u);
  EXPECT_EQ(batches[2].batch_id, 3u);
}

TEST(MigrationSchedulerPlan, FromItinerariesSkipsExhausted) {
  std::vector<std::pair<AgentId, agent::Itinerary>> fleet;
  fleet.emplace_back(AgentId("goer"), agent::Itinerary({"north"}));
  fleet.emplace_back(AgentId("stayer"), agent::Itinerary());  // exhausted
  fleet.emplace_back(AgentId("looper"),
                     agent::Itinerary({"north", "south"}, /*loop=*/true));

  const std::vector<AgentPlan> plans = plans_of(fleet);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].id.name(), "goer");
  EXPECT_EQ(plans[0].destination, "north");
  EXPECT_EQ(plans[1].id.name(), "looper");
  EXPECT_EQ(plans[1].destination, "north");
}

TEST(MigrationScheduler, PipelineCompletesWithInlineExecutor) {
  InlineExecutor exec;
  obs::Registry registry;
  SchedulerConfig config;
  config.max_batch = 3;
  MigrationScheduler sched(config, exec, &registry);

  std::vector<AgentPlan> plans;
  for (int i = 0; i < 7; ++i) {
    plans.push_back(plan_to("e" + std::to_string(i), "east"));
  }
  plans.push_back(plan_to("w0", "west"));

  bool done_fired = false;
  sched.run(plans, [&] { done_fired = true; });

  // Inline executor: everything settles before run() returns.
  EXPECT_TRUE(done_fired);
  ASSERT_TRUE(sched.wait(std::chrono::seconds(0)));
  const SchedulerReport report = sched.report();
  EXPECT_EQ(report.agents, 8u);
  EXPECT_EQ(report.migrated, 8u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.batches, 4u);  // east 3+3+1, west 1
  // Coalesced: one redirector exchange per batch, not per agent.
  EXPECT_EQ(report.handoff_exchanges, 4u);
  EXPECT_EQ(exec.calls("serialize"), 4);
  EXPECT_EQ(exec.calls("transfer"), 4);
  EXPECT_EQ(exec.calls("reactivate"), 4);

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("swarm_agents_migrated")->value, 8u);
  EXPECT_EQ(snap.counter("swarm_handoff_exchanges")->value, 4u);
  EXPECT_EQ(snap.histogram("swarm_batch_fill")->count, 4u);
}

TEST(MigrationScheduler, PerAgentExchangesWithoutCoalescing) {
  InlineExecutor exec;
  SchedulerConfig config;
  config.max_batch = 4;
  config.coalesce_handoffs = false;
  MigrationScheduler sched(config, exec);

  std::vector<AgentPlan> plans;
  for (int i = 0; i < 4; ++i) {
    plans.push_back(plan_to("a" + std::to_string(i), "east"));
  }
  sched.run(plans);
  EXPECT_EQ(sched.report().handoff_exchanges, 4u);  // one per agent
}

TEST(MigrationScheduler, RetriesFailedStageThenSucceeds) {
  InlineExecutor exec;
  exec.fail_next("transfer", "east", 1);
  SchedulerConfig config;
  config.max_attempts = 3;
  MigrationScheduler sched(config, exec);

  sched.run({plan_to("a", "east"), plan_to("b", "east")});
  const SchedulerReport report = sched.report();
  EXPECT_EQ(report.migrated, 2u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(exec.calls("transfer"), 2);  // failed once, retried once
  EXPECT_EQ(exec.calls("serialize"), 1);  // retry re-enters at the SAME stage
}

TEST(MigrationScheduler, FailsBatchAfterMaxAttempts) {
  InlineExecutor exec;
  exec.fail_next("serialize", "doomed", 99);
  SchedulerConfig config;
  config.max_attempts = 3;
  MigrationScheduler sched(config, exec);

  sched.run({plan_to("a", "doomed"), plan_to("b", "doomed"),
             plan_to("c", "fine")});
  const SchedulerReport report = sched.report();
  EXPECT_EQ(report.failed, 2u);
  EXPECT_EQ(report.migrated, 1u);
  EXPECT_EQ(exec.calls("serialize"), 4);  // 3 attempts doomed + 1 fine
}

class MigrationSchedulerFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::instance().disarm(); }
};

TEST_F(MigrationSchedulerFaultTest, AdmissionRefusalSplitsToFallback) {
  fault::Plan plan;
  fault::Rule rule;
  rule.site = "swarm.batch.admit";
  rule.hit = 1;
  rule.count = 1;
  rule.action = fault::Action::kError;
  plan.rules.push_back(rule);
  fault::Injector::instance().arm(plan);

  InlineExecutor exec;
  SchedulerConfig config;
  config.max_batch = 4;
  config.fallback_destination = "spare";
  MigrationScheduler sched(config, exec);

  sched.run({plan_to("a", "busy"), plan_to("b", "busy"),
             plan_to("c", "busy"), plan_to("d", "busy")});
  const SchedulerReport report = sched.report();
  // The refused 4-agent batch sheds its rear half to the fallback; the
  // front half retries the original destination. Nobody is lost.
  EXPECT_EQ(report.migrated, 4u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.rerouted, 2u);
  EXPECT_EQ(report.batches, 2u);
  bool saw_spare = false;
  for (const std::string& dest : exec.reactivated_dests()) {
    if (dest == "spare") saw_spare = true;
  }
  EXPECT_TRUE(saw_spare);
}

TEST_F(MigrationSchedulerFaultTest, RepeatedRefusalWithoutFallbackFails) {
  fault::Plan plan;
  fault::Rule rule;
  rule.site = "swarm.batch.admit";
  rule.hit = 1;
  rule.count = 99;  // every admission refused
  rule.action = fault::Action::kError;
  plan.rules.push_back(rule);
  fault::Injector::instance().arm(plan);

  InlineExecutor exec;
  SchedulerConfig config;
  config.max_attempts = 3;
  MigrationScheduler sched(config, exec);

  sched.run({plan_to("a", "busy"), plan_to("b", "busy")});
  const SchedulerReport report = sched.report();
  EXPECT_EQ(report.failed, 2u);
  EXPECT_EQ(report.migrated, 0u);
  EXPECT_EQ(report.rerouted, 0u);
}

TEST(MigrationScheduler, StageSlotsBoundInFlightWork) {
  ManualExecutor exec;
  SchedulerConfig config;
  config.max_batch = 1;  // 6 agents -> 6 single-agent batches
  config.serialize_slots = 2;
  config.transfer_slots = 1;
  config.per_destination_admission = 1;
  MigrationScheduler sched(config, exec);

  std::vector<AgentPlan> plans;
  for (int i = 0; i < 6; ++i) {
    plans.push_back(plan_to("a" + std::to_string(i), "east"));
  }
  sched.run(plans);

  // Only serialize_slots batches are in the executor; the rest queue.
  EXPECT_EQ(exec.serialize_calls.size(), 2u);
  EXPECT_TRUE(exec.transfer_calls.empty());

  std::size_t s_cursor = 0;
  std::size_t t_cursor = 0;
  std::size_t r_cursor = 0;
  ASSERT_TRUE(exec.release(exec.serialize_calls, s_cursor));
  ASSERT_TRUE(exec.release(exec.serialize_calls, s_cursor));
  // Completions backfill serialize up to its slots and feed transfer,
  // which admits exactly one batch (transfer_slots = 1).
  EXPECT_EQ(exec.serialize_calls.size(), 4u);
  EXPECT_EQ(exec.transfer_calls.size(), 1u);

  while (s_cursor < exec.serialize_calls.size()) {
    ASSERT_TRUE(exec.release(exec.serialize_calls, s_cursor));
  }
  EXPECT_EQ(exec.serialize_calls.size(), 6u);
  // One destination, admission 1: at most one reactivate outstanding.
  while (sched.report().migrated < 6u) {
    if (exec.release(exec.reactivate_calls, r_cursor)) {
      EXPECT_LE(exec.reactivate_calls.size() - r_cursor, 1u);
      continue;
    }
    ASSERT_TRUE(exec.release(exec.transfer_calls, t_cursor))
        << "pipeline stalled with " << sched.report().migrated
        << " agents migrated";
    EXPECT_LE(exec.transfer_calls.size() - t_cursor, 1u);
  }
  ASSERT_TRUE(sched.wait(std::chrono::seconds(0)));
  EXPECT_EQ(sched.report().migrated, 6u);
}

TEST(MigrationScheduler, WaitTimesOutWhileParked) {
  ManualExecutor exec;
  MigrationScheduler sched(SchedulerConfig{}, exec);
  sched.run({plan_to("a", "east")});
  EXPECT_FALSE(sched.wait(std::chrono::milliseconds(20)));

  std::size_t s = 0;
  std::size_t t = 0;
  std::size_t r = 0;
  ASSERT_TRUE(exec.release(exec.serialize_calls, s));
  ASSERT_TRUE(exec.release(exec.transfer_calls, t));
  ASSERT_TRUE(exec.release(exec.reactivate_calls, r));
  EXPECT_TRUE(sched.wait(std::chrono::seconds(1)));
}

TEST(MigrationScheduler, EmptyPlanFinishesImmediately) {
  InlineExecutor exec;
  MigrationScheduler sched(SchedulerConfig{}, exec);
  bool done_fired = false;
  sched.run({}, [&] { done_fired = true; });
  EXPECT_TRUE(done_fired);
  EXPECT_TRUE(sched.wait(std::chrono::seconds(0)));
  EXPECT_EQ(sched.report().agents, 0u);
}

}  // namespace
}  // namespace naplet::swarm
