// The BatchHandoffMsg wire exchange: codec round trips plus the
// redirector's serve_batch path (one frame in, one disposition frame out,
// lease fence applied per entry).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "core/redirector.hpp"
#include "core/wire.hpp"
#include "net/frame.hpp"
#include "net/sim.hpp"

namespace naplet::nsock {
namespace {

using namespace std::chrono_literals;

HandoffMsg resume_entry(std::uint64_t conn_id, const std::string& agent) {
  HandoffMsg msg;
  msg.type = HandoffType::kResume;
  msg.conn_id = conn_id;
  msg.epoch = 7;
  msg.trace_id = 42;
  msg.verifier = 0xfeedbeef;
  msg.sent_seq = 10;
  msg.recv_seq = 9;
  msg.agent = agent;
  msg.node.server_name = "dest-host";
  msg.node.control = {"dest-host", 1};
  msg.node.redirector = {"dest-host", 2};
  msg.node.migration = {"dest-host", 3};
  return msg;
}

TEST(BatchHandoffWire, RoundTrip) {
  BatchHandoffMsg batch;
  batch.trace_id = 99;
  batch.entries.push_back(resume_entry(1, "alice"));
  batch.entries.push_back(resume_entry(2, "bob"));
  HandoffMsg attach;
  attach.type = HandoffType::kAttach;
  attach.conn_id = 3;
  attach.agent = "carol";
  batch.entries.push_back(attach);

  const util::Bytes encoded = batch.encode();
  ASSERT_FALSE(encoded.empty());
  EXPECT_EQ(encoded[0], kBatchHandoffMagic);

  auto decoded = BatchHandoffMsg::decode(
      util::ByteSpan(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->trace_id, 99u);
  ASSERT_EQ(decoded->entries.size(), 3u);
  EXPECT_EQ(decoded->entries[0].type, HandoffType::kResume);
  EXPECT_EQ(decoded->entries[0].conn_id, 1u);
  EXPECT_EQ(decoded->entries[0].agent, "alice");
  EXPECT_EQ(decoded->entries[0].verifier, 0xfeedbeefu);
  EXPECT_EQ(decoded->entries[0].node.server_name, "dest-host");
  EXPECT_EQ(decoded->entries[1].sent_seq, 10u);
  EXPECT_EQ(decoded->entries[2].type, HandoffType::kAttach);
  EXPECT_EQ(decoded->entries[2].agent, "carol");
}

TEST(BatchHandoffWire, EmptyBatchRoundTrips) {
  BatchHandoffMsg batch;
  const util::Bytes encoded = batch.encode();
  auto decoded = BatchHandoffMsg::decode(
      util::ByteSpan(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->entries.empty());
}

TEST(BatchHandoffWire, RejectsBadMagic) {
  BatchHandoffMsg batch;
  batch.entries.push_back(resume_entry(1, "a"));
  util::Bytes encoded = batch.encode();
  encoded[0] = 0x01;  // inside the HandoffType range, not the batch magic
  auto decoded = BatchHandoffMsg::decode(
      util::ByteSpan(encoded.data(), encoded.size()));
  EXPECT_FALSE(decoded.ok());
  // And single-frame decode rejects batch frames symmetrically.
  const util::Bytes fresh = batch.encode();
  EXPECT_FALSE(
      HandoffMsg::decode(util::ByteSpan(fresh.data(), fresh.size())).ok());
}

TEST(BatchHandoffWire, RejectsTrailingBytes) {
  BatchHandoffMsg batch;
  batch.entries.push_back(resume_entry(1, "a"));
  util::Bytes encoded = batch.encode();
  encoded.push_back(0x00);
  EXPECT_FALSE(
      BatchHandoffMsg::decode(util::ByteSpan(encoded.data(), encoded.size()))
          .ok());
}

TEST(BatchHandoffWire, RejectsTruncation) {
  BatchHandoffMsg batch;
  batch.entries.push_back(resume_entry(1, "a"));
  batch.entries.push_back(resume_entry(2, "b"));
  const util::Bytes encoded = batch.encode();
  for (std::size_t cut = 1; cut < encoded.size(); cut += 7) {
    EXPECT_FALSE(
        BatchHandoffMsg::decode(util::ByteSpan(encoded.data(), cut)).ok())
        << "accepted a prefix of " << cut << " bytes";
  }
}

TEST(BatchHandoffWire, ReplyRoundTripAndTrailingReject) {
  BatchHandoffReply reply;
  reply.entries.push_back({true, ""});
  reply.entries.push_back({false, "no live lease for conn 9"});

  util::Bytes encoded = reply.encode();
  auto decoded = BatchHandoffReply::decode(
      util::ByteSpan(encoded.data(), encoded.size()));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_TRUE(decoded->entries[0].ok);
  EXPECT_FALSE(decoded->entries[1].ok);
  EXPECT_EQ(decoded->entries[1].reason, "no live lease for conn 9");

  encoded.push_back(0xAA);
  EXPECT_FALSE(
      BatchHandoffReply::decode(util::ByteSpan(encoded.data(), encoded.size()))
          .ok());
}

/// Drives a live redirector over the simulated fabric and returns the
/// decoded disposition frame.
class RedirectorBatchTest : public ::testing::Test {
 protected:
  RedirectorBatchTest()
      : server_node_(world_.add_node("server")),
        client_node_(world_.add_node("client")) {}

  void start(LeaseConfig leases = {}) {
    redirector_ = std::make_unique<Redirector>(
        *server_node_, 0,
        [this](std::shared_ptr<net::Stream> stream, HandoffMsg) {
          per_conn_handoffs_.fetch_add(1);
          stream->close();
        },
        leases);
    ASSERT_TRUE(redirector_->start().ok());
  }

  ~RedirectorBatchTest() override {
    if (redirector_) redirector_->stop();
  }

  BatchHandoffReply exchange(const BatchHandoffMsg& batch) {
    auto stream = client_node_->connect(redirector_->endpoint(), 2s);
    EXPECT_TRUE(stream.ok());
    const util::Bytes encoded = batch.encode();
    EXPECT_TRUE(net::write_frame(**stream,
                                 util::ByteSpan(encoded.data(),
                                                encoded.size()))
                    .ok());
    auto frame = net::read_frame(**stream);
    EXPECT_TRUE(frame.ok());
    auto reply = BatchHandoffReply::decode(
        util::ByteSpan(frame->data(), frame->size()));
    EXPECT_TRUE(reply.ok());
    return reply.ok() ? *reply : BatchHandoffReply{};
  }

  net::SimNet world_;
  std::shared_ptr<net::SimNode> server_node_;
  std::shared_ptr<net::SimNode> client_node_;
  std::unique_ptr<Redirector> redirector_;
  std::atomic<int> per_conn_handoffs_{0};
};

TEST_F(RedirectorBatchTest, OneExchangeAnswersEveryEntry) {
  start();
  BatchHandoffMsg batch;
  batch.trace_id = 5;
  for (std::uint64_t c = 1; c <= 4; ++c) {
    batch.entries.push_back(resume_entry(c, "agent" + std::to_string(c)));
  }

  const BatchHandoffReply reply = exchange(batch);
  ASSERT_EQ(reply.entries.size(), 4u);
  for (const auto& d : reply.entries) {
    EXPECT_TRUE(d.ok) << d.reason;
  }
  // The whole batch cost ONE wire exchange and never touched the
  // per-connection handoff path.
  EXPECT_EQ(redirector_->batch_exchanges(), 1u);
  EXPECT_EQ(per_conn_handoffs_.load(), 0);
  EXPECT_EQ(redirector_->bad_handoffs(), 0u);
}

TEST_F(RedirectorBatchTest, LeaseFenceFailsOnlyTheDeadEntries) {
  LeaseConfig leases;
  leases.enabled = true;
  leases.ttl = 3s;
  start(leases);
  redirector_->register_lease(1);  // conn 1 is owned by a live controller

  BatchHandoffMsg batch;
  batch.entries.push_back(resume_entry(1, "live"));
  batch.entries.push_back(resume_entry(2, "orphan"));  // no lease
  HandoffMsg attach;
  attach.type = HandoffType::kAttach;  // ATTACH is never lease-fenced
  attach.conn_id = 3;
  attach.agent = "newcomer";
  batch.entries.push_back(attach);

  const BatchHandoffReply reply = exchange(batch);
  ASSERT_EQ(reply.entries.size(), 3u);
  EXPECT_TRUE(reply.entries[0].ok);
  EXPECT_FALSE(reply.entries[1].ok);  // fenced, without poisoning the batch
  EXPECT_NE(reply.entries[1].reason.find("lease"), std::string::npos);
  EXPECT_TRUE(reply.entries[2].ok);
  EXPECT_EQ(redirector_->handoffs_fenced(), 1u);
  EXPECT_EQ(redirector_->batch_exchanges(), 1u);
}

TEST_F(RedirectorBatchTest, BatchHandlerRefinesDispositions) {
  redirector_ = std::make_unique<Redirector>(
      *server_node_, 0,
      [](std::shared_ptr<net::Stream> stream, HandoffMsg) {
        stream->close();
      });
  redirector_->set_batch_handler(
      [](const BatchHandoffMsg& batch, BatchHandoffReply& reply) {
        // The controller refuses admission for one agent; the redirector
        // answers the refined dispositions as-is.
        ASSERT_EQ(batch.entries.size(), reply.entries.size());
        reply.entries[1].ok = false;
        reply.entries[1].reason = "destination at capacity";
      });
  ASSERT_TRUE(redirector_->start().ok());

  BatchHandoffMsg batch;
  batch.entries.push_back(resume_entry(1, "a"));
  batch.entries.push_back(resume_entry(2, "b"));
  const BatchHandoffReply reply = exchange(batch);
  ASSERT_EQ(reply.entries.size(), 2u);
  EXPECT_TRUE(reply.entries[0].ok);
  EXPECT_FALSE(reply.entries[1].ok);
  EXPECT_EQ(reply.entries[1].reason, "destination at capacity");
}

TEST_F(RedirectorBatchTest, MalformedBatchCountsAsBadHandoff) {
  start();
  auto stream = client_node_->connect(redirector_->endpoint(), 2s);
  ASSERT_TRUE(stream.ok());
  // Batch magic followed by garbage: routed to serve_batch's decoder and
  // rejected without a reply.
  const util::Bytes junk = {kBatchHandoffMagic, 0xde, 0xad};
  ASSERT_TRUE(
      net::write_frame(**stream, util::ByteSpan(junk.data(), junk.size()))
          .ok());
  auto frame = net::read_frame(**stream);
  EXPECT_FALSE(frame.ok());  // stream closed, no disposition frame
  EXPECT_EQ(redirector_->batch_exchanges(), 0u);
  EXPECT_EQ(redirector_->bad_handoffs(), 1u);
}

}  // namespace
}  // namespace naplet::nsock
