#include "swarm/drain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace naplet::swarm {
namespace {

using agent::AgentId;

std::vector<AgentId> fleet_of(int n, const std::string& prefix = "agent") {
  std::vector<AgentId> fleet;
  for (int i = 0; i < n; ++i) fleet.emplace_back(prefix + std::to_string(i));
  return fleet;
}

/// A minimal deterministic event loop: the drain's injected clock and
/// defer() both run off it, so backoff timing is exact.
class FakeTimeline {
 public:
  [[nodiscard]] double now() const { return now_ms_; }

  void defer(double delay_ms, std::function<void()> fn) {
    timers_.emplace_back(now_ms_ + delay_ms, std::move(fn));
  }

  /// Run timers in due order until none remain. Returns the fire times.
  std::vector<double> run() {
    std::vector<double> fired;
    while (!timers_.empty()) {
      auto due = std::min_element(
          timers_.begin(), timers_.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      auto [at, fn] = std::move(*due);
      timers_.erase(due);
      now_ms_ = std::max(now_ms_, at);
      fired.push_back(at);
      fn();
    }
    return fired;
  }

  void advance(double dt_ms) { now_ms_ += dt_ms; }

 private:
  double now_ms_ = 0.0;
  std::vector<std::pair<double, std::function<void()>>> timers_;
};

TEST(DrainCoordinator, DrainsEveryAgentInWaves) {
  obs::Registry registry;
  DrainConfig config;
  config.max_wave = 3;
  int suspends = 0;
  DrainCoordinator drain(
      config,
      [&](const AgentId&, std::function<void(util::Status)> done) {
        ++suspends;
        done(util::OkStatus());
      },
      &registry);

  bool done_fired = false;
  drain.drain(fleet_of(10), [&] { done_fired = true; });
  EXPECT_TRUE(done_fired);  // inline suspends settle before drain() returns
  ASSERT_TRUE(drain.wait(std::chrono::seconds(0)));

  const DrainReport report = drain.report();
  EXPECT_EQ(report.agents, 10u);
  EXPECT_EQ(report.suspended, 10u);
  EXPECT_EQ(report.stragglers, 0u);
  EXPECT_EQ(suspends, 10);
  EXPECT_GE(report.waves, 4u);  // max_wave 3 -> at least ceil(10/3) waves
  EXPECT_TRUE(report.unresolved.empty());

  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("swarm_drain_suspended")->value, 10u);
  EXPECT_EQ(snap.histogram("swarm_drain_wave_width")->count, report.waves);
}

TEST(DrainCoordinator, RetriesWithExponentialBackoff) {
  FakeTimeline timeline;
  DrainConfig config;
  config.max_retries = 3;
  config.backoff_base_ms = 10.0;
  config.backoff_cap_ms = 200.0;
  config.now_ms = [&] { return timeline.now(); };
  config.defer = [&](double delay_ms, std::function<void()> fn) {
    timeline.defer(delay_ms, std::move(fn));
  };

  int flaky_attempts = 0;
  DrainCoordinator drain(
      config, [&](const AgentId& id, std::function<void(util::Status)> done) {
        if (id.name() == "flaky" && flaky_attempts++ < 2) {
          done(util::Unavailable("still busy"));
          return;
        }
        done(util::OkStatus());
      });

  drain.drain({AgentId("steady"), AgentId("flaky")});
  const std::vector<double> fired = timeline.run();
  ASSERT_TRUE(drain.wait(std::chrono::seconds(0)));

  const DrainReport report = drain.report();
  EXPECT_EQ(report.suspended, 2u);
  EXPECT_EQ(report.stragglers, 0u);
  EXPECT_EQ(report.retries, 2u);
  // Backoff doubles from the base: first retry parks 10ms, second 20ms.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 10.0);
  EXPECT_DOUBLE_EQ(fired[1], 30.0);
  EXPECT_DOUBLE_EQ(report.makespan_ms, 30.0);
}

TEST(DrainCoordinator, DeclaresStragglerAfterMaxRetries) {
  FakeTimeline timeline;
  DrainConfig config;
  config.max_retries = 2;
  config.backoff_base_ms = 5.0;
  config.now_ms = [&] { return timeline.now(); };
  config.defer = [&](double delay_ms, std::function<void()> fn) {
    timeline.defer(delay_ms, std::move(fn));
  };

  DrainCoordinator drain(
      config, [&](const AgentId& id, std::function<void(util::Status)> done) {
        done(id.name() == "stuck" ? util::Unavailable("wedged")
                                  : util::OkStatus());
      });

  drain.drain({AgentId("a"), AgentId("stuck"), AgentId("b")});
  timeline.run();
  ASSERT_TRUE(drain.wait(std::chrono::seconds(0)));

  const DrainReport report = drain.report();
  EXPECT_EQ(report.suspended, 2u);
  EXPECT_EQ(report.stragglers, 1u);
  EXPECT_EQ(report.retries, 2u);  // initial try + 2 retries, then give up
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved[0].name(), "stuck");
  // The straggler tail is attributed to its own phase, after the sweep.
  EXPECT_GT(report.straggler_phase_ms, 0.0);
}

TEST(DrainCoordinator, WaveWidthAdaptsToObservedLatency) {
  FakeTimeline timeline;
  DrainConfig config;
  config.target_wave_ms = 50.0;
  config.min_wave = 1;
  config.max_wave = 64;
  config.now_ms = [&] { return timeline.now(); };
  config.defer = [&](double delay_ms, std::function<void()> fn) {
    timeline.defer(delay_ms, std::move(fn));
  };

  // Every suspend takes 40ms of simulated time.
  DrainCoordinator drain(
      config, [&](const AgentId&, std::function<void(util::Status)> done) {
        timeline.defer(40.0, [done] { done(util::OkStatus()); });
      });

  // No samples yet: the first wave opens at full width.
  EXPECT_EQ(drain.current_wave_size(), 64u);

  drain.drain(fleet_of(80));
  timeline.run();
  ASSERT_TRUE(drain.wait(std::chrono::seconds(0)));

  const DrainReport report = drain.report();
  EXPECT_EQ(report.suspended, 80u);
  // After the first 64-wide wave lands, the observed p95 (~40ms or more,
  // given log2 bucket interpolation) caps later waves near
  // target_wave_ms / p95 ~ 1 agent — far below the opening width.
  EXPECT_LT(drain.current_wave_size(), 8u);
  EXPECT_GT(report.waves, 2u);
}

TEST(DrainCoordinator, ImmediateRetryWithoutDeferHook) {
  DrainConfig config;
  config.max_retries = 5;
  int attempts = 0;
  DrainCoordinator drain(
      config, [&](const AgentId&, std::function<void(util::Status)> done) {
        done(++attempts < 4 ? util::Unavailable("not yet")
                            : util::OkStatus());
      });
  drain.drain({AgentId("solo")});
  ASSERT_TRUE(drain.wait(std::chrono::seconds(1)));
  const DrainReport report = drain.report();
  EXPECT_EQ(report.suspended, 1u);
  EXPECT_EQ(report.retries, 3u);
  EXPECT_EQ(attempts, 4);
}

TEST(DrainCoordinator, EmptyDrainFinishesImmediately) {
  DrainCoordinator drain(
      DrainConfig{},
      [](const AgentId&, std::function<void(util::Status)> done) {
        done(util::OkStatus());
      });
  bool done_fired = false;
  drain.drain({}, [&] { done_fired = true; });
  EXPECT_TRUE(done_fired);
  EXPECT_TRUE(drain.wait(std::chrono::seconds(0)));
  EXPECT_EQ(drain.report().agents, 0u);
}

TEST(DrainCoordinator, EachAgentSuspendedExactlyOnce) {
  std::multiset<std::string> seen;
  DrainConfig config;
  config.max_wave = 4;
  DrainCoordinator drain(
      config, [&](const AgentId& id, std::function<void(util::Status)> done) {
        seen.insert(id.name());
        done(util::OkStatus());
      });
  drain.drain(fleet_of(17));
  ASSERT_TRUE(drain.wait(std::chrono::seconds(1)));
  EXPECT_EQ(seen.size(), 17u);
  for (const auto& name : seen) EXPECT_EQ(seen.count(name), 1u) << name;
}

}  // namespace
}  // namespace naplet::swarm
