// Hierarchical timer wheel unit tests (DESIGN.md §15): insertion, firing
// order, cancellation, cascading across levels, and the two driver
// regimes — a DES-style virtual clock advancing in arbitrary jumps, and
// the steady clock the live Reactor loop uses.
#include "reactor/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/clock.hpp"

namespace naplet::reactor {
namespace {

using namespace std::chrono_literals;

constexpr std::int64_t kTick = TimerWheel::kTickUs;

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel(/*start_us=*/0);
  std::vector<int> fired;
  wheel.schedule_at(30 * kTick, [&] { fired.push_back(3); });
  wheel.schedule_at(10 * kTick, [&] { fired.push_back(1); });
  wheel.schedule_at(20 * kTick, [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);

  EXPECT_EQ(wheel.advance_to(9 * kTick), 0u);
  EXPECT_EQ(wheel.advance_to(35 * kTick), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, NothingFiresBeforeItsDeadline) {
  TimerWheel wheel(0);
  bool fired = false;
  const std::int64_t deadline = 5 * kTick + 1;  // strictly inside tick 6
  wheel.schedule_at(deadline, [&] { fired = true; });
  wheel.advance_to(deadline - 1);
  EXPECT_FALSE(fired);  // ceil tick assignment: never early
  wheel.advance_to(deadline + kTick);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(0);
  wheel.advance_to(100 * kTick);
  bool fired = false;
  wheel.schedule_at(50 * kTick, [&] { fired = true; });  // already due
  // Even an advance that crosses no tick boundary drains the overdue list.
  wheel.advance_to(100 * kTick);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, CancelDisarms) {
  TimerWheel wheel(0);
  bool fired = false;
  const TimerId id = wheel.schedule_at(10 * kTick, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // second cancel: already gone
  EXPECT_FALSE(wheel.cancel(kInvalidTimer));
  wheel.advance_to(20 * kTick);
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelAfterFireReturnsFalse) {
  TimerWheel wheel(0);
  const TimerId id = wheel.schedule_at(kTick, [] {});
  wheel.advance_to(2 * kTick);
  EXPECT_FALSE(wheel.cancel(id));
}

TEST(TimerWheel, CascadesAcrossLevels) {
  TimerWheel wheel(0);
  // Level 0 spans 256 ticks (~262 ms), level 1 spans 256^2 (~67 s): one
  // deadline in each outer level must cascade down and fire exactly once,
  // never early.
  const std::int64_t level1_deadline = 1000 * kTick;    // ~1 s
  const std::int64_t level2_deadline = 100'000 * kTick;  // ~102 s
  int level1_fires = 0, level2_fires = 0;
  wheel.schedule_at(level1_deadline, [&] { ++level1_fires; });
  wheel.schedule_at(level2_deadline, [&] { ++level2_fires; });

  // Walk time forward in coarse, uneven jumps (a DES driver's pattern).
  for (std::int64_t now = 0; now < level2_deadline + 10 * kTick;
       now += 777 * kTick) {
    wheel.advance_to(now);
    if (now < level1_deadline) EXPECT_EQ(level1_fires, 0);
    if (now < level2_deadline) EXPECT_EQ(level2_fires, 0);
  }
  wheel.advance_to(level2_deadline + 10 * kTick);
  EXPECT_EQ(level1_fires, 1);
  EXPECT_EQ(level2_fires, 1);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, CancelSurvivesCascade) {
  TimerWheel wheel(0);
  bool fired = false;
  // Armed in level 1, cancelled after time has rolled far enough that the
  // entry cascaded into level 0.
  const TimerId id = wheel.schedule_at(1000 * kTick, [&] { fired = true; });
  wheel.advance_to(990 * kTick);
  EXPECT_TRUE(wheel.cancel(id));
  wheel.advance_to(2000 * kTick);
  EXPECT_FALSE(fired);
}

TEST(TimerWheel, NextDeadlineIsExact) {
  TimerWheel wheel(0);
  EXPECT_FALSE(wheel.next_deadline_us().has_value());
  wheel.schedule_at(12345, [] {});
  const TimerId later = wheel.schedule_at(99999, [] {});
  ASSERT_TRUE(wheel.next_deadline_us().has_value());
  EXPECT_EQ(*wheel.next_deadline_us(), 12345);  // exact, not slot-granular
  wheel.advance_to(13000 + kTick);
  ASSERT_TRUE(wheel.next_deadline_us().has_value());
  EXPECT_EQ(*wheel.next_deadline_us(), 99999);
  wheel.cancel(later);
  EXPECT_FALSE(wheel.next_deadline_us().has_value());
}

TEST(TimerWheel, CallbackMayRearm) {
  TimerWheel wheel(0);
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) {
      wheel.schedule_at(wheel.now_us() + 10 * kTick, tick);
    }
  };
  wheel.schedule_at(10 * kTick, tick);
  for (std::int64_t now = 0; now <= 100 * kTick; now += kTick) {
    wheel.advance_to(now);
  }
  EXPECT_EQ(fires, 3);  // periodic re-arm from inside the callback
}

TEST(TimerWheel, CallbackMayCancelPeer) {
  TimerWheel wheel(0);
  bool peer_fired = false;
  const TimerId peer =
      wheel.schedule_at(10 * kTick, [&] { peer_fired = true; });
  wheel.schedule_at(5 * kTick, [&] { EXPECT_TRUE(wheel.cancel(peer)); });
  wheel.advance_to(20 * kTick);
  EXPECT_FALSE(peer_fired);
}

TEST(TimerWheel, TimeNeverMovesBackwards) {
  TimerWheel wheel(0);
  wheel.advance_to(100 * kTick);
  EXPECT_EQ(wheel.now_us(), 100 * kTick);
  wheel.advance_to(50 * kTick);  // stale reading: ignored
  EXPECT_EQ(wheel.now_us(), 100 * kTick);
}

TEST(TimerWheel, SteadyClockDriver) {
  // The live regime: anchor at the real steady clock and poll-advance,
  // exactly as the Reactor loop does between epoll wakeups.
  util::RealClock& clock = util::RealClock::instance();
  TimerWheel wheel(clock.now_us());
  std::int64_t fired_at = 0;
  const std::int64_t deadline = clock.now_us() + 20'000;  // +20 ms
  wheel.schedule_at(deadline, [&] { fired_at = clock.now_us(); });
  while (fired_at == 0 && clock.now_us() < deadline + 2'000'000) {
    clock.sleep_for(1ms);
    wheel.advance_to(clock.now_us());
  }
  ASSERT_NE(fired_at, 0);
  EXPECT_GE(fired_at, deadline);  // steady drivers never fire early either
}

}  // namespace
}  // namespace naplet::reactor
