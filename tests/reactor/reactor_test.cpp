// Reactor core tests (DESIGN.md §15): loop dispatch (posted closures,
// injected readiness, fd readiness, timers), handler quiescing, the
// sharded session table's affinity invariants, and the controller-level
// regressions — cross-shard wakeups and a blocked recv() woken by
// reactor-delivered data with no polling anywhere on the path.
#include "reactor/reactor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/session_shards.hpp"
#include "core/test_realm.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace naplet {
namespace {

using namespace std::chrono_literals;
using nsock::testing::SimRealm;
using nsock::testing::span;
using nsock::testing::text;

class CountingHandler final : public reactor::EventHandler {
 public:
  void on_ready(std::uint32_t events) override {
    last_events_.store(events);
    calls_.fetch_add(1);
    fired_.set();
  }
  bool wait(util::Duration timeout = 2s) { return fired_.wait_for(timeout); }
  int calls() const { return calls_.load(); }
  std::uint32_t last_events() const { return last_events_.load(); }

 private:
  util::Event fired_;
  std::atomic<int> calls_{0};
  std::atomic<std::uint32_t> last_events_{0};
};

TEST(Reactor, StartStopIdempotent) {
  reactor::Reactor r;
  ASSERT_TRUE(r.start().ok());
  ASSERT_TRUE(r.start().ok());
  EXPECT_TRUE(r.running());
  r.stop();
  r.stop();
  EXPECT_FALSE(r.running());
}

TEST(Reactor, PostRunsOnLoopThread) {
  reactor::Reactor r;
  ASSERT_TRUE(r.start().ok());
  util::Event done;
  std::atomic<bool> on_loop{false};
  r.post([&] {
    on_loop.store(r.on_loop_thread());
    done.set();
  });
  ASSERT_TRUE(done.wait_for(2s));
  EXPECT_TRUE(on_loop.load());
  EXPECT_FALSE(r.on_loop_thread());
  r.stop();
}

TEST(Reactor, NotifyDispatchesInjectedHandler) {
  reactor::Reactor r;
  ASSERT_TRUE(r.start().ok());
  CountingHandler h;
  r.add_handler(&h);
  r.notify(&h);
  ASSERT_TRUE(h.wait());
  EXPECT_GE(h.calls(), 1);
  EXPECT_EQ(h.last_events() & reactor::kReadable, reactor::kReadable);
  r.remove_handler(&h);
  r.stop();
}

TEST(Reactor, RemoveHandlerQuiesces) {
  reactor::Reactor r;
  ASSERT_TRUE(r.start().ok());
  CountingHandler h;
  r.add_handler(&h);
  r.notify(&h);
  ASSERT_TRUE(h.wait());
  // After remove_handler returns no dispatch is running or will run, so a
  // later notify must be a no-op (unregistered handlers are ignored).
  r.remove_handler(&h);
  const int calls_after_remove = h.calls();
  r.notify(&h);
  r.post([] {});  // one more loop pass to surface any stray dispatch
  util::Event settle;
  r.post([&] { settle.set(); });
  ASSERT_TRUE(settle.wait_for(2s));
  EXPECT_EQ(h.calls(), calls_after_remove);
  r.stop();
}

TEST(Reactor, FdReadinessDispatches) {
  reactor::Reactor r;
  ASSERT_TRUE(r.start().ok());
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  CountingHandler h;
  ASSERT_TRUE(r.add_fd(pipe_fds[0], &h, reactor::kReadable).ok());
  ASSERT_EQ(::write(pipe_fds[1], "x", 1), 1);
  ASSERT_TRUE(h.wait());
  EXPECT_EQ(h.last_events() & reactor::kReadable, reactor::kReadable);
  char buf;
  ASSERT_EQ(::read(pipe_fds[0], &buf, 1), 1);
  r.del_fd(pipe_fds[0]);
  r.remove_handler(&h);
  r.stop();
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST(Reactor, TimerFiresOnceNearDeadline) {
  reactor::Reactor r;
  ASSERT_TRUE(r.start().ok());
  util::Event fired;
  std::atomic<std::int64_t> fired_at{0};
  const std::int64_t armed_at = reactor::Reactor::now_us();
  r.schedule(20ms, [&] {
    fired_at.store(reactor::Reactor::now_us());
    fired.set();
  });
  ASSERT_TRUE(fired.wait_for(2s));
  // Never early; the loop sleeps until the wheel's exact next deadline so
  // lateness is bounded by a tick plus scheduling noise.
  EXPECT_GE(fired_at.load() - armed_at, 20'000);
  r.stop();
}

TEST(Reactor, CancelTimerDisarms) {
  reactor::Reactor r;
  ASSERT_TRUE(r.start().ok());
  std::atomic<bool> fired{false};
  const reactor::TimerId id = r.schedule(50ms, [&] { fired.store(true); });
  EXPECT_TRUE(r.cancel_timer(id));
  util::RealClock::instance().sleep_for(120ms);
  EXPECT_FALSE(fired.load());
  r.stop();
}

// ---- sharded session table ----

nsock::SessionPtr make_session(std::uint64_t conn_id, const std::string& local,
                               const std::string& peer, bool initiator) {
  return std::make_shared<nsock::Session>(conn_id, 1, initiator,
                                          agent::AgentId(local),
                                          agent::AgentId(peer));
}

TEST(SessionShard, BothEndpointsOfAConnShareAShard) {
  nsock::SessionShardMap map(16);
  // Same conn_id, two local endpoints (loopback connection): the shard is
  // keyed on conn_id alone, so the pair must land together — that is what
  // keeps the erase-time "last endpoint gone" check shard-local.
  map.insert(make_session(42, "alice", "bob", true));
  map.insert(make_session(42, "bob", "alice", false));
  const std::vector<std::size_t> sizes = map.shard_sizes();
  std::size_t occupied = 0;
  for (std::size_t s : sizes) {
    if (s > 0) {
      ++occupied;
      EXPECT_EQ(s, 2u);
    }
  }
  EXPECT_EQ(occupied, 1u);

  EXPECT_FALSE(map.erase(42, "alice"));  // bob's endpoint remains
  EXPECT_TRUE(map.erase(42, "bob"));     // conn fully gone now
  EXPECT_EQ(map.size(), 0u);
}

TEST(SessionShard, LookupsAndAgentViews) {
  nsock::SessionShardMap map(8);
  map.insert(make_session(1, "alice", "bob", true));
  map.insert(make_session(2, "alice", "carol", true));
  map.insert(make_session(3, "dave", "alice", false));

  ASSERT_NE(map.find(2), nullptr);
  EXPECT_EQ(map.find(2)->conn_id(), 2u);
  EXPECT_EQ(map.find(99), nullptr);
  EXPECT_TRUE(map.contains_conn(3));

  ASSERT_NE(map.find_from(3, "alice"), nullptr);  // matched by sender
  EXPECT_EQ(map.find_from(3, "alice")->local_agent().name(), "dave");

  EXPECT_EQ(map.of_agent(agent::AgentId("alice")).size(), 2u);
  EXPECT_EQ(map.size(), 3u);
  const auto moved = map.extract_agent(agent::AgentId("alice"));
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(SessionShard, HashSpreadsAcrossShards) {
  nsock::SessionShardMap map(16);
  const int kSessions = 4096;
  util::Rng rng(7);
  for (int i = 0; i < kSessions; ++i) {
    map.insert(make_session(rng.next_u64() | 1, "a" + std::to_string(i),
                            "peer", true));
  }
  const std::vector<std::size_t> sizes = map.shard_sizes();
  ASSERT_EQ(sizes.size(), 16u);
  const double mean = static_cast<double>(map.size()) / 16.0;
  for (std::size_t s : sizes) {
    EXPECT_GT(s, 0u);
    EXPECT_LT(static_cast<double>(s), 2.0 * mean);
  }
}

// ---- controller on the reactor ----

void enable_reactor(nsock::NodeConfig& config) {
  config.controller.security = false;
  config.controller.reactor.enabled = true;
}

TEST(ReactorController, BlockedRecvWokenByReactorDelivery) {
  // Regression for the readiness-driven rudp receive path: a receiver
  // already parked inside recv() must be woken by the reactor dispatching
  // the arriving data — there is no polling thread left to find it.
  SimRealm realm(2, /*security=*/true, /*link_latency=*/{}, enable_reactor);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  auto conn = nsock::testing::make_connection(realm, alice, 0, bob, 1);
  ASSERT_NE(conn.client, nullptr);
  ASSERT_NE(conn.server, nullptr);

  util::Event receiver_parked;
  util::StatusOr<nsock::RecvResult> got = util::Cancelled("not run");
  std::thread receiver([&] {
    receiver_parked.set();
    got = conn.server->recv(5s);
  });
  ASSERT_TRUE(receiver_parked.wait_for(2s));
  util::RealClock::instance().sleep_for(50ms);  // ensure recv() is parked
  ASSERT_TRUE(conn.client->send(span("wake up"), 2s).ok());
  receiver.join();
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(text(got->body), "wake up");
}

TEST(ReactorController, CrossShardWakeups) {
  // Several connections hash into different shards of one controller; a
  // single burst of deliveries must wake every blocked receiver, however
  // the sessions are spread across shard locks.
  SimRealm realm(2, /*security=*/false, /*link_latency=*/{}, enable_reactor);
  auto bob = realm.pseudo_agent("bob", 1);
  ASSERT_TRUE(realm.ctrl(1).listen(bob).ok());

  constexpr int kConns = 24;
  std::vector<nsock::SessionPtr> clients, servers;
  for (int i = 0; i < kConns; ++i) {
    auto cli = realm.pseudo_agent("cli" + std::to_string(i), 0);
    auto c = realm.ctrl(0).connect(cli, bob);
    ASSERT_TRUE(c.ok()) << c.status().to_string();
    auto s = realm.ctrl(1).accept(bob, 5s);
    ASSERT_TRUE(s.ok()) << s.status().to_string();
    clients.push_back(*c);
    servers.push_back(*s);
  }
  // The table must actually be sharded (occupancy visible per shard).
  const auto shard_sizes = realm.ctrl(0).stats().shard_sessions;
  ASSERT_FALSE(shard_sizes.empty());
  std::size_t occupied = 0, total = 0;
  for (std::size_t s : shard_sizes) {
    occupied += (s > 0) ? 1 : 0;
    total += s;
  }
  EXPECT_GT(occupied, 1u);  // 24 random conn ids: >1 shard occupied
  EXPECT_EQ(total, realm.ctrl(0).session_count());

  std::atomic<int> received{0};
  std::vector<std::thread> receivers;
  receivers.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    receivers.emplace_back([&, i] {
      auto got = servers[static_cast<std::size_t>(i)]->recv(5s);
      if (got.ok() && text(got->body) == "burst") received.fetch_add(1);
    });
  }
  util::RealClock::instance().sleep_for(50ms);  // park all receivers
  for (int i = 0; i < kConns; ++i) {
    ASSERT_TRUE(clients[static_cast<std::size_t>(i)]->send(span("burst"), 2s)
                    .ok());
  }
  for (auto& t : receivers) t.join();
  EXPECT_EQ(received.load(), kConns);
}

TEST(ReactorController, SuspendResumeOnReactor) {
  // The blocking public API is preserved in reactor mode: the paper's
  // suspend/resume migration primitive works unchanged.
  SimRealm realm(2, /*security=*/false, /*link_latency=*/{}, enable_reactor);
  auto alice = realm.pseudo_agent("alice", 0);
  auto bob = realm.pseudo_agent("bob", 1);
  auto conn = nsock::testing::make_connection(realm, alice, 0, bob, 1);
  ASSERT_NE(conn.client, nullptr);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(realm.ctrl(0).suspend(conn.client).ok());
    ASSERT_TRUE(realm.ctrl(0).resume(conn.client).ok());
  }
  ASSERT_TRUE(conn.client->send(span("after"), 2s).ok());
  auto got = conn.server->recv(2s);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(text(got->body), "after");
  ASSERT_TRUE(realm.ctrl(0).close(conn.client).ok());
}

}  // namespace
}  // namespace naplet
