#include "crypto/bignum.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace naplet::crypto {
namespace {

BigUint from_hex_ok(const char* s) {
  auto v = BigUint::from_hex(s);
  EXPECT_TRUE(v.ok()) << s;
  return *v;
}

TEST(BigUint, ZeroProperties) {
  BigUint zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_odd());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
  EXPECT_TRUE(zero.to_bytes().empty());
  EXPECT_EQ(zero.to_u64(), 0u);
}

TEST(BigUint, FromU64) {
  BigUint v(0x123456789ABCDEF0ULL);
  EXPECT_EQ(v.to_hex(), "123456789abcdef0");
  EXPECT_EQ(v.to_u64(), 0x123456789ABCDEF0ULL);
  EXPECT_EQ(v.bit_length(), 61u);
}

TEST(BigUint, HexRoundTrip) {
  const char* hex = "deadbeefcafebabe0123456789abcdef00ff";
  EXPECT_EQ(from_hex_ok(hex).to_hex(), hex);
}

TEST(BigUint, HexLeadingZerosNormalized) {
  EXPECT_EQ(from_hex_ok("000001").to_hex(), "1");
  EXPECT_EQ(from_hex_ok("0000000000000000").to_hex(), "0");
}

TEST(BigUint, FromHexRejectsBadInput) {
  EXPECT_FALSE(BigUint::from_hex("").ok());
  EXPECT_FALSE(BigUint::from_hex("xyz").ok());
  EXPECT_FALSE(BigUint::from_hex("12 34").ok());
}

TEST(BigUint, BytesRoundTrip) {
  const util::Bytes bytes = {0x01, 0x02, 0x03, 0x04, 0x05};
  BigUint v = BigUint::from_bytes(util::ByteSpan(bytes.data(), bytes.size()));
  EXPECT_EQ(v.to_hex(), "102030405");
  EXPECT_EQ(v.to_bytes(), bytes);
}

TEST(BigUint, ToBytesPadding) {
  BigUint v(0xFF);
  const util::Bytes padded = v.to_bytes(4);
  EXPECT_EQ(padded, (util::Bytes{0, 0, 0, 0xFF}));
}

TEST(BigUint, CompareTotalOrder) {
  BigUint small(5), big(500), huge = from_hex_ok("ffffffffffffffffff");
  EXPECT_LT(small, big);
  EXPECT_LT(big, huge);
  EXPECT_EQ(small.compare(BigUint(5)), 0);
  EXPECT_GT(huge, small);
}

TEST(BigUint, AddWithCarryChains) {
  BigUint a = from_hex_ok("ffffffffffffffff");
  BigUint one(1);
  EXPECT_EQ(a.add(one).to_hex(), "10000000000000000");
  EXPECT_EQ(one.add(a).to_hex(), "10000000000000000");
}

TEST(BigUint, SubWithBorrowChains) {
  BigUint a = from_hex_ok("10000000000000000");
  EXPECT_EQ(a.sub(BigUint(1)).to_hex(), "ffffffffffffffff");
  EXPECT_TRUE(a.sub(a).is_zero());
}

TEST(BigUint, MulBasics) {
  EXPECT_TRUE(BigUint(0).mul(BigUint(12345)).is_zero());
  EXPECT_EQ(BigUint(7).mul(BigUint(6)).to_u64(), 42u);
  BigUint big = from_hex_ok("ffffffffffffffff");
  EXPECT_EQ(big.mul(big).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigUint, ShiftLeftRight) {
  BigUint v(1);
  EXPECT_EQ(v.shift_left(100).bit_length(), 101u);
  EXPECT_EQ(v.shift_left(100).shift_right(100).to_u64(), 1u);
  EXPECT_TRUE(v.shift_right(1).is_zero());
  BigUint x = from_hex_ok("abcdef");
  EXPECT_EQ(x.shift_left(4).to_hex(), "abcdef0");
  EXPECT_EQ(x.shift_right(4).to_hex(), "abcde");
}

TEST(BigUint, DivModSimple) {
  auto dm = BigUint(100).divmod(BigUint(7));
  ASSERT_TRUE(dm.ok());
  EXPECT_EQ(dm->quotient.to_u64(), 14u);
  EXPECT_EQ(dm->remainder.to_u64(), 2u);
}

TEST(BigUint, DivModByZeroRejected) {
  EXPECT_FALSE(BigUint(1).divmod(BigUint()).ok());
  EXPECT_FALSE(BigUint(1).mod(BigUint()).ok());
}

TEST(BigUint, DivModSmallByLarge) {
  auto dm = BigUint(3).divmod(from_hex_ok("ffffffffffffffffffffffff"));
  ASSERT_TRUE(dm.ok());
  EXPECT_TRUE(dm->quotient.is_zero());
  EXPECT_EQ(dm->remainder.to_u64(), 3u);
}

TEST(BigUint, DivModKnuthCornerCase) {
  // Exercises the q_hat correction branch: divisor top limb just below
  // the radix.
  BigUint dividend = from_hex_ok("7fffffff800000010000000000000000");
  BigUint divisor = from_hex_ok("800000008000000200000005");
  auto dm = dividend.divmod(divisor);
  ASSERT_TRUE(dm.ok());
  // Verify the division identity instead of magic constants.
  const BigUint recomposed = dm->quotient.mul(divisor).add(dm->remainder);
  EXPECT_EQ(recomposed.compare(dividend), 0);
  EXPECT_LT(dm->remainder, divisor);
}

// Property: for random a, b != 0:  a == (a/b)*b + (a%b)  and  a%b < b.
class DivisionProperty : public ::testing::TestWithParam<int> {};

TEST_P(DivisionProperty, Identity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 50; ++iter) {
    util::Bytes a_bytes(1 + rng.next_below(40));
    util::Bytes b_bytes(1 + rng.next_below(20));
    for (auto& byte : a_bytes) byte = static_cast<std::uint8_t>(rng.next_u64());
    for (auto& byte : b_bytes) byte = static_cast<std::uint8_t>(rng.next_u64());
    BigUint a = BigUint::from_bytes(util::ByteSpan(a_bytes.data(), a_bytes.size()));
    BigUint b = BigUint::from_bytes(util::ByteSpan(b_bytes.data(), b_bytes.size()));
    if (b.is_zero()) b = BigUint(1);

    auto dm = a.divmod(b);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ(dm->quotient.mul(b).add(dm->remainder).compare(a), 0);
    EXPECT_LT(dm->remainder, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivisionProperty, ::testing::Range(1, 9));

// Property: modular exponentiation laws.
class PowModProperty : public ::testing::TestWithParam<int> {};

TEST_P(PowModProperty, Laws) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  util::Bytes m_bytes(16);
  for (auto& byte : m_bytes) byte = static_cast<std::uint8_t>(rng.next_u64());
  m_bytes[15] |= 1;  // odd modulus
  const BigUint m = BigUint::from_bytes(util::ByteSpan(m_bytes.data(), m_bytes.size()));
  const BigUint g(2 + rng.next_below(1000));

  // g^0 = 1 (mod m), g^1 = g (mod m)
  EXPECT_EQ(g.pow_mod(BigUint(0), m)->to_u64(), 1u);
  EXPECT_EQ(g.pow_mod(BigUint(1), m)->compare(*g.mod(m)), 0);

  // g^(a+b) = g^a * g^b (mod m)
  const BigUint a(rng.next_below(1U << 20));
  const BigUint b(rng.next_below(1U << 20));
  auto lhs = g.pow_mod(a.add(b), m);
  auto rhs = g.pow_mod(a, m)->mul_mod(*g.pow_mod(b, m), m);
  ASSERT_TRUE(lhs.ok());
  ASSERT_TRUE(rhs.ok());
  EXPECT_EQ(lhs->compare(*rhs), 0);

  // (g^a)^b = g^(a*b) (mod m)
  auto nested = g.pow_mod(a, m)->pow_mod(b, m);
  auto direct = g.pow_mod(a.mul(b), m);
  EXPECT_EQ(nested->compare(*direct), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowModProperty, ::testing::Range(1, 7));

TEST(BigUint, PowModFermatLittleTheorem) {
  // p = 2^31 - 1 is prime: a^(p-1) = 1 mod p for a not divisible by p.
  const BigUint p((1ULL << 31) - 1);
  const BigUint exp((1ULL << 31) - 2);
  for (std::uint64_t a : {2ULL, 3ULL, 65537ULL, 123456789ULL}) {
    auto r = BigUint(a).pow_mod(exp, p);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->to_u64(), 1u) << a;
  }
}

TEST(BigUint, PowModZeroModulusRejected) {
  EXPECT_FALSE(BigUint(2).pow_mod(BigUint(10), BigUint()).ok());
}

TEST(BigUint, PowModModulusOne) {
  auto r = BigUint(5).pow_mod(BigUint(3), BigUint(1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_zero());
}

}  // namespace
}  // namespace naplet::crypto
