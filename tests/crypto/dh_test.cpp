#include "crypto/dh.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace naplet::crypto {
namespace {

TEST(DhParams, GroupsWellFormed) {
  for (DhGroup group :
       {DhGroup::kModp768, DhGroup::kModp1536, DhGroup::kModp2048}) {
    const DhParams& p = DhParams::get(group);
    EXPECT_FALSE(p.prime.is_zero());
    EXPECT_TRUE(p.prime.is_odd());
    EXPECT_EQ(p.generator.to_u64(), 2u);
    EXPECT_EQ(p.prime.bit_length(), p.key_bytes * 8);
  }
}

TEST(DhKeyPair, PublicValueFixedWidth) {
  auto kp = DhKeyPair::generate(DhGroup::kModp768);
  ASSERT_TRUE(kp.ok());
  EXPECT_EQ(kp->public_value().size(), 96u);
}

TEST(DhKeyPair, SharedSecretAgrees) {
  auto alice = DhKeyPair::generate(DhGroup::kModp768);
  auto bob = DhKeyPair::generate(DhGroup::kModp768);
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  auto key_a = alice->session_key(util::ByteSpan(
      bob->public_value().data(), bob->public_value().size()));
  auto key_b = bob->session_key(util::ByteSpan(
      alice->public_value().data(), alice->public_value().size()));
  ASSERT_TRUE(key_a.ok());
  ASSERT_TRUE(key_b.ok());
  EXPECT_EQ(util::to_hex(util::ByteSpan(key_a->data(), key_a->size())),
            util::to_hex(util::ByteSpan(key_b->data(), key_b->size())));
}

TEST(DhKeyPair, DistinctPairsDistinctKeys) {
  auto alice = DhKeyPair::generate(DhGroup::kModp768);
  auto bob = DhKeyPair::generate(DhGroup::kModp768);
  auto eve = DhKeyPair::generate(DhGroup::kModp768);
  ASSERT_TRUE(alice.ok() && bob.ok() && eve.ok());

  auto key_ab = alice->session_key(util::ByteSpan(
      bob->public_value().data(), bob->public_value().size()));
  auto key_ae = alice->session_key(util::ByteSpan(
      eve->public_value().data(), eve->public_value().size()));
  ASSERT_TRUE(key_ab.ok() && key_ae.ok());
  EXPECT_NE(util::to_hex(util::ByteSpan(key_ab->data(), key_ab->size())),
            util::to_hex(util::ByteSpan(key_ae->data(), key_ae->size())));
}

TEST(DhKeyPair, FreshKeysEachGeneration) {
  auto a = DhKeyPair::generate(DhGroup::kModp768);
  auto b = DhKeyPair::generate(DhGroup::kModp768);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(util::to_hex(util::ByteSpan(a->public_value().data(),
                                        a->public_value().size())),
            util::to_hex(util::ByteSpan(b->public_value().data(),
                                        b->public_value().size())));
}

TEST(DhKeyPair, RejectsDegeneratePublicValues) {
  auto kp = DhKeyPair::generate(DhGroup::kModp768);
  ASSERT_TRUE(kp.ok());
  const DhParams& params = DhParams::get(DhGroup::kModp768);

  // zero
  util::Bytes zero(params.key_bytes, 0);
  EXPECT_FALSE(kp->session_key(util::ByteSpan(zero.data(), zero.size())).ok());

  // one
  util::Bytes one(params.key_bytes, 0);
  one.back() = 1;
  EXPECT_FALSE(kp->session_key(util::ByteSpan(one.data(), one.size())).ok());

  // p - 1 (order-2 subgroup)
  const util::Bytes p_minus_1 =
      params.prime.sub(crypto::BigUint(1)).to_bytes(params.key_bytes);
  EXPECT_FALSE(
      kp->session_key(util::ByteSpan(p_minus_1.data(), p_minus_1.size())).ok());

  // >= p
  const util::Bytes p_bytes = params.prime.to_bytes(params.key_bytes);
  EXPECT_FALSE(
      kp->session_key(util::ByteSpan(p_bytes.data(), p_bytes.size())).ok());
}

TEST(DhKeyPair, LargerGroupAlsoAgrees) {
  auto alice = DhKeyPair::generate(DhGroup::kModp1536);
  auto bob = DhKeyPair::generate(DhGroup::kModp1536);
  ASSERT_TRUE(alice.ok() && bob.ok());
  auto key_a = alice->session_key(util::ByteSpan(
      bob->public_value().data(), bob->public_value().size()));
  auto key_b = bob->session_key(util::ByteSpan(
      alice->public_value().data(), alice->public_value().size()));
  ASSERT_TRUE(key_a.ok() && key_b.ok());
  EXPECT_EQ(util::to_hex(util::ByteSpan(key_a->data(), key_a->size())),
            util::to_hex(util::ByteSpan(key_b->data(), key_b->size())));
}

}  // namespace
}  // namespace naplet::crypto
