#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace naplet::crypto {
namespace {

std::string tag_hex(util::ByteSpan key, util::ByteSpan msg) {
  const Sha256Digest tag = hmac_sha256(key, msg);
  return util::to_hex(util::ByteSpan(tag.data(), tag.size()));
}

util::Bytes unhex(const char* s) {
  auto v = util::from_hex(s);
  EXPECT_TRUE(v.ok());
  return *v;
}

// RFC 4231 test cases.
TEST(HmacSha256, Rfc4231Case1) {
  const util::Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  EXPECT_EQ(tag_hex(util::ByteSpan(key.data(), key.size()),
                    util::ByteSpan(
                        reinterpret_cast<const std::uint8_t*>(msg.data()),
                        msg.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  EXPECT_EQ(tag_hex(util::ByteSpan(
                        reinterpret_cast<const std::uint8_t*>(key.data()),
                        key.size()),
                    util::ByteSpan(
                        reinterpret_cast<const std::uint8_t*>(msg.data()),
                        msg.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const util::Bytes key(20, 0xaa);
  const util::Bytes msg(50, 0xdd);
  EXPECT_EQ(tag_hex(util::ByteSpan(key.data(), key.size()),
                    util::ByteSpan(msg.data(), msg.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  // Key longer than the block size must be hashed first.
  const util::Bytes key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  EXPECT_EQ(tag_hex(util::ByteSpan(key.data(), key.size()),
                    util::ByteSpan(
                        reinterpret_cast<const std::uint8_t*>(msg.data()),
                        msg.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, VerifyAcceptsCorrectTag) {
  const util::Bytes key = unhex("00112233445566778899aabbccddeeff");
  const util::Bytes msg = unhex("deadbeef");
  const Sha256Digest tag = hmac_sha256(util::ByteSpan(key.data(), key.size()),
                                       util::ByteSpan(msg.data(), msg.size()));
  EXPECT_TRUE(hmac_sha256_verify(util::ByteSpan(key.data(), key.size()),
                                 util::ByteSpan(msg.data(), msg.size()),
                                 util::ByteSpan(tag.data(), tag.size())));
}

TEST(HmacSha256, VerifyRejectsTamperedMessage) {
  const util::Bytes key = unhex("00112233445566778899aabbccddeeff");
  util::Bytes msg = unhex("deadbeef");
  const Sha256Digest tag = hmac_sha256(util::ByteSpan(key.data(), key.size()),
                                       util::ByteSpan(msg.data(), msg.size()));
  msg[0] ^= 1;
  EXPECT_FALSE(hmac_sha256_verify(util::ByteSpan(key.data(), key.size()),
                                  util::ByteSpan(msg.data(), msg.size()),
                                  util::ByteSpan(tag.data(), tag.size())));
}

TEST(HmacSha256, VerifyRejectsTamperedTag) {
  const util::Bytes key = unhex("aa");
  const util::Bytes msg = unhex("bb");
  Sha256Digest tag = hmac_sha256(util::ByteSpan(key.data(), key.size()),
                                 util::ByteSpan(msg.data(), msg.size()));
  tag[31] ^= 0x80;
  EXPECT_FALSE(hmac_sha256_verify(util::ByteSpan(key.data(), key.size()),
                                  util::ByteSpan(msg.data(), msg.size()),
                                  util::ByteSpan(tag.data(), tag.size())));
}

TEST(HmacSha256, VerifyRejectsWrongKey) {
  const util::Bytes key1 = unhex("01");
  const util::Bytes key2 = unhex("02");
  const util::Bytes msg = unhex("cc");
  const Sha256Digest tag = hmac_sha256(util::ByteSpan(key1.data(), key1.size()),
                                       util::ByteSpan(msg.data(), msg.size()));
  EXPECT_FALSE(hmac_sha256_verify(util::ByteSpan(key2.data(), key2.size()),
                                  util::ByteSpan(msg.data(), msg.size()),
                                  util::ByteSpan(tag.data(), tag.size())));
}

TEST(HmacSha256, VerifyRejectsTruncatedTag) {
  const util::Bytes key = unhex("aa");
  const util::Bytes msg = unhex("bb");
  const Sha256Digest tag = hmac_sha256(util::ByteSpan(key.data(), key.size()),
                                       util::ByteSpan(msg.data(), msg.size()));
  EXPECT_FALSE(hmac_sha256_verify(util::ByteSpan(key.data(), key.size()),
                                  util::ByteSpan(msg.data(), msg.size()),
                                  util::ByteSpan(tag.data(), 16)));
}

TEST(DeriveKey, LabelSeparation) {
  const util::Bytes secret = unhex("00010203");
  const Sha256Digest a =
      derive_key(util::ByteSpan(secret.data(), secret.size()), "label-a");
  const Sha256Digest b =
      derive_key(util::ByteSpan(secret.data(), secret.size()), "label-b");
  EXPECT_NE(util::to_hex(util::ByteSpan(a.data(), a.size())),
            util::to_hex(util::ByteSpan(b.data(), b.size())));
}

}  // namespace
}  // namespace naplet::crypto
