#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.hpp"

namespace naplet::crypto {
namespace {

std::string hex_digest(const Sha256Digest& digest) {
  return util::to_hex(util::ByteSpan(digest.data(), digest.size()));
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
struct Vector {
  const char* message;
  const char* digest;
};

class Sha256Kat : public ::testing::TestWithParam<Vector> {};

TEST_P(Sha256Kat, Matches) {
  const auto&[message, digest] = GetParam();
  EXPECT_EQ(hex_digest(Sha256::hash(std::string_view(message))), digest);
}

INSTANTIATE_TEST_SUITE_P(
    Nist, Sha256Kat,
    ::testing::Values(
        Vector{"",
               "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        Vector{"abc",
               "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        Vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
               "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        Vector{"The quick brown fox jumps over the lazy dog",
               "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"},
        Vector{"The quick brown fox jumps over the lazy dog.",
               "ef537f25c895bfa782526529a9b63d97aa631564d5d789c2b765448c8635fb6c"}));

TEST(Sha256, MillionAs) {
  // The classic long-message vector: 1,000,000 repetitions of 'a'.
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hex_digest(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string message =
      "a moderately long message that will be split into pieces";
  for (std::size_t split = 0; split <= message.size(); ++split) {
    Sha256 hasher;
    hasher.update(std::string_view(message).substr(0, split));
    hasher.update(std::string_view(message).substr(split));
    EXPECT_EQ(hex_digest(hasher.finish()),
              hex_digest(Sha256::hash(message)))
        << "split at " << split;
  }
}

TEST(Sha256, BlockBoundaryLengths) {
  // Padding edge cases: lengths around the 64-byte block and 56-byte
  // length-field boundary must all round-trip through the same state logic.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string message(len, 'x');
    Sha256 incremental;
    for (char c : message) {
      incremental.update(std::string_view(&c, 1));
    }
    EXPECT_EQ(hex_digest(incremental.finish()),
              hex_digest(Sha256::hash(message)))
        << "length " << len;
  }
}

TEST(Sha256, ResetReusesHasher) {
  Sha256 hasher;
  hasher.update(std::string_view("garbage"));
  (void)hasher.finish();
  hasher.reset();
  hasher.update(std::string_view("abc"));
  EXPECT_EQ(hex_digest(hasher.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(hex_digest(Sha256::hash(std::string_view("a"))),
            hex_digest(Sha256::hash(std::string_view("b"))));
}

}  // namespace
}  // namespace naplet::crypto
